//! Multi-threaded stress suites with Setbench-style keysum validation.
//!
//! The PathCAS paper validates its implementations by checking consistency
//! between the final tree contents and the return values of all updates
//! recorded throughout the experiment (Appendix F: both published lock-free
//! internal BSTs it examined *fail* this check).  We reproduce that
//! methodology: every thread accumulates the sum/count of keys whose
//! insertion it observed succeed minus those whose deletion it observed
//! succeed; at quiescence the structure must contain exactly that multiset.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ConcurrentMap, Key};

/// Outcome of a stress run, for additional assertions by callers.
#[derive(Debug, Clone, Copy)]
pub struct StressOutcome {
    /// Total operations attempted across all threads.
    pub total_ops: u64,
    /// Net number of keys the threads believe are present.
    pub expected_count: i64,
    /// Net key sum the threads believe is present.
    pub expected_sum: i128,
}

/// Run `threads` worker threads performing a random mix of operations for
/// `duration`, then validate the final contents against the per-thread
/// success records.  `update_percent` is split evenly between inserts and
/// deletes; the rest are `contains`.
///
/// Panics (with the map's name) on any inconsistency.
pub fn stress_keysum<M: ConcurrentMap + ?Sized>(
    map: &M,
    threads: usize,
    key_range: Key,
    update_percent: u32,
    duration: Duration,
    seed: u64,
) -> StressOutcome {
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);

    // Account for keys already present (e.g. from a prefill phase).
    let initial = map.stats();

    #[derive(Default)]
    struct ThreadRecord {
        sum: i128,
        count: i64,
        ops: u64,
    }

    let records: Vec<ThreadRecord> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let stop = &stop;
            let barrier = &barrier;
            let map = &*map;
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64 * 0x9E37));
                let mut rec = ThreadRecord::default();
                barrier.wait();
                // ORDERING: Relaxed — stop flag polled in a loop; the join
                // below is the real synchronization point.
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(1..=key_range);
                    let roll = rng.gen_range(0..100u32);
                    if roll < update_percent / 2 {
                        if map.insert(key, key.wrapping_mul(31)) {
                            rec.sum += key as i128;
                            rec.count += 1;
                        }
                    } else if roll < update_percent {
                        if map.remove(key) {
                            rec.sum -= key as i128;
                            rec.count -= 1;
                        }
                    } else {
                        let _ = map.contains(key);
                    }
                    rec.ops += 1;
                }
                rec
            }));
        }
        barrier.wait();
        std::thread::sleep(duration);
        // ORDERING: Relaxed — pairs with the Relaxed poll above; thread join
        // synchronizes the per-thread records.
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("stress worker panicked")).collect()
    });

    let expected_sum: i128 = initial.key_sum as i128 + records.iter().map(|r| r.sum).sum::<i128>();
    let expected_count: i64 = initial.key_count as i64 + records.iter().map(|r| r.count).sum::<i64>();
    let total_ops: u64 = records.iter().map(|r| r.ops).sum();

    let s = map.stats();
    assert!(expected_count >= 0, "{}: negative net key count?!", map.name());
    assert_eq!(
        s.key_count as i64,
        expected_count,
        "{}: keysum validation failed (count): structure has {} keys, threads recorded {}",
        map.name(),
        s.key_count,
        expected_count
    );
    assert_eq!(
        s.key_sum as i128,
        expected_sum,
        "{}: keysum validation failed (sum)",
        map.name()
    );

    StressOutcome { total_ops, expected_count, expected_sum }
}

/// Derive the prefill RNG seed from a trial's base seed (`PATHCAS_SEED`).
/// Every prefill site uses this one derivation, so "same base seed ⇒ same
/// prefilled contents" holds across the harness, the workload engine, and
/// the reproducibility tests.
pub fn prefill_seed(base_seed: u64) -> u64 {
    base_seed ^ 0xF00D
}

/// A prefill helper shared by tests and the benchmark harness: inserts
/// random keys until the map holds `target` keys.
pub fn prefill<M: ConcurrentMap + ?Sized>(map: &M, key_range: Key, target: u64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present = map.stats().key_count;
    while present < target {
        let key = rng.gen_range(1..=key_range);
        if map.insert(key, key) {
            present += 1;
        }
    }
}

/// Deterministic multi-threaded smoke test: each thread owns a disjoint key
/// stripe, inserts it, verifies it, deletes half of it, and verifies again.
/// Catches gross races without any timing dependence.
pub fn stress_disjoint_stripes<M: ConcurrentMap + ?Sized>(map: &M, threads: usize, keys_per_thread: u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let map = &*map;
            s.spawn(move || {
                let base = t as u64 * keys_per_thread + 1;
                for k in base..base + keys_per_thread {
                    assert!(map.insert(k, k * 2), "{}: stripe insert {}", map.name(), k);
                }
                for k in base..base + keys_per_thread {
                    assert!(map.contains(k));
                    assert_eq!(map.get(k), Some(k * 2));
                }
                for k in (base..base + keys_per_thread).step_by(2) {
                    assert!(map.remove(k), "{}: stripe remove {}", map.name(), k);
                }
                for k in base..base + keys_per_thread {
                    let expect = (k - base) % 2 == 1;
                    assert_eq!(map.contains(k), expect, "{}: stripe post-check {}", map.name(), k);
                }
            });
        }
    });
    let total = threads as u64 * keys_per_thread;
    let s = map.stats();
    assert_eq!(s.key_count, total / 2, "{}: stripe final count", map.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::LockedBTreeMap;

    #[test]
    fn oracle_survives_stress() {
        let m = LockedBTreeMap::new();
        prefill(&m, 128, 64, 7);
        let out = stress_keysum(&m, 3, 128, 50, Duration::from_millis(100), 1);
        assert!(out.total_ops > 0);
    }

    #[test]
    fn oracle_survives_stripes() {
        let m = LockedBTreeMap::new();
        stress_disjoint_stripes(&m, 4, 100);
    }
}
