//! # mapapi — shared interface and validation suites
//!
//! Every search structure in this repository — the PathCAS trees, the
//! handcrafted baselines, the STM trees and the MCMS tree — implements the
//! [`ConcurrentMap`] trait, so the correctness suites, the stress tests and
//! the benchmark harness are written once and reused everywhere.
//!
//! The stress methodology follows Setbench (Brown et al. \[9\], §5 of the
//! PathCAS paper): each thread tracks the sum and count of keys it
//! successfully inserted minus those it successfully deleted; at quiescence
//! the structure's own key sum and key count must match the aggregate, which
//! catches lost updates, duplicated keys, and phantom successes.

#![warn(missing_docs)]

pub mod stress;
pub mod suites;

/// Keys are 62-bit unsigned integers (they must fit in a `CasWord` payload);
/// key `0` and the maximum value are reserved for sentinels by several
/// implementations, so workloads use keys in `1..=MAX_KEY`.
pub type Key = u64;
/// Values share the same representation constraints as keys.
pub type Value = u64;

/// Largest key a workload may use (several trees reserve the extremes for
/// sentinel nodes).
pub const MAX_KEY: Key = (1 << 62) - 2;

/// Intern a dynamically built structure name into a `&'static str`.
///
/// [`ConcurrentMap::name`] returns `&'static str` so benchmark rows can be
/// labeled without lifetime plumbing, but composed structures (a sharded map
/// over an inner algorithm, a service client pool over a remote structure)
/// only know their full name at construction time.  Interning leaks each
/// *distinct* name exactly once — building ten thousand `shard8(...)`
/// instances retains one copy of the string, so repeated benchmark trials
/// do not accumulate leaks.
pub fn intern_name(name: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL.get_or_init(Default::default).lock().unwrap();
    if let Some(&interned) = pool.get(name.as_str()) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// Structural statistics gathered by a quiescent (single-threaded) traversal.
/// These feed the Figure 5 "detailed analysis" table.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct MapStats {
    /// Number of keys logically present.
    pub key_count: u64,
    /// Sum of the keys logically present.
    pub key_sum: u128,
    /// Total number of nodes (including routing/sentinel nodes).
    pub node_count: u64,
    /// Sum over all *present keys* of their depth (root = depth 0).
    pub key_depth_sum: u64,
    /// Approximate bytes of memory retained by nodes.
    pub approx_bytes: u64,
}

impl MapStats {
    /// Average depth of a present key, the paper's "Avg. Key Depth" column.
    pub fn avg_key_depth(&self) -> f64 {
        if self.key_count == 0 {
            0.0
        } else {
            self.key_depth_sum as f64 / self.key_count as f64
        }
    }
}

/// Cumulative per-shard operation counts reported by sharded structures (see
/// [`ConcurrentMap::shard_loads`]). Together with the per-shard
/// [`MapStats::key_count`] from [`ConcurrentMap::shard_stats`], this is the
/// load evidence the ROADMAP's elastic-sharding arc needs: which shard the
/// traffic actually hits, not just where the keys sit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardLoad {
    /// Point operations (insert/remove/contains/get/rmw) routed to the shard.
    pub point_ops: u64,
    /// Scan visits: ordered scans that touched the shard (a cross-shard
    /// k-way merge counts once per shard it reads).
    pub scan_ops: u64,
}

/// A concurrent ordered map (dictionary) with `u64` keys and values.
///
/// `insert` has *insert-if-absent* semantics, like the trees in the paper:
/// it returns `false` and leaves the map unchanged if the key is already
/// present.
pub trait ConcurrentMap: Send + Sync {
    /// A short, stable identifier used in benchmark output (e.g.
    /// `int-bst-pathcas`).
    fn name(&self) -> &'static str;

    /// Insert `key` with `value` if absent. Returns `true` if the key was
    /// inserted, `false` if it was already present.
    fn insert(&self, key: Key, value: Value) -> bool;

    /// Remove `key`. Returns `true` if the key was present and removed.
    fn remove(&self, key: Key) -> bool;

    /// Returns `true` if `key` is present.
    fn contains(&self, key: Key) -> bool;

    /// Returns the value associated with `key`, if present.
    fn get(&self, key: Key) -> Option<Value>;

    /// YCSB-style read-modify-write: read the current value (if any), apply
    /// `update`, and write the result back. Returns `true` if the key was
    /// present before the call.
    ///
    /// The default implementation composes `get` + `remove` + `insert`, which
    /// is exactly what YCSB's RMW operation does — and it has **two windows**
    /// with respect to concurrent writers to the same key:
    ///
    /// 1. between the `remove` and the `insert` the key is observably
    ///    *absent*, so a concurrent reader (or validated scan) can see the
    ///    key vanish mid-RMW;
    /// 2. a racing insert landing in that window is silently clobbered by
    ///    the write-back (the classic lost update).
    ///
    /// Every PathCAS structure and the [`reference::LockedBTreeMap`] oracle
    /// override this with a genuinely atomic single-key RMW (read, validate,
    /// one KCAS commit — or under the oracle's lock).  The composed default
    /// intentionally survives for the remaining baselines because it is what
    /// YCSB-F itself executes against non-transactional stores — the
    /// benchmark convention measures exactly this composition.  Workloads
    /// that need *multi-key* atomicity use raw KCAS instead (the
    /// `txn-transfer` scenario in the `workload` crate).
    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        let prev = self.get(key);
        let new = update(prev);
        if prev.is_some() {
            let _ = self.remove(key);
        }
        let _ = self.insert(key, new);
        prev.is_some()
    }

    /// Ordered range scan: the first `len` key/value pairs with key ≥
    /// `start`, in ascending key order (YCSB-E's short range scan).
    ///
    /// Every structure implements this natively — there is deliberately no
    /// composed point-lookup default, because a loop of `get`s is not a range
    /// query (it cannot see keys it did not guess) and is not atomic.
    /// Implementations based on path validation (the PathCAS trees and list)
    /// return an **atomic snapshot**: all returned pairs were simultaneously
    /// present at the operation's linearization point.  Hash-partitioned and
    /// optimistic baselines document their weaker per-partition / best-effort
    /// guarantees on the implementation.
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)>;

    /// Quiescent structural statistics (not linearizable; call only while no
    /// other thread is operating on the map).
    fn stats(&self) -> MapStats;

    /// Number of shards this structure partitions keys across. Unsharded
    /// structures are a single shard.
    fn shard_count(&self) -> usize {
        1
    }

    /// The shard index (`< shard_count()`) that owns `key`. The default
    /// single-shard structure owns every key in shard 0.
    fn shard_of(&self, _key: Key) -> usize {
        0
    }

    /// Quiescent per-shard structural statistics, indexed by shard. The
    /// aggregate [`Self::stats`] is always the element-wise sum of this
    /// breakdown; the default single-shard structure reports one entry.
    fn shard_stats(&self) -> Vec<MapStats> {
        vec![self.stats()]
    }

    /// Cumulative per-shard operation counts, indexed by shard. Structures
    /// that do not track per-shard load (everything unsharded) return an
    /// empty vector, which consumers must treat as "untracked" rather than
    /// "zero load".
    fn shard_loads(&self) -> Vec<ShardLoad> {
        Vec::new()
    }
}

/// Blanket implementation so harness code can box trait objects.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        (**self).insert(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        (**self).remove(key)
    }
    fn contains(&self, key: Key) -> bool {
        (**self).contains(key)
    }
    fn get(&self, key: Key) -> Option<Value> {
        (**self).get(key)
    }
    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        (**self).rmw(key, update)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        (**self).scan(start, len)
    }
    fn stats(&self) -> MapStats {
        (**self).stats()
    }
    fn shard_count(&self) -> usize {
        (**self).shard_count()
    }
    fn shard_of(&self, key: Key) -> usize {
        (**self).shard_of(key)
    }
    fn shard_stats(&self) -> Vec<MapStats> {
        (**self).shard_stats()
    }
    fn shard_loads(&self) -> Vec<ShardLoad> {
        (**self).shard_loads()
    }
}

/// Blanket implementation so harness code can hand out `Arc<T>` etc.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for std::sync::Arc<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        (**self).insert(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        (**self).remove(key)
    }
    fn contains(&self, key: Key) -> bool {
        (**self).contains(key)
    }
    fn get(&self, key: Key) -> Option<Value> {
        (**self).get(key)
    }
    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        (**self).rmw(key, update)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        (**self).scan(start, len)
    }
    fn stats(&self) -> MapStats {
        (**self).stats()
    }
    fn shard_count(&self) -> usize {
        (**self).shard_count()
    }
    fn shard_of(&self, key: Key) -> usize {
        (**self).shard_of(key)
    }
    fn shard_stats(&self) -> Vec<MapStats> {
        (**self).shard_stats()
    }
    fn shard_loads(&self) -> Vec<ShardLoad> {
        (**self).shard_loads()
    }
}

/// A reference sequential implementation used by the correctness suites.
pub mod reference {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// A `Mutex<BTreeMap>`-based [`ConcurrentMap`]: trivially correct, used
    /// as the oracle in differential tests and as the `tle`-style coarse
    /// baseline sanity check.
    #[derive(Default)]
    pub struct LockedBTreeMap {
        inner: Mutex<BTreeMap<Key, Value>>,
    }

    impl LockedBTreeMap {
        /// Create an empty oracle map.
        pub fn new() -> Self {
            Self::default()
        }
    }

    impl ConcurrentMap for LockedBTreeMap {
        fn name(&self) -> &'static str {
            "locked-btreemap"
        }
        fn insert(&self, key: Key, value: Value) -> bool {
            let mut m = self.inner.lock().unwrap();
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(value);
                true
            } else {
                false
            }
        }
        fn remove(&self, key: Key) -> bool {
            self.inner.lock().unwrap().remove(&key).is_some()
        }
        fn contains(&self, key: Key) -> bool {
            self.inner.lock().unwrap().contains_key(&key)
        }
        fn get(&self, key: Key) -> Option<Value> {
            self.inner.lock().unwrap().get(&key).copied()
        }
        fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
            // Holding the lock across read and write makes this RMW truly
            // atomic, unlike the composed default.
            let mut m = self.inner.lock().unwrap();
            let prev = m.get(&key).copied();
            m.insert(key, update(prev));
            prev.is_some()
        }
        fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
            // The whole range is read under one lock acquisition, so the
            // result is a genuinely atomic snapshot — the oracle the stress
            // suites cross-check every other structure's scan against.
            let m = self.inner.lock().unwrap();
            m.range(start..).take(len).map(|(&k, &v)| (k, v)).collect()
        }
        fn stats(&self) -> MapStats {
            let m = self.inner.lock().unwrap();
            MapStats {
                key_count: m.len() as u64,
                key_sum: m.keys().map(|&k| k as u128).sum(),
                node_count: m.len() as u64,
                key_depth_sum: 0,
                approx_bytes: (m.len() * 3 * 8) as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::LockedBTreeMap;
    use super::*;

    #[test]
    fn oracle_map_basic() {
        let m = LockedBTreeMap::new();
        assert!(m.insert(5, 50));
        assert!(!m.insert(5, 51));
        assert!(m.contains(5));
        assert_eq!(m.get(5), Some(50));
        assert!(m.remove(5));
        assert!(!m.remove(5));
        assert!(!m.contains(5));
    }

    #[test]
    fn stats_reflect_contents() {
        let m = LockedBTreeMap::new();
        for k in 1..=10u64 {
            m.insert(k, k);
        }
        let s = m.stats();
        assert_eq!(s.key_count, 10);
        assert_eq!(s.key_sum, 55);
    }

    #[test]
    fn avg_depth_handles_empty() {
        assert_eq!(MapStats::default().avg_key_depth(), 0.0);
    }

    #[test]
    fn interned_names_are_deduplicated() {
        let a = intern_name("shard2(test-intern)".to_string());
        let b = intern_name("shard2(test-intern)".to_string());
        assert_eq!(a, "shard2(test-intern)");
        // Same allocation, not just equal contents.
        assert!(std::ptr::eq(a, b));
        let c = intern_name("shard3(test-intern)".to_string());
        assert_ne!(a, c);
    }

    #[test]
    fn oracle_scan_is_ordered_and_bounded() {
        let m = LockedBTreeMap::new();
        for k in [5u64, 1, 9, 3, 7] {
            m.insert(k, k * 10);
        }
        assert_eq!(m.scan(1, 3), vec![(1, 10), (3, 30), (5, 50)]);
        assert_eq!(m.scan(4, 10), vec![(5, 50), (7, 70), (9, 90)]);
        assert_eq!(m.scan(10, 4), vec![]);
        assert_eq!(m.scan(1, 0), vec![]);
        // Boxed trait objects forward scan.
        let boxed: Box<dyn ConcurrentMap> = Box::new(LockedBTreeMap::new());
        boxed.insert(2, 20);
        assert_eq!(boxed.scan(1, 8), vec![(2, 20)]);
    }

    #[test]
    fn rmw_reads_then_writes_back() {
        let m = LockedBTreeMap::new();
        // Absent key: update sees None, the result is inserted.
        assert!(!m.rmw(7, &mut |v| v.unwrap_or(0) + 1));
        assert_eq!(m.get(7), Some(1));
        // Present key: update sees the old value.
        assert!(m.rmw(7, &mut |v| v.unwrap_or(0) + 10));
        assert_eq!(m.get(7), Some(11));
        // Boxed trait objects forward rmw.
        let boxed: Box<dyn ConcurrentMap> = Box::new(LockedBTreeMap::new());
        assert!(!boxed.rmw(1, &mut |_| 5));
        assert_eq!(boxed.get(1), Some(5));
    }
}
