//! Reusable single-threaded correctness suites.
//!
//! Every map implementation in the workspace runs the same differential
//! suites against the [`LockedBTreeMap`]
//! oracle, so a new structure gets a meaningful test battery by writing a
//! handful of one-line tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::reference::LockedBTreeMap;
use crate::{ConcurrentMap, Key};

/// Basic single-threaded semantics every map must satisfy.
pub fn check_basic_semantics<M: ConcurrentMap>(map: &M) {
    assert!(!map.contains(10), "{}: empty map should not contain 10", map.name());
    assert!(map.insert(10, 100), "{}: first insert must succeed", map.name());
    assert!(!map.insert(10, 101), "{}: duplicate insert must fail", map.name());
    assert!(map.contains(10));
    assert_eq!(map.get(10), Some(100), "{}: value must be the first inserted", map.name());
    assert!(map.remove(10));
    assert!(!map.remove(10), "{}: double remove must fail", map.name());
    assert!(!map.contains(10));
    assert_eq!(map.get(10), None);

    // Re-insertion after deletion.
    assert!(map.insert(10, 200));
    assert_eq!(map.get(10), Some(200));

    // A small batch of distinct keys.
    for k in [1u64, 5, 3, 7, 2, 9, 4, 8, 6] {
        assert!(map.insert(k, k * 10), "{}: insert {} failed", map.name(), k);
    }
    for k in 1..=9u64 {
        assert!(map.contains(k), "{}: missing key {}", map.name(), k);
        assert_eq!(map.get(k), Some(k * 10));
    }
    assert!(!map.contains(11));
}

/// Ascending, descending and alternating insertion/removal orders — the
/// patterns most likely to exercise degenerate tree shapes and the deletion
/// cases (leaf, one child, two children).
pub fn check_ordered_patterns<M: ConcurrentMap>(map: &M) {
    let n: u64 = 200;
    for k in 1..=n {
        assert!(map.insert(k, k));
    }
    for k in 1..=n {
        assert!(map.contains(k));
    }
    // Remove odd keys (exercises leaf and one-child deletes).
    for k in (1..=n).filter(|k| k % 2 == 1) {
        assert!(map.remove(k), "{}: remove {}", map.name(), k);
    }
    for k in 1..=n {
        assert_eq!(map.contains(k), k % 2 == 0);
    }
    // Remove the rest in descending order.
    for k in (1..=n).rev().filter(|k| k % 2 == 0) {
        assert!(map.remove(k));
    }
    let s = map.stats();
    assert_eq!(s.key_count, 0, "{}: map should be empty", map.name());

    // Descending insertion.
    for k in (1..=n).rev() {
        assert!(map.insert(k, k + 1));
    }
    for k in 1..=n {
        assert_eq!(map.get(k), Some(k + 1));
    }
    let s = map.stats();
    assert_eq!(s.key_count, n);
    assert_eq!(s.key_sum, (n as u128) * (n as u128 + 1) / 2);
}

/// Differential test against the oracle with a random operation mix.
pub fn check_random_against_oracle<M: ConcurrentMap>(map: &M, ops: usize, key_range: Key, seed: u64) {
    let oracle = LockedBTreeMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..ops {
        let key = rng.gen_range(1..=key_range);
        match rng.gen_range(0..3) {
            0 => {
                let v = i as u64;
                assert_eq!(
                    map.insert(key, v),
                    oracle.insert(key, v),
                    "{}: insert({key}) diverged at op {i}",
                    map.name()
                );
            }
            1 => {
                assert_eq!(
                    map.remove(key),
                    oracle.remove(key),
                    "{}: remove({key}) diverged at op {i}",
                    map.name()
                );
            }
            _ => {
                assert_eq!(
                    map.contains(key),
                    oracle.contains(key),
                    "{}: contains({key}) diverged at op {i}",
                    map.name()
                );
                assert_eq!(map.get(key), oracle.get(key));
            }
        }
    }
    // Final-state equivalence.
    let s = map.stats();
    let o = oracle.stats();
    assert_eq!(s.key_count, o.key_count, "{}: final key count diverged", map.name());
    assert_eq!(s.key_sum, o.key_sum, "{}: final key sum diverged", map.name());
    for key in 1..=key_range {
        assert_eq!(map.contains(key), oracle.contains(key), "{}: final contains({key})", map.name());
    }
}

/// Single-threaded scan semantics every map must satisfy: ordered output,
/// correct range boundaries, and length truncation.
pub fn check_scan_semantics<M: ConcurrentMap>(map: &M) {
    assert!(map.scan(1, 16).is_empty(), "{}: scan of empty map", map.name());
    for k in [40u64, 10, 30, 50, 20] {
        assert!(map.insert(k, k + 1));
    }
    assert_eq!(map.scan(1, 10), vec![(10, 11), (20, 21), (30, 31), (40, 41), (50, 51)], "{}", map.name());
    assert_eq!(map.scan(15, 2), vec![(20, 21), (30, 31)], "{}", map.name());
    assert_eq!(map.scan(30, 2), vec![(30, 31), (40, 41)], "{}: inclusive start", map.name());
    assert_eq!(map.scan(51, 4), vec![], "{}: scan past the last key", map.name());
    assert!(map.scan(1, 0).is_empty(), "{}: zero-length scan", map.name());
    for k in [10u64, 20, 30, 40, 50] {
        assert!(map.remove(k));
    }
    assert!(map.scan(1, 16).is_empty(), "{}: scan after emptying", map.name());
}

/// Differential scan test against the oracle: after a random build, every
/// `(start, len)` probe must return exactly what the atomic
/// [`LockedBTreeMap`] returns.
pub fn check_scan_against_oracle<M: ConcurrentMap>(map: &M, key_range: Key, seed: u64) {
    let oracle = LockedBTreeMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..(key_range * 2) {
        let key = rng.gen_range(1..=key_range);
        if rng.gen_bool(0.7) {
            let v = i;
            assert_eq!(map.insert(key, v), oracle.insert(key, v), "{}: insert({key})", map.name());
        } else {
            assert_eq!(map.remove(key), oracle.remove(key), "{}: remove({key})", map.name());
        }
    }
    for _ in 0..64 {
        let start = rng.gen_range(1..=key_range);
        let len = rng.gen_range(0..=32usize);
        assert_eq!(
            map.scan(start, len),
            oracle.scan(start, len),
            "{}: scan({start}, {len}) diverged",
            map.name()
        );
    }
    // Full-range scan equals the oracle's full contents.
    assert_eq!(
        map.scan(1, key_range as usize + 1),
        oracle.scan(1, key_range as usize + 1),
        "{}: full scan diverged",
        map.name()
    );
}

/// Quiescent scan audit shared by the harness and the stress suites: the
/// whole key space, walked through `scan`, must contain exactly the keys
/// that the structural traversal (`stats`, precomputed by the caller after
/// all workers joined) counts.
///
/// The walk is **chunked**: one scan per [`SCAN_AUDIT_CHUNK`] keys, resuming
/// after the last key seen.  A single full-range scan would make the
/// validated read-set of the PathCAS trees span the entire structure, which
/// at paper-scale key ranges (> 2²⁰ keys) exceeds the bounded read-set
/// PathCAS asserts; per-chunk scans stay bounded, and at quiescence the
/// chunked union is exact.
pub fn check_scan_matches_stats<M: ConcurrentMap + ?Sized>(map: &M, stats: &crate::MapStats) {
    let mut count = 0u64;
    let mut sum = 0u128;
    let mut start = 1u64;
    loop {
        let part = map.scan(start, SCAN_AUDIT_CHUNK);
        for &(k, _) in &part {
            count += 1;
            sum += k as u128;
        }
        match part.last() {
            Some(&(k, _)) if part.len() == SCAN_AUDIT_CHUNK && k < crate::MAX_KEY => start = k + 1,
            _ => break,
        }
    }
    assert_eq!(
        count,
        stats.key_count,
        "{}: full chunked scan saw a different key count than stats()",
        map.name()
    );
    assert_eq!(sum, stats.key_sum, "{}: full chunked scan keysum diverged from stats()", map.name());
}

/// Keys per scan in [`check_scan_matches_stats`] — far below the PathCAS
/// read-set bound even with a degenerate traversal path on top.
pub const SCAN_AUDIT_CHUNK: usize = 4096;

/// Quick structural sanity check used after stress runs: key count and key
/// sum reported by `stats()` must be consistent with `contains` over the
/// whole key range.
pub fn check_stats_consistency<M: ConcurrentMap>(map: &M, key_range: Key) {
    let s = map.stats();
    let mut count = 0u64;
    let mut sum = 0u128;
    for key in 1..=key_range {
        if map.contains(key) {
            count += 1;
            sum += key as u128;
        }
    }
    assert_eq!(s.key_count, count, "{}: stats key_count vs contains()", map.name());
    assert_eq!(s.key_sum, sum, "{}: stats key_sum vs contains()", map.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::LockedBTreeMap;

    #[test]
    fn oracle_passes_its_own_suites() {
        let m = LockedBTreeMap::new();
        check_basic_semantics(&m);
        let m = LockedBTreeMap::new();
        check_ordered_patterns(&m);
        let m = LockedBTreeMap::new();
        check_random_against_oracle(&m, 2000, 64, 42);
        check_stats_consistency(&m, 64);
        let m = LockedBTreeMap::new();
        check_scan_semantics(&m);
        let m = LockedBTreeMap::new();
        check_scan_against_oracle(&m, 64, 42);
    }

    #[test]
    fn chunked_scan_audit_crosses_chunk_boundaries() {
        let m = LockedBTreeMap::new();
        // More keys than SCAN_AUDIT_CHUNK so the audit must resume at least
        // twice; gaps make the resume key non-contiguous.
        for k in (1..=3 * SCAN_AUDIT_CHUNK as u64).filter(|k| k % 3 != 0) {
            m.insert(k, k);
        }
        check_scan_matches_stats(&m, &m.stats());
        // Empty map: audit must terminate immediately.
        check_scan_matches_stats(&LockedBTreeMap::new(), &crate::MapStats::default());
    }
}
