//! Reusable single-threaded correctness suites.
//!
//! Every map implementation in the workspace runs the same differential
//! suites against the [`LockedBTreeMap`]
//! oracle, so a new structure gets a meaningful test battery by writing a
//! handful of one-line tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::reference::LockedBTreeMap;
use crate::{ConcurrentMap, Key};

/// Basic single-threaded semantics every map must satisfy.
pub fn check_basic_semantics<M: ConcurrentMap>(map: &M) {
    assert!(!map.contains(10), "{}: empty map should not contain 10", map.name());
    assert!(map.insert(10, 100), "{}: first insert must succeed", map.name());
    assert!(!map.insert(10, 101), "{}: duplicate insert must fail", map.name());
    assert!(map.contains(10));
    assert_eq!(map.get(10), Some(100), "{}: value must be the first inserted", map.name());
    assert!(map.remove(10));
    assert!(!map.remove(10), "{}: double remove must fail", map.name());
    assert!(!map.contains(10));
    assert_eq!(map.get(10), None);

    // Re-insertion after deletion.
    assert!(map.insert(10, 200));
    assert_eq!(map.get(10), Some(200));

    // A small batch of distinct keys.
    for k in [1u64, 5, 3, 7, 2, 9, 4, 8, 6] {
        assert!(map.insert(k, k * 10), "{}: insert {} failed", map.name(), k);
    }
    for k in 1..=9u64 {
        assert!(map.contains(k), "{}: missing key {}", map.name(), k);
        assert_eq!(map.get(k), Some(k * 10));
    }
    assert!(!map.contains(11));
}

/// Ascending, descending and alternating insertion/removal orders — the
/// patterns most likely to exercise degenerate tree shapes and the deletion
/// cases (leaf, one child, two children).
pub fn check_ordered_patterns<M: ConcurrentMap>(map: &M) {
    let n: u64 = 200;
    for k in 1..=n {
        assert!(map.insert(k, k));
    }
    for k in 1..=n {
        assert!(map.contains(k));
    }
    // Remove odd keys (exercises leaf and one-child deletes).
    for k in (1..=n).filter(|k| k % 2 == 1) {
        assert!(map.remove(k), "{}: remove {}", map.name(), k);
    }
    for k in 1..=n {
        assert_eq!(map.contains(k), k % 2 == 0);
    }
    // Remove the rest in descending order.
    for k in (1..=n).rev().filter(|k| k % 2 == 0) {
        assert!(map.remove(k));
    }
    let s = map.stats();
    assert_eq!(s.key_count, 0, "{}: map should be empty", map.name());

    // Descending insertion.
    for k in (1..=n).rev() {
        assert!(map.insert(k, k + 1));
    }
    for k in 1..=n {
        assert_eq!(map.get(k), Some(k + 1));
    }
    let s = map.stats();
    assert_eq!(s.key_count, n);
    assert_eq!(s.key_sum, (n as u128) * (n as u128 + 1) / 2);
}

/// Differential test against the oracle with a random operation mix.
pub fn check_random_against_oracle<M: ConcurrentMap>(map: &M, ops: usize, key_range: Key, seed: u64) {
    let oracle = LockedBTreeMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..ops {
        let key = rng.gen_range(1..=key_range);
        match rng.gen_range(0..3) {
            0 => {
                let v = i as u64;
                assert_eq!(
                    map.insert(key, v),
                    oracle.insert(key, v),
                    "{}: insert({key}) diverged at op {i}",
                    map.name()
                );
            }
            1 => {
                assert_eq!(
                    map.remove(key),
                    oracle.remove(key),
                    "{}: remove({key}) diverged at op {i}",
                    map.name()
                );
            }
            _ => {
                assert_eq!(
                    map.contains(key),
                    oracle.contains(key),
                    "{}: contains({key}) diverged at op {i}",
                    map.name()
                );
                assert_eq!(map.get(key), oracle.get(key));
            }
        }
    }
    // Final-state equivalence.
    let s = map.stats();
    let o = oracle.stats();
    assert_eq!(s.key_count, o.key_count, "{}: final key count diverged", map.name());
    assert_eq!(s.key_sum, o.key_sum, "{}: final key sum diverged", map.name());
    for key in 1..=key_range {
        assert_eq!(map.contains(key), oracle.contains(key), "{}: final contains({key})", map.name());
    }
}

/// Quick structural sanity check used after stress runs: key count and key
/// sum reported by `stats()` must be consistent with `contains` over the
/// whole key range.
pub fn check_stats_consistency<M: ConcurrentMap>(map: &M, key_range: Key) {
    let s = map.stats();
    let mut count = 0u64;
    let mut sum = 0u128;
    for key in 1..=key_range {
        if map.contains(key) {
            count += 1;
            sum += key as u128;
        }
    }
    assert_eq!(s.key_count, count, "{}: stats key_count vs contains()", map.name());
    assert_eq!(s.key_sum, sum, "{}: stats key_sum vs contains()", map.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::LockedBTreeMap;

    #[test]
    fn oracle_passes_its_own_suites() {
        let m = LockedBTreeMap::new();
        check_basic_semantics(&m);
        let m = LockedBTreeMap::new();
        check_ordered_patterns(&m);
        let m = LockedBTreeMap::new();
        check_random_against_oracle(&m, 2000, 64, 42);
        check_stats_consistency(&m, 64);
    }
}
