//! # baselines — handcrafted competitor search structures
//!
//! The PathCAS paper compares its trees against a range of handcrafted
//! fine-grained designs (Figure 4).  This crate provides the handcrafted
//! baseline we reproduce:
//!
//! * [`ticket_bst::TicketBst`] — an *external* BST with per-node locks and
//!   optimistic (lock-free) searches, in the style of the ASCY `ext-bst-locks`
//!   baseline (David, Guerraoui & Trigonakis, ASPLOS 2015).
//!
//! The remaining handcrafted baselines of Figure 4 (the Ellen et al. and
//! Natarajan–Mittal lock-free external BSTs, the Drachsler logical-ordering
//! tree, the BCCO optimistic AVL and the LLX/SCX chromatic tree) are not
//! reproduced one-to-one; DESIGN.md §4 records the substitution and which
//! comparisons each figure driver runs instead.
//!
//! The baseline implements [`mapapi::ConcurrentMap`] and runs the same
//! correctness and stress suites as every other structure in the workspace.

#![warn(missing_docs)]

pub mod ticket_bst;

pub use ticket_bst::TicketBst;
