//! `ext-bst-locks`: an external (leaf-oriented) binary search tree with
//! per-node locks and optimistic lock-free searches, following the
//! asynchronized-concurrency recipe of David, Guerraoui & Trigonakis
//! (ASPLOS 2015).
//!
//! * Keys live only in leaves; internal nodes carry routing keys and are
//!   immutable except for their child pointers.
//! * Searches never take locks and never retry.
//! * An insert locks the parent of the reached leaf, validates that nothing
//!   changed, and replaces the leaf with a small subtree of three nodes.
//! * A delete locks the grandparent and parent, validates, splices the
//!   parent out (replacing it with the leaf's sibling) and marks the removed
//!   nodes.  Locks are always taken ancestor-first, so there is no deadlock.
//!
//! Removed nodes are reclaimed through epoch-based reclamation, since
//! searches may still be traversing them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam_epoch::Guard;
use mapapi::{ConcurrentMap, Key, MapStats, Value};
use parking_lot::Mutex;

const NIL: u64 = 0;
/// Sentinel key larger than any user key.
const KEY_INF1: u64 = u64::MAX - 1;
/// Sentinel key larger than [`KEY_INF1`].
const KEY_INF2: u64 = u64::MAX;

struct Node {
    key: u64,
    val: u64,
    /// Child pointers (NIL for leaves).
    left: AtomicU64,
    right: AtomicU64,
    lock: Mutex<()>,
    marked: AtomicBool,
}

impl Node {
    fn leaf(key: u64, val: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            val,
            left: AtomicU64::new(NIL),
            right: AtomicU64::new(NIL),
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
        }))
    }

    fn internal(key: u64, left: u64, right: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            val: 0,
            left: AtomicU64::new(left),
            right: AtomicU64::new(right),
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
        }))
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.left.load(Ordering::Acquire) == NIL && self.right.load(Ordering::Acquire) == NIL
    }
}

#[inline]
fn ptr_to_word(ptr: *const Node) -> u64 {
    ptr as usize as u64
}

/// # Safety
/// `word` must be a live `Node` pointer observed while `_guard` pins the
/// current epoch (so the node cannot be reclaimed).
#[inline]
unsafe fn word_to_ref(word: u64, _guard: &Guard) -> &Node {
    // SAFETY: the caller guarantees `word` is a live node pointer observed
    // under the pinned epoch represented by `_guard`.
    unsafe { &*(word as usize as *const Node) }
}

/// Retire a node through the epoch collector.
///
/// # Safety
/// `word` must be a `Box::into_raw` node pointer that the caller just
/// unlinked; it must be retired at most once.
unsafe fn retire(word: u64, guard: &Guard) {
    // SAFETY: per the contract above, the node is unlinked and retired only
    // once; the deferred drop runs after all pinned epochs have expired.
    unsafe { guard.defer_unchecked(move || drop(Box::from_raw(word as usize as *mut Node))) };
}

/// The external BST with per-node locks (`ext-bst-locks`).
pub struct TicketBst {
    root: *mut Node,
    retries: AtomicU64,
}

// SAFETY: nodes are heap-allocated; shared mutation happens only under
// per-node locks (updates) or through atomic child pointers (searches), and
// reclamation is epoch-deferred, so the tree may move between threads.
unsafe impl Send for TicketBst {}
// SAFETY: see `Send` above — `&TicketBst` is safe to share across threads.
unsafe impl Sync for TicketBst {}

impl Default for TicketBst {
    fn default() -> Self {
        Self::new()
    }
}

struct SearchResult<'g> {
    gparent: &'g Node,
    parent: &'g Node,
    leaf: &'g Node,
}

impl TicketBst {
    /// Create an empty tree (three sentinel nodes).
    pub fn new() -> Self {
        let leaf_inf1 = Node::leaf(KEY_INF1, 0);
        let leaf_inf2 = Node::leaf(KEY_INF2, 0);
        let root = Node::internal(KEY_INF2, ptr_to_word(leaf_inf1), ptr_to_word(leaf_inf2));
        TicketBst { root, retries: AtomicU64::new(0) }
    }

    /// Number of update retries caused by failed validation.
    pub fn retry_count(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.retries.load(Ordering::Relaxed)
    }

    fn note_retry(&self) {
        // ORDERING: Relaxed — diagnostic counter only; correctness is carried
        // by the locks and validated child swaps, not by this statistic.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Lock-free traversal to the leaf responsible for `key`.
    fn search<'g>(&self, key: u64, guard: &'g Guard) -> SearchResult<'g> {
        // SAFETY: the root sentinel is allocated in `new` and freed only in
        // Drop, so it outlives every guard borrowed from `&self`.
        let root: &Node = unsafe { &*self.root };
        let mut gparent = root;
        let mut parent = root;
        // SAFETY: child words are live node pointers (published with Release
        // stores) observed under the epoch pin, so the node cannot be freed.
        let mut curr: &Node =
            unsafe { word_to_ref(root.left.load(Ordering::Acquire), guard) };
        while !curr.is_leaf() {
            gparent = parent;
            parent = curr;
            let next = if key < curr.key {
                curr.left.load(Ordering::Acquire)
            } else {
                curr.right.load(Ordering::Acquire)
            };
            // SAFETY: as above — a published child pointer read under the pin.
            curr = unsafe { word_to_ref(next, guard) };
        }
        SearchResult { gparent, parent, leaf: curr }
    }

    /// Which child word of `parent` currently points at `child_word`?
    /// Returns `None` if neither does (validation failure).
    fn child_slot(parent: &Node, child_word: u64) -> Option<&AtomicU64> {
        if parent.left.load(Ordering::Acquire) == child_word {
            Some(&parent.left)
        } else if parent.right.load(Ordering::Acquire) == child_word {
            Some(&parent.right)
        } else {
            None
        }
    }

    fn insert_impl(&self, key: u64, val: u64) -> bool {
        debug_assert!(key < KEY_INF1);
        loop {
            let guard = crossbeam_epoch::pin();
            let res = self.search(key, &guard);
            if res.leaf.key == key {
                return false;
            }
            let parent = res.parent;
            let leaf_word = ptr_to_word(res.leaf as *const Node);
            let _plock = parent.lock.lock();
            if parent.marked.load(Ordering::Acquire) {
                self.note_retry();
                continue;
            }
            let slot = match Self::child_slot(parent, leaf_word) {
                Some(s) => s,
                None => {
                    self.note_retry();
                    continue;
                }
            };
            // Replace the leaf with an internal routing node whose children
            // are the old leaf and the new leaf, ordered by key.
            let new_leaf = Node::leaf(key, val);
            let (router_key, left, right) = if key < res.leaf.key {
                (res.leaf.key, ptr_to_word(new_leaf), leaf_word)
            } else {
                (key, leaf_word, ptr_to_word(new_leaf))
            };
            let new_internal = Node::internal(router_key, left, right);
            slot.store(ptr_to_word(new_internal), Ordering::Release);
            return true;
        }
    }

    fn remove_impl(&self, key: u64) -> bool {
        debug_assert!(key < KEY_INF1);
        loop {
            let guard = crossbeam_epoch::pin();
            let res = self.search(key, &guard);
            if res.leaf.key != key {
                return false;
            }
            let gparent = res.gparent;
            let parent = res.parent;
            let leaf_word = ptr_to_word(res.leaf as *const Node);
            let parent_word = ptr_to_word(parent as *const Node);
            // Ancestor-first locking: grandparent, then parent.
            let _glock = gparent.lock.lock();
            let _plock = parent.lock.lock();
            if gparent.marked.load(Ordering::Acquire) || parent.marked.load(Ordering::Acquire) {
                self.note_retry();
                continue;
            }
            let gslot = match Self::child_slot(gparent, parent_word) {
                Some(s) => s,
                None => {
                    self.note_retry();
                    continue;
                }
            };
            let sibling = if parent.left.load(Ordering::Acquire) == leaf_word {
                parent.right.load(Ordering::Acquire)
            } else if parent.right.load(Ordering::Acquire) == leaf_word {
                parent.left.load(Ordering::Acquire)
            } else {
                self.note_retry();
                continue;
            };
            parent.marked.store(true, Ordering::Release);
            res.leaf.marked.store(true, Ordering::Release);
            gslot.store(sibling, Ordering::Release);
            // SAFETY: both nodes were just marked and unlinked under the
            // ancestor locks, so this thread alone retires each exactly once.
            unsafe {
                retire(parent_word, &guard);
                retire(leaf_word, &guard);
            }
            return true;
        }
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        let guard = crossbeam_epoch::pin();
        let res = self.search(key, &guard);
        if res.leaf.key == key {
            Some(res.leaf.val)
        } else {
            None
        }
    }

    /// Optimistic in-order leaf scan: traverse lock-free (like the searches,
    /// which never validate), pruning subtrees entirely below `start`, and
    /// collect unmarked leaves in key order.  Matching this structure's
    /// asynchronized-concurrency design, the scan is **best-effort**, not an
    /// atomic snapshot: leaves in different subtrees may be observed at
    /// different times.  Concurrent single-key updates are still observed
    /// entirely or not at all (insert publishes one child pointer; delete
    /// marks before unlinking, and marked leaves are skipped).
    fn scan_impl(&self, start: u64, len: usize) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let guard = crossbeam_epoch::pin();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(len.min(1024));
        // Push right before left so leaves pop in ascending key order.
        // SAFETY: the root sentinel lives until Drop (see `search`).
        let root: &Node = unsafe { &*self.root };
        let mut stack: Vec<&Node> = vec![root];
        while let Some(n) = stack.pop() {
            if n.is_leaf() {
                if n.key >= start && n.key < KEY_INF1 && !n.marked.load(Ordering::Acquire) {
                    out.push((n.key, n.val));
                    if out.len() == len {
                        break;
                    }
                }
                continue;
            }
            let left = n.left.load(Ordering::Acquire);
            let right = n.right.load(Ordering::Acquire);
            // SAFETY: internal nodes always have two live children; both
            // words were read under the epoch pin.
            stack.push(unsafe { word_to_ref(right, &guard) });
            // Left subtree keys are < the routing key: irrelevant when the
            // routing key is ≤ start.
            if n.key > start {
                // SAFETY: as above.
                stack.push(unsafe { word_to_ref(left, &guard) });
            }
        }
        out
    }

    fn stats_impl(&self) -> MapStats {
        let mut stats = MapStats::default();
        // SAFETY: stats run quiescently; the root sentinel lives until Drop.
        let root: &Node = unsafe { &*self.root };
        let mut stack: Vec<(u64, u64)> = vec![(ptr_to_word(root), 0)];
        while let Some((word, depth)) = stack.pop() {
            // SAFETY: quiescent traversal — every reachable word is a valid
            // node pointer owned by the tree.
            let node = unsafe { &*(word as usize as *const Node) };
            stats.node_count += 1;
            stats.approx_bytes += std::mem::size_of::<Node>() as u64;
            if node.is_leaf() {
                if node.key < KEY_INF1 {
                    stats.key_count += 1;
                    stats.key_sum += node.key as u128;
                    stats.key_depth_sum += depth;
                }
            } else {
                stack.push((node.left.load(Ordering::Acquire), depth + 1));
                stack.push((node.right.load(Ordering::Acquire), depth + 1));
            }
        }
        stats
    }

    /// Quiescent invariant check: external-BST routing property (left subtree
    /// keys < routing key ≤ right subtree keys) and no reachable marked node.
    pub fn check_invariants(&self) {
        // `low` is inclusive, `high` is exclusive (u128 so that the +inf
        // sentinel leaf has a representable upper bound).
        fn walk(word: u64, low: u128, high: u128) {
            // SAFETY: invariant checks run quiescently; each reachable word
            // is a valid node pointer owned by the tree.
            let node = unsafe { &*(word as usize as *const Node) };
            assert!(!node.marked.load(Ordering::Acquire), "reachable node is marked");
            if node.is_leaf() {
                let key = node.key as u128;
                assert!(key >= low && key < high, "leaf {} outside [{low},{high})", node.key);
                return;
            }
            walk(node.left.load(Ordering::Acquire), low, node.key as u128);
            walk(node.right.load(Ordering::Acquire), node.key as u128, high);
        }
        // SAFETY: the root sentinel lives until Drop.
        walk(ptr_to_word(unsafe { &*self.root }), 0, u64::MAX as u128 + 1);
    }
}

impl ConcurrentMap for TicketBst {
    fn name(&self) -> &'static str {
        "ext-bst-locks"
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: Key) -> bool {
        self.get_impl(key).is_some()
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.get_impl(key)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.scan_impl(start, len)
    }
    fn stats(&self) -> MapStats {
        self.stats_impl()
    }
}

impl Drop for TicketBst {
    fn drop(&mut self) {
        let mut work = vec![ptr_to_word(self.root)];
        while let Some(word) = work.pop() {
            if word == NIL {
                continue;
            }
            let ptr = word as usize as *mut Node;
            // SAFETY: `&mut self` proves exclusive access; every word in the
            // tree is a live `Box::into_raw` pointer owned by it.
            let node = unsafe { &*ptr };
            work.push(node.left.load(Ordering::Acquire));
            work.push(node.right.load(Ordering::Acquire));
            // SAFETY: see above — each node is reclaimed exactly once.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
    use mapapi::suites::*;
    use std::time::Duration;

    #[test]
    fn basic_semantics() {
        check_basic_semantics(&TicketBst::new());
    }

    #[test]
    fn ordered_patterns() {
        let t = TicketBst::new();
        check_ordered_patterns(&t);
        t.check_invariants();
    }

    #[test]
    fn random_vs_oracle() {
        let t = TicketBst::new();
        check_random_against_oracle(&t, 6000, 128, 0xD00D);
        check_stats_consistency(&t, 128);
        t.check_invariants();
    }

    #[test]
    fn stripes_stress() {
        let t = TicketBst::new();
        stress_disjoint_stripes(&t, 4, 300);
        t.check_invariants();
    }

    #[test]
    fn keysum_stress_mixed() {
        let t = TicketBst::new();
        prefill(&t, 512, 256, 4);
        stress_keysum(&t, 4, 512, 40, Duration::from_millis(300), 6);
        t.check_invariants();
    }

    #[test]
    fn keysum_stress_update_heavy() {
        let t = TicketBst::new();
        prefill(&t, 64, 32, 4);
        stress_keysum(&t, 4, 64, 100, Duration::from_millis(300), 60);
        t.check_invariants();
    }

    #[test]
    fn scan_semantics() {
        check_scan_semantics(&TicketBst::new());
    }

    #[test]
    fn scan_vs_oracle() {
        let t = TicketBst::new();
        check_scan_against_oracle(&t, 256, 0x71C7);
        t.check_invariants();
    }
}
