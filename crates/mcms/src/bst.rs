//! An internal BST built with MCMS, used as the comparison point of the
//! paper's Figure 6.
//!
//! Unlike the PathCAS tree, this tree has no version numbers: every update
//! (and every validated negative search) passes its **entire search path** —
//! the key and the followed child pointer of every traversed node — to MCMS
//! as compare-only entries.  On the software path each of those entries gets
//! descriptor-locked, which is precisely the behaviour the paper identifies
//! as the reason MCMS trees collapse under concurrency.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;
use kcas::CasWord;
use mapapi::{ConcurrentMap, Key, MapStats, Value};

use crate::{mcms, mcms_read, McmsArg};

const NIL: u64 = 0;
const KEY_MIN_SENTINEL: u64 = 0;
const KEY_MAX_SENTINEL: u64 = kcas::MAX_VALUE;

struct Node {
    key: CasWord,
    val: CasWord,
    left: CasWord,
    right: CasWord,
}

impl Node {
    fn new(key: u64, val: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key: CasWord::new(key),
            val: CasWord::new(val),
            left: CasWord::new(NIL),
            right: CasWord::new(NIL),
        }))
    }
}

#[inline]
fn ptr_to_word(ptr: *const Node) -> u64 {
    ptr as usize as u64
}

/// # Safety
/// `word` must be a live `Node` pointer read from the tree while `_guard`
/// pins the current epoch (so the node cannot be reclaimed).
#[inline]
unsafe fn word_to_ref(word: u64, _guard: &Guard) -> &Node {
    // SAFETY: the caller guarantees `word` is a live node pointer observed
    // under the pinned epoch represented by `_guard`.
    unsafe { &*(word as usize as *const Node) }
}

/// One step of a recorded search path: the traversed node, the key observed
/// in it, and the child pointer followed out of it (with the value seen).
struct PathStep<'g> {
    node: &'g Node,
    key_seen: u64,
    child_is_right: bool,
    child_seen: u64,
}

struct SearchResult<'g> {
    found: bool,
    curr: Option<&'g Node>,
    parent: &'g Node,
    path: Vec<PathStep<'g>>,
}

/// The MCMS-based internal BST (`int-bst-mcms`).
pub struct McmsBst {
    max_root: *mut Node,
    min_root: *mut Node,
    retries: AtomicU64,
}

// SAFETY: nodes are heap-allocated and only reachable via CasWords; all
// shared access goes through MCMS reads/ops under an epoch guard, so the
// tree may move between and be shared across threads.
unsafe impl Send for McmsBst {}
// SAFETY: see `Send` above — mutation is mediated by MCMS, reclamation by
// epoch-based deferral.
unsafe impl Sync for McmsBst {}

impl Default for McmsBst {
    fn default() -> Self {
        Self::new()
    }
}

impl McmsBst {
    /// Create an empty tree.
    pub fn new() -> Self {
        let min_root = Node::new(KEY_MIN_SENTINEL, 0);
        let max_root = Node::new(KEY_MAX_SENTINEL, 0);
        // SAFETY: `max_root` is a freshly boxed node not yet shared with any
        // other thread, so the raw store cannot race.
        unsafe { (*max_root).left.store(ptr_to_word(min_root)) };
        McmsBst { max_root, min_root, retries: AtomicU64::new(0) }
    }

    /// Number of operation restarts.
    pub fn retry_count(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.retries.load(Ordering::Relaxed)
    }

    fn note_retry(&self) {
        // ORDERING: Relaxed — diagnostic counter only; tree correctness is
        // carried by the MCMS operations, not by this statistic.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain traversal that records, for every traversed node, its key and
    /// the child pointer followed.
    fn search<'g>(&self, guard: &'g Guard, key: u64) -> SearchResult<'g> {
        let mut path = Vec::new();
        // SAFETY: the sentinel roots are allocated in `new` and freed only
        // in Drop, so they outlive every guard borrowed from `&self`.
        let max_root: &Node = unsafe { &*self.max_root };
        let mut parent = max_root;
        path.push(PathStep {
            node: max_root,
            key_seen: KEY_MAX_SENTINEL,
            child_is_right: false,
            child_seen: mcms_read(&max_root.left, guard),
        });
        // SAFETY: as above — the min sentinel lives until Drop.
        let mut curr: &Node = unsafe { &*self.min_root };
        loop {
            let curr_key = mcms_read(&curr.key, guard);
            if curr_key == key {
                return SearchResult { found: true, curr: Some(curr), parent, path };
            }
            let go_right = key > curr_key;
            let child = if go_right {
                mcms_read(&curr.right, guard)
            } else {
                mcms_read(&curr.left, guard)
            };
            path.push(PathStep { node: curr, key_seen: curr_key, child_is_right: go_right, child_seen: child });
            if child == NIL {
                return SearchResult { found: false, curr: None, parent: curr, path };
            }
            parent = curr;
            // SAFETY: `child` is a non-NIL word read via `mcms_read` under
            // `guard`; epoch pinning keeps the node alive.
            curr = unsafe { word_to_ref(child, guard) };
        }
    }

    /// Compare-only entries covering the entire recorded search path.
    fn path_compares<'g>(path: &'g [PathStep<'g>]) -> Vec<McmsArg<'g>> {
        let mut args = Vec::with_capacity(path.len() * 2);
        for step in path {
            args.push(McmsArg::Compare { addr: &step.node.key, expected: step.key_seen });
            let child_word = if step.child_is_right { &step.node.right } else { &step.node.left };
            args.push(McmsArg::Compare { addr: child_word, expected: step.child_seen });
        }
        args
    }

    fn insert_impl(&self, key: u64, val: u64) -> bool {
        loop {
            let guard = crossbeam_epoch::pin();
            let res = self.search(&guard, key);
            if res.found {
                // As in the paper's optimized MCMS tree, inserts that return
                // false avoid the MCMS entirely.
                return false;
            }
            let parent = res.parent;
            let parent_key = mcms_read(&parent.key, &guard);
            let new_node = Node::new(key, val);
            let ptr_to_change = if key < parent_key { &parent.left } else { &parent.right };
            let mut args = Self::path_compares(&res.path);
            // Drop the compare entry for the word we are about to swap (the
            // last followed child pointer) — the swap already checks it.
            args.retain(|a| match a {
                McmsArg::Compare { addr, .. } => !std::ptr::eq(*addr, ptr_to_change as *const CasWord),
                _ => true,
            });
            args.push(McmsArg::Swap { addr: ptr_to_change, old: NIL, new: ptr_to_word(new_node) });
            if mcms(&args, &guard) {
                return true;
            }
            // SAFETY: the MCMS failed, so `new_node` was never published;
            // this thread still solely owns the fresh Box.
            unsafe { drop(Box::from_raw(new_node)) };
            self.note_retry();
        }
    }

    fn remove_impl(&self, key: u64) -> bool {
        loop {
            let guard = crossbeam_epoch::pin();
            let res = self.search(&guard, key);
            if !res.found {
                // Negative result: validate the whole path with a compare-only
                // MCMS (this is the expensive validated search of Figure 6).
                let args = Self::path_compares(&res.path);
                if mcms(&args, &guard) {
                    return false;
                }
                self.note_retry();
                continue;
            }
            let curr = res.curr.expect("found implies node");
            let curr_word = ptr_to_word(curr as *const Node);
            let parent = res.parent;
            let curr_left = mcms_read(&curr.left, &guard);
            let curr_right = mcms_read(&curr.right, &guard);
            let mut args = Self::path_compares(&res.path);

            if curr_left == NIL || curr_right == NIL {
                let child_to_keep = if curr_left == NIL { curr_right } else { curr_left };
                let parent_left = mcms_read(&parent.left, &guard);
                let ptr_to_change = if parent_left == curr_word { &parent.left } else { &parent.right };
                args.retain(|a| match a {
                    McmsArg::Compare { addr, .. } => !std::ptr::eq(*addr, ptr_to_change as *const CasWord),
                    _ => true,
                });
                // Pin curr's children so no concurrent insert slips below it.
                args.push(McmsArg::Compare { addr: &curr.left, expected: curr_left });
                args.push(McmsArg::Compare { addr: &curr.right, expected: curr_right });
                args.push(McmsArg::Swap { addr: ptr_to_change, old: curr_word, new: child_to_keep });
                if mcms(&args, &guard) {
                    // SAFETY: the successful MCMS unlinked `curr`, so only
                    // this thread defers its reclamation; the deferred drop
                    // runs after every pinned reader's epoch has expired.
                    unsafe {
                        guard.defer_unchecked(move || drop(Box::from_raw(curr_word as usize as *mut Node)))
                    };
                    return true;
                }
                self.note_retry();
                continue;
            }

            // Two children: find the successor (recording its path), promote
            // its key/value into curr and splice it out.
            let mut succ_path: Vec<PathStep> = Vec::new();
            let mut succ_p: &Node = curr;
            // SAFETY: `curr_right` is non-NIL and was read via `mcms_read`
            // under the pin, so the successor subtree stays live.
            let mut succ: &Node = unsafe { word_to_ref(curr_right, &guard) };
            succ_path.push(PathStep {
                node: curr,
                key_seen: key,
                child_is_right: true,
                child_seen: curr_right,
            });
            loop {
                let l = mcms_read(&succ.left, &guard);
                if l == NIL {
                    break;
                }
                succ_path.push(PathStep {
                    node: succ,
                    key_seen: mcms_read(&succ.key, &guard),
                    child_is_right: false,
                    child_seen: l,
                });
                succ_p = succ;
                // SAFETY: as above — non-NIL word read under the same pin.
                succ = unsafe { word_to_ref(l, &guard) };
            }
            let succ_word = ptr_to_word(succ as *const Node);
            let succ_key = mcms_read(&succ.key, &guard);
            let succ_val = mcms_read(&succ.val, &guard);
            let succ_r = mcms_read(&succ.right, &guard);
            let curr_val = mcms_read(&curr.val, &guard);
            let succ_p_right = mcms_read(&succ_p.right, &guard);
            let splice_ptr = if succ_p_right == succ_word { &succ_p.right } else { &succ_p.left };

            args.extend(Self::path_compares(&succ_path));
            // Remove compare entries that conflict with swapped addresses.
            args.retain(|a| match a {
                McmsArg::Compare { addr, .. } => {
                    !std::ptr::eq(*addr, splice_ptr as *const CasWord)
                        && !std::ptr::eq(*addr, &curr.key as *const CasWord)
                        && !std::ptr::eq(*addr, &curr.val as *const CasWord)
                }
                _ => true,
            });
            args.push(McmsArg::Swap { addr: splice_ptr, old: succ_word, new: succ_r });
            args.push(McmsArg::Swap { addr: &curr.key, old: key, new: succ_key });
            args.push(McmsArg::Swap { addr: &curr.val, old: curr_val, new: succ_val });
            args.push(McmsArg::Compare { addr: &succ.key, expected: succ_key });
            args.push(McmsArg::Compare { addr: &succ.right, expected: succ_r });
            args.push(McmsArg::Compare { addr: &succ.left, expected: NIL });
            if mcms(&args, &guard) {
                // SAFETY: the MCMS spliced `succ` out of the tree; only this
                // thread defers its reclamation, and the deferred drop runs
                // after all pinned epochs have expired.
                unsafe {
                    guard.defer_unchecked(move || drop(Box::from_raw(succ_word as usize as *mut Node)))
                };
                return true;
            }
            self.note_retry();
        }
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        loop {
            let guard = crossbeam_epoch::pin();
            let res = self.search(&guard, key);
            if let Some(curr) = res.curr {
                // Positive searches avoid MCMS (the paper's optimization).
                return Some(mcms_read(&curr.val, &guard));
            }
            // Negative searches validate the path with a compare-only MCMS —
            // this is what makes MCMS searches write to the whole path.
            let args = Self::path_compares(&res.path);
            if mcms(&args, &guard) {
                return None;
            }
            self.note_retry();
        }
    }

    /// Validated in-order range scan, the MCMS way: the traversal records a
    /// compare-only entry for **every key, value and child pointer it
    /// reads**, then executes one large compare-only MCMS.  Success means
    /// nothing in the visited subrange changed, so the result is an atomic
    /// snapshot — but on the software path every one of those entries gets
    /// descriptor-locked, which is exactly the whole-path write traffic the
    /// paper's Figure 6 identifies as the MCMS bottleneck (a scan makes it
    /// proportional to the *range*, not just the path).
    fn scan_impl(&self, start: u64, len: usize) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let start = start.max(KEY_MIN_SENTINEL + 1);
        loop {
            let guard = crossbeam_epoch::pin();
            let mut out: Vec<(u64, u64)> = Vec::with_capacity(len.min(1024));
            let mut args: Vec<McmsArg<'_>> = Vec::new();
            // SAFETY: the min sentinel lives until Drop (see `search`).
            let min_root: &Node = unsafe { &*self.min_root };
            let root_word = mcms_read(&min_root.right, &guard);
            args.push(McmsArg::Compare { addr: &min_root.right, expected: root_word });
            let mut stack: Vec<(&Node, u64)> = Vec::new();
            let mut curr = root_word;
            'walk: loop {
                while curr != NIL {
                    // SAFETY: `curr` was read via `mcms_read` under `guard`,
                    // so the node is protected from reclamation.
                    let node: &Node = unsafe { word_to_ref(curr, &guard) };
                    let key = mcms_read(&node.key, &guard);
                    args.push(McmsArg::Compare { addr: &node.key, expected: key });
                    let next = if key >= start {
                        stack.push((node, key));
                        mcms_read(&node.left, &guard)
                    } else {
                        mcms_read(&node.right, &guard)
                    };
                    let followed = if key >= start { &node.left } else { &node.right };
                    args.push(McmsArg::Compare { addr: followed, expected: next });
                    curr = next;
                }
                match stack.pop() {
                    None => break 'walk,
                    Some((node, key)) => {
                        let val = mcms_read(&node.val, &guard);
                        args.push(McmsArg::Compare { addr: &node.val, expected: val });
                        out.push((key, val));
                        if out.len() == len {
                            break 'walk;
                        }
                        curr = mcms_read(&node.right, &guard);
                        args.push(McmsArg::Compare { addr: &node.right, expected: curr });
                    }
                }
            }
            if mcms(&args, &guard) {
                return out;
            }
            self.note_retry();
        }
    }

    fn stats_impl(&self) -> MapStats {
        let mut stats = MapStats {
            node_count: 2,
            approx_bytes: 2 * std::mem::size_of::<Node>() as u64,
            ..Default::default()
        };
        // SAFETY: stats run quiescently (per the `load_quiescent` contract);
        // the sentinel is live and no writer can race this read.
        let root = unsafe { (*self.min_root).right.load_quiescent() };
        let mut stack: Vec<(u64, u64)> = Vec::new();
        if root != NIL {
            stack.push((root, 0));
        }
        while let Some((word, depth)) = stack.pop() {
            // SAFETY: quiescent traversal — every reachable word is a valid
            // node pointer owned by the tree.
            let node = unsafe { &*(word as usize as *const Node) };
            stats.node_count += 1;
            stats.approx_bytes += std::mem::size_of::<Node>() as u64;
            stats.key_count += 1;
            stats.key_sum += node.key.load_quiescent() as u128;
            stats.key_depth_sum += depth;
            let l = node.left.load_quiescent();
            let r = node.right.load_quiescent();
            if l != NIL {
                stack.push((l, depth + 1));
            }
            if r != NIL {
                stack.push((r, depth + 1));
            }
        }
        stats
    }
}

impl ConcurrentMap for McmsBst {
    fn name(&self) -> &'static str {
        "int-bst-mcms"
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: Key) -> bool {
        self.get_impl(key).is_some()
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.get_impl(key)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.scan_impl(start, len)
    }
    fn stats(&self) -> MapStats {
        self.stats_impl()
    }
}

impl Drop for McmsBst {
    fn drop(&mut self) {
        let mut work = vec![ptr_to_word(self.max_root)];
        while let Some(word) = work.pop() {
            if word == NIL {
                continue;
            }
            let ptr = word as usize as *mut Node;
            // SAFETY: `&mut self` proves exclusive access; every word in the
            // tree is a live `Box::into_raw` pointer owned by it.
            let node = unsafe { &*ptr };
            work.push(node.left.load_quiescent());
            work.push(node.right.load_quiescent());
            // SAFETY: see above — each node is reclaimed exactly once.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
    use mapapi::suites::*;
    use std::time::Duration;

    #[test]
    fn basic_semantics() {
        check_basic_semantics(&McmsBst::new());
    }

    #[test]
    fn ordered_patterns() {
        check_ordered_patterns(&McmsBst::new());
    }

    #[test]
    fn random_vs_oracle() {
        let t = McmsBst::new();
        check_random_against_oracle(&t, 5000, 128, 0x31337);
        check_stats_consistency(&t, 128);
    }

    #[test]
    fn stripes_stress() {
        let t = McmsBst::new();
        stress_disjoint_stripes(&t, 4, 200);
    }

    #[test]
    fn keysum_stress() {
        let t = McmsBst::new();
        prefill(&t, 256, 128, 9);
        stress_keysum(&t, 4, 256, 50, Duration::from_millis(250), 8);
    }

    #[test]
    fn scan_semantics() {
        check_scan_semantics(&McmsBst::new());
    }

    #[test]
    fn scan_vs_oracle() {
        check_scan_against_oracle(&McmsBst::new(), 192, 0x6C5);
    }
}
