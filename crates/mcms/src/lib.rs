//! # mcms — Multi-Compare Multi-Swap and the MCMS internal BST
//!
//! MCMS (Timnat, Herlihy & Petrank, Euro-Par 2015) extends KCAS with entries
//! that are *compared but not swapped*.  Without HTM (which is unavailable
//! here, and on the paper's AMD machine), every compared address is still
//! "locked" with a descriptor on the software path — so an MCMS-based search
//! tree writes to **every node on the search path, including the root**, in
//! updates *and* in validated searches.  The paper (§5.1, Figure 6) shows
//! that this turns into a global contention bottleneck; this crate exists to
//! reproduce that comparison against PathCAS.
//!
//! The primitive is implemented directly on the [`kcas`] engine: a
//! compare-only entry is a `⟨addr, v, v⟩` triple, exactly the emulation the
//! PathCAS paper describes in §3.2.

#![warn(missing_docs)]

pub mod bst;

pub use bst::McmsBst;

use crossbeam_epoch::Guard;
use kcas::{CasWord, KcasArg};

/// One MCMS argument: either compare-and-swap or compare-only.
#[derive(Clone, Copy)]
pub enum McmsArg<'a> {
    /// Atomically change `addr` from `old` to `new`.
    Swap {
        /// The word to change.
        addr: &'a CasWord,
        /// Expected current value.
        old: u64,
        /// New value.
        new: u64,
    },
    /// Require that `addr` still holds `expected`, without changing it.
    Compare {
        /// The word to check.
        addr: &'a CasWord,
        /// Required value.
        expected: u64,
    },
}

/// Execute an MCMS operation: succeeds (returning `true`) only if every
/// compared address holds its expected value and every swapped address holds
/// its old value; in that case all swaps are applied atomically.
pub fn mcms(args: &[McmsArg<'_>], guard: &Guard) -> bool {
    let entries: Vec<KcasArg<'_>> = args
        .iter()
        .map(|a| match *a {
            McmsArg::Swap { addr, old, new } => KcasArg { addr, old, new },
            McmsArg::Compare { addr, expected } => KcasArg { addr, old: expected, new: expected },
        })
        .collect();
    kcas::kcas(&entries, guard)
}

/// Read a word that may be under an in-flight MCMS (identical to `KCASRead`).
pub fn mcms_read(word: &CasWord, guard: &Guard) -> u64 {
    kcas::read(word, guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_only_entries_gate_the_swap() {
        let gatekeeper = CasWord::new(7);
        let target = CasWord::new(1);
        let guard = crossbeam_epoch::pin();
        // Wrong expectation on the compared word: nothing changes.
        assert!(!mcms(
            &[
                McmsArg::Compare { addr: &gatekeeper, expected: 8 },
                McmsArg::Swap { addr: &target, old: 1, new: 2 },
            ],
            &guard
        ));
        assert_eq!(mcms_read(&target, &guard), 1);
        // Correct expectation: the swap applies, the compared word is intact.
        assert!(mcms(
            &[
                McmsArg::Compare { addr: &gatekeeper, expected: 7 },
                McmsArg::Swap { addr: &target, old: 1, new: 2 },
            ],
            &guard
        ));
        assert_eq!(mcms_read(&target, &guard), 2);
        assert_eq!(mcms_read(&gatekeeper, &guard), 7);
    }

    #[test]
    fn pure_compare_operation_acts_as_validation() {
        let a = CasWord::new(1);
        let b = CasWord::new(2);
        let guard = crossbeam_epoch::pin();
        assert!(mcms(
            &[McmsArg::Compare { addr: &a, expected: 1 }, McmsArg::Compare { addr: &b, expected: 2 }],
            &guard
        ));
        b.store(3);
        assert!(!mcms(
            &[McmsArg::Compare { addr: &a, expected: 1 }, McmsArg::Compare { addr: &b, expected: 2 }],
            &guard
        ));
    }
}
