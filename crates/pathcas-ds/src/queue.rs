//! A lock-free FIFO queue built on KCAS through the PathCAS interface.
//!
//! Multi-word CAS makes the Michael–Scott queue almost trivial: an enqueue
//! atomically appends the new node *and* swings the tail in one two-word
//! `exec`, so the queue never has a lagging tail and dequeuers never help.

use std::sync::atomic::{AtomicU64, Ordering};

use kcas::CasWord;

use crate::node::{ptr_to_word, retire, with_builder, word_to_ref, NIL};

struct Node {
    val: u64,
    next: CasWord,
}

impl Node {
    fn new(val: u64) -> *mut Node {
        Box::into_raw(Box::new(Node { val, next: CasWord::new(NIL) }))
    }
}

/// A concurrent FIFO queue of `u64` values (dummy-node design).
pub struct PathCasQueue {
    head: CasWord,
    tail: CasWord,
    len: AtomicU64,
}

// SAFETY: the queue owns heap nodes reachable only through CasWords; all
// cross-thread access goes through KCAS reads/execs under an epoch guard, so
// sharing references between threads is sound.
unsafe impl Send for PathCasQueue {}
// SAFETY: see `Send` above — mutation is mediated by KCAS, reclamation by
// epoch-based retirement, so `&PathCasQueue` is safe to share.
unsafe impl Sync for PathCasQueue {}

impl Default for PathCasQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl PathCasQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        let dummy = Node::new(0);
        PathCasQueue {
            head: CasWord::new(ptr_to_word(dummy)),
            tail: CasWord::new(ptr_to_word(dummy)),
            len: AtomicU64::new(0),
        }
    }

    /// Append a value to the back of the queue.
    pub fn enqueue(&self, val: u64) {
        let node = Node::new(val);
        loop {
            let ok = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let tail_word = op.read(&self.tail);
                // SAFETY: `tail_word` was read via KCAS under `guard`, so the
                // node it points to cannot be reclaimed while we hold the pin.
                let tail: &Node = unsafe { word_to_ref(tail_word, &guard) };
                // Atomically link the node after the tail and swing the tail.
                op.add(&tail.next, NIL, ptr_to_word(node));
                op.add(&self.tail, tail_word, ptr_to_word(node));
                op.exec()
            });
            if ok {
                // ORDERING: Relaxed — `len` is a best-effort statistic; the
                // queue's linearization is carried entirely by KCAS.
                self.len.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Remove and return the value at the front of the queue, or `None` if it
    /// is empty.
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let result = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let head_word = op.read(&self.head);
                // SAFETY: `head_word` came from a KCAS read under `guard`;
                // the dummy node stays live at least until the pin is dropped.
                let head: &Node = unsafe { word_to_ref(head_word, &guard) };
                let next_word = op.read(&head.next);
                if next_word == NIL {
                    return Some(None);
                }
                // SAFETY: `next_word` is a non-NIL pointer read via KCAS
                // under the same pin, so the node is protected from reuse.
                let next: &Node = unsafe { word_to_ref(next_word, &guard) };
                op.add(&self.head, head_word, next_word);
                if op.exec() {
                    let val = next.val;
                    // The old dummy node is retired; `next` becomes the dummy.
                    // SAFETY: the exec that swung `head` succeeded, so this
                    // thread unlinked `head` and is the only one to retire it;
                    // readers still pinned keep it alive until their epochs end.
                    unsafe { retire(head as *const Node, &guard) };
                    Some(Some(val))
                } else {
                    None
                }
            });
            if let Some(r) = result {
                if r.is_some() {
                    // ORDERING: Relaxed — best-effort statistic (see enqueue).
                    self.len.fetch_sub(1, Ordering::Relaxed);
                }
                return r;
            }
        }
    }

    /// Best-effort number of enqueued elements.
    pub fn len(&self) -> u64 {
        // ORDERING: Relaxed — a momentary statistic; no synchronization with
        // the queue's contents is implied or needed.
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the queue is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        let guard = crossbeam_epoch::pin();
        let head_word = kcas::read(&self.head, &guard);
        // SAFETY: `head_word` was read via KCAS under `guard`, pinning the
        // dummy node for the duration of this call.
        let head: &Node = unsafe { word_to_ref(head_word, &guard) };
        kcas::read(&head.next, &guard) == NIL
    }
}

impl Drop for PathCasQueue {
    fn drop(&mut self) {
        let mut curr = self.head.load_quiescent();
        while curr != NIL {
            let node = curr as usize as *mut Node;
            // SAFETY: `&mut self` proves no concurrent access; every word in
            // the chain is a live `Box::into_raw` pointer owned by the queue,
            // so dereferencing and reclaiming each node exactly once is sound.
            curr = unsafe { (*node).next.load_quiescent() };
            // SAFETY: see above — this node was unlinked from the traversal
            // and is freed exactly once.
            unsafe { drop(Box::from_raw(node)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = PathCasQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(), None);
        for v in 1..=10u64 {
            q.enqueue(v);
        }
        assert_eq!(q.len(), 10);
        for v in 1..=10u64 {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // Values from one producer must be dequeued in the order produced.
        let q = Arc::new(PathCasQueue::new());
        let producers = 3usize;
        let per = 4000u64;
        std::thread::scope(|scope| {
            for t in 0..producers {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..per {
                        q.enqueue(((t as u64) << 32) | i);
                    }
                });
            }
        });
        let mut last_seen = vec![None::<u64>; producers];
        let mut total = 0u64;
        while let Some(v) = q.dequeue() {
            let t = (v >> 32) as usize;
            let i = v & 0xFFFF_FFFF;
            if let Some(prev) = last_seen[t] {
                assert!(i > prev, "producer {t} order violated: {i} after {prev}");
            }
            last_seen[t] = Some(i);
            total += 1;
        }
        assert_eq!(total, producers as u64 * per);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let q = Arc::new(PathCasQueue::new());
        let per = 5000u64;
        let produced: u64 = 2 * per;
        let consumed = std::thread::scope(|scope| {
            for t in 0..2u64 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..per {
                        q.enqueue(t * per + i + 1);
                    }
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut sum = 0u128;
                        let mut count = 0u64;
                        let mut idle = 0;
                        while idle < 10_000 {
                            match q.dequeue() {
                                Some(v) => {
                                    sum += v as u128;
                                    count += 1;
                                    idle = 0;
                                }
                                None => idle += 1,
                            }
                        }
                        (sum, count)
                    })
                })
                .collect();
            consumers.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        let mut total_sum: u128 = consumed.iter().map(|(s, _)| s).sum();
        let mut total_count: u64 = consumed.iter().map(|(_, c)| c).sum();
        while let Some(v) = q.dequeue() {
            total_sum += v as u128;
            total_count += 1;
        }
        assert_eq!(total_count, produced);
        assert_eq!(total_sum, (produced as u128 * (produced as u128 + 1)) / 2);
    }
}
