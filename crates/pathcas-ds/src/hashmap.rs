//! A fixed-capacity hash map whose buckets are PathCAS sorted lists ("hash
//! tables" and "hash-lists" from the paper's conclusion, §6).

use mapapi::{ConcurrentMap, Key, MapStats, Value};

use crate::list::PathCasList;

/// A concurrent hash map with a fixed number of buckets, each a
/// [`PathCasList`].
pub struct PathCasHashMap {
    buckets: Box<[PathCasList]>,
}

impl PathCasHashMap {
    /// Create a map with `buckets` buckets (rounded up to at least 1).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.max(1);
        PathCasHashMap { buckets: (0..n).map(|_| PathCasList::new()).collect() }
    }

    /// Create a map with a default bucket count suitable for small/medium
    /// key ranges.
    pub fn new() -> Self {
        Self::with_buckets(256)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: Key) -> &PathCasList {
        // Fibonacci hashing spreads consecutive keys across buckets.
        let h = ((key as u128 * 0x9E37_79B9_7F4A_7C15u128) >> 64) as u64;
        &self.buckets[(h % self.buckets.len() as u64) as usize]
    }

    /// Quiescent invariant check of every bucket.
    pub fn check_invariants(&self) {
        for b in self.buckets.iter() {
            b.check_invariants();
        }
    }
}

impl Default for PathCasHashMap {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentMap for PathCasHashMap {
    fn name(&self) -> &'static str {
        "hashmap-pathcas"
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        self.bucket(key).insert(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        self.bucket(key).remove(key)
    }
    fn contains(&self, key: Key) -> bool {
        self.bucket(key).contains(key)
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.bucket(key).get(key)
    }
    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        // The bucket list's RMW is atomic, and a key lives in exactly one
        // bucket, so the hash map inherits the single-key atomicity.
        self.bucket(key).rmw(key, update)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        // Sorted-snapshot fallback: the map is hash-partitioned, so an
        // ordered range is scattered across buckets.  Each bucket list is
        // scanned with full path validation — and since each bucket is
        // sorted, its first `len` matches are a superset of its contribution
        // to the global first `len` — then the per-bucket results are merged
        // and truncated.  Each bucket's slice is an atomic snapshot; the
        // *union* is not atomic across buckets (keys in different buckets
        // may be observed at different times), which is the documented price
        // of scanning a hash-partitioned structure.
        if len == 0 {
            return Vec::new();
        }
        let mut all: Vec<(Key, Value)> = Vec::new();
        for b in self.buckets.iter() {
            all.extend(b.scan(start, len));
        }
        all.sort_unstable_by_key(|&(k, _)| k);
        all.truncate(len);
        all
    }
    fn stats(&self) -> MapStats {
        let mut total = MapStats::default();
        for b in self.buckets.iter() {
            let s = b.stats();
            total.key_count += s.key_count;
            total.key_sum += s.key_sum;
            total.node_count += s.node_count;
            total.key_depth_sum += s.key_depth_sum;
            total.approx_bytes += s.approx_bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
    use mapapi::suites::*;
    use std::time::Duration;

    #[test]
    fn basic_semantics() {
        check_basic_semantics(&PathCasHashMap::new());
    }

    #[test]
    fn ordered_patterns() {
        let m = PathCasHashMap::with_buckets(16);
        check_ordered_patterns(&m);
        m.check_invariants();
    }

    #[test]
    fn random_vs_oracle() {
        let m = PathCasHashMap::with_buckets(8);
        check_random_against_oracle(&m, 5000, 256, 77);
        check_stats_consistency(&m, 256);
        m.check_invariants();
    }

    #[test]
    fn single_bucket_degenerates_to_list() {
        let m = PathCasHashMap::with_buckets(1);
        check_basic_semantics(&m);
        assert_eq!(m.bucket_count(), 1);
    }

    #[test]
    fn stripes_stress() {
        let m = PathCasHashMap::with_buckets(64);
        stress_disjoint_stripes(&m, 4, 200);
        m.check_invariants();
    }

    #[test]
    fn keysum_stress() {
        let m = PathCasHashMap::with_buckets(32);
        prefill(&m, 1024, 512, 3);
        stress_keysum(&m, 4, 1024, 50, Duration::from_millis(250), 5);
        m.check_invariants();
    }

    #[test]
    fn scan_semantics() {
        check_scan_semantics(&PathCasHashMap::with_buckets(8));
    }

    #[test]
    fn scan_vs_oracle_across_buckets() {
        // A small bucket count forces every bucket to contribute to the
        // merged range, exercising the sorted-snapshot merge.
        let m = PathCasHashMap::with_buckets(4);
        check_scan_against_oracle(&m, 256, 0x4A5);
        m.check_invariants();
    }

    #[test]
    fn rmw_routes_to_the_owning_bucket() {
        let m = PathCasHashMap::with_buckets(16);
        assert!(!m.rmw(9, &mut |v| v.unwrap_or(1)));
        assert!(m.rmw(9, &mut |v| v.unwrap() + 10));
        assert_eq!(m.get(9), Some(11));
        m.check_invariants();
    }
}
