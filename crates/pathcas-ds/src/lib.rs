//! # pathcas-ds — data structures built on the PathCAS primitive
//!
//! This crate contains the data structures described in the paper:
//!
//! * [`bst::PathCasBst`] — the lock-free *internal* unbalanced binary search
//!   tree of §4 (`int-bst-pathcas`),
//! * [`avl::PathCasAvl`] — the relaxed internal AVL tree of §4.2 / Appendix D
//!   (`int-avl-pathcas`), using Bougé-style local rebalancing steps,
//! * the additional structures listed in the conclusion (§6) as
//!   straightforward applications of the same recipe: a sorted
//!   [`list::PathCasList`], a [`stack::PathCasStack`], a
//!   [`queue::PathCasQueue`] and a fixed-bucket [`hashmap::PathCasHashMap`],
//!
//! All of them follow the same construction: *visit* every node read during
//! the traversal, *add* the words to be modified (always including a version
//! bump of every modified node, with the mark bit set for removed nodes), and
//! commit with `vexec`.

#![warn(missing_docs)]

pub mod avl;
pub mod bst;
pub mod hashmap;
pub mod list;
pub mod node;
pub mod queue;
pub mod stack;


pub use avl::PathCasAvl;
pub use bst::PathCasBst;
pub use hashmap::PathCasHashMap;
pub use list::PathCasList;
pub use queue::PathCasQueue;
pub use stack::PathCasStack;





