//! A sorted linked-list set/map built with PathCAS — one of the "many data
//! structures wherein an operation consists of a read phase followed by a
//! write phase" that the paper's conclusion (§6) describes: visit each node
//! traversed, then `add` and `vexec` the modifications.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;
use kcas::CasWord;
use mapapi::{ConcurrentMap, Key, MapStats, Value};
use pathcas::PathCasOp;

use crate::node::{ptr_to_word, retire, with_builder, word_to_ref, NIL};

const KEY_HEAD: u64 = 0;
const KEY_TAIL: u64 = kcas::MAX_VALUE;

struct Node {
    key: CasWord,
    val: CasWord,
    next: CasWord,
    ver: CasWord,
}

impl Node {
    fn new(key: u64, val: u64, next: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key: CasWord::new(key),
            val: CasWord::new(val),
            next: CasWord::new(next),
            ver: CasWord::new(0),
        }))
    }
}

/// A concurrent sorted linked list (`list-pathcas`).
pub struct PathCasList {
    head: *mut Node,
    tail: *mut Node,
    retries: AtomicU64,
}

// SAFETY: nodes are heap-allocated and reachable only via CasWords; all
// shared access is mediated by PathCAS reads/validated execs under an epoch
// guard, so moving the list between threads is sound.
unsafe impl Send for PathCasList {}
// SAFETY: see `Send` above — mutation goes through KCAS and reclamation
// through epoch retirement, so `&PathCasList` may be shared freely.
unsafe impl Sync for PathCasList {}

impl Default for PathCasList {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a list traversal: the first node with `key >= target` and its
/// predecessor, with the versions observed when they were visited.
struct Window<'g> {
    pred: &'g Node,
    pred_ver: u64,
    curr: &'g Node,
    curr_ver: u64,
}

impl PathCasList {
    /// Create an empty list (two sentinel nodes).
    pub fn new() -> Self {
        let tail = Node::new(KEY_TAIL, 0, NIL);
        let head = Node::new(KEY_HEAD, 0, ptr_to_word(tail));
        PathCasList { head, tail, retries: AtomicU64::new(0) }
    }

    /// Number of operation restarts.
    pub fn retry_count(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.retries.load(Ordering::Relaxed)
    }

    fn note_retry(&self) {
        // ORDERING: Relaxed — diagnostic counter only; list correctness is
        // carried by the validated KCAS operations, not by this statistic.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Traverse, visiting the predecessor/current window; earlier nodes are
    /// not visited (their validation is unnecessary: correctness only depends
    /// on the window being unchanged and unmarked, as in the lazy list).
    fn window<'g>(&self, op: &mut PathCasOp<'g>, guard: &'g Guard, key: u64) -> Window<'g> {
        // SAFETY: `head` is a sentinel allocated in `new` and never freed
        // before Drop, so it is valid for the whole lifetime of `&self`.
        let mut pred: &Node = unsafe { &*self.head };
        let mut pred_ver = op.visit(&pred.ver);
        // SAFETY: the word came from a KCAS read under `guard`; epoch pinning
        // keeps the pointed-to node alive until the guard drops.
        let mut curr: &Node = unsafe { word_to_ref(op.read(&pred.next), guard) };
        let mut curr_ver = op.visit(&curr.ver);
        loop {
            let curr_key = op.read(&curr.key);
            if curr_key >= key {
                return Window { pred, pred_ver, curr, curr_ver };
            }
            pred = curr;
            pred_ver = curr_ver;
            // SAFETY: as above — KCAS read under the same pin protects the node.
            curr = unsafe { word_to_ref(op.read(&curr.next), guard) };
            curr_ver = op.visit(&curr.ver);
        }
    }

    fn insert_impl(&self, key: u64, val: u64) -> bool {
        debug_assert!(key > KEY_HEAD && key < KEY_TAIL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let w = self.window(&mut op, &guard, key);
                if op.read(&w.curr.key) == key {
                    if op.validate() {
                        return Some(false);
                    }
                    return None;
                }
                if w.pred_ver & 1 == 1 || w.curr_ver & 1 == 1 {
                    return None;
                }
                let curr_word = ptr_to_word(w.curr as *const Node);
                let new_node = Node::new(key, val, curr_word);
                op.add(&w.pred.next, curr_word, ptr_to_word(new_node));
                op.add(&w.pred.ver, w.pred_ver, w.pred_ver + 2);
                if op.vexec() {
                    Some(true)
                } else {
                    // SAFETY: the vexec failed, so `new_node` was never
                    // published; this thread still solely owns the fresh Box.
                    unsafe { drop(Box::from_raw(new_node)) };
                    None
                }
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    fn remove_impl(&self, key: u64) -> bool {
        debug_assert!(key > KEY_HEAD && key < KEY_TAIL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let w = self.window(&mut op, &guard, key);
                if op.read(&w.curr.key) != key {
                    if op.validate() {
                        return Some(false);
                    }
                    return None;
                }
                if w.pred_ver & 1 == 1 || w.curr_ver & 1 == 1 {
                    return None;
                }
                let curr_word = ptr_to_word(w.curr as *const Node);
                let next = op.read(&w.curr.next);
                op.add(&w.pred.next, curr_word, next);
                op.add(&w.pred.ver, w.pred_ver, w.pred_ver + 2);
                op.add(&w.curr.ver, w.curr_ver, w.curr_ver + 1); // mark
                if op.vexec() {
                    // SAFETY: the successful vexec unlinked and marked
                    // `curr`, so this thread alone retires it; pinned readers
                    // keep the memory alive until their epochs expire.
                    unsafe { retire(w.curr as *const Node, &guard) };
                    Some(true)
                } else {
                    None
                }
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        debug_assert!(key > KEY_HEAD && key < KEY_TAIL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let w = self.window(&mut op, &guard, key);
                if op.read(&w.curr.key) == key {
                    return Some(Some(op.read(&w.curr.val)));
                }
                if op.validate() {
                    return Some(None);
                }
                None
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    /// Atomic single-key read-modify-write over the window (see
    /// [`crate::bst`] for the semantics): value + version bump commit in one
    /// `vexec`, or the missing node is inserted with `update(None)`.
    fn rmw_impl(&self, key: u64, update: &mut dyn FnMut(Option<u64>) -> u64) -> bool {
        debug_assert!(key > KEY_HEAD && key < KEY_TAIL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let w = self.window(&mut op, &guard, key);
                if op.read(&w.curr.key) == key {
                    if w.curr_ver & 1 == 1 {
                        return None;
                    }
                    let old_val = op.read(&w.curr.val);
                    let new_val = update(Some(old_val));
                    op.add(&w.curr.val, old_val, new_val);
                    op.add(&w.curr.ver, w.curr_ver, w.curr_ver + 2);
                    if op.vexec() {
                        return Some(true);
                    }
                    return None;
                }
                if w.pred_ver & 1 == 1 || w.curr_ver & 1 == 1 {
                    return None;
                }
                let curr_word = ptr_to_word(w.curr as *const Node);
                let new_node = Node::new(key, update(None), curr_word);
                op.add(&w.pred.next, curr_word, ptr_to_word(new_node));
                op.add(&w.pred.ver, w.pred_ver, w.pred_ver + 2);
                if op.vexec() {
                    Some(false)
                } else {
                    // SAFETY: failed vexec — `new_node` was never published,
                    // so the fresh Box is still exclusively owned here.
                    unsafe { drop(Box::from_raw(new_node)) };
                    None
                }
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    /// Validated linear range scan: walk the list visiting every traversed
    /// node, retrying immediately on any marked (mid-removal) node, collect
    /// up to `len` pairs with key ≥ `start`, and `validate` the whole
    /// visited path at the end — success means every collected pair was
    /// simultaneously present (an atomic snapshot).
    fn scan_impl(&self, start: u64, len: usize) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let mut out: Vec<(u64, u64)> = Vec::with_capacity(len.min(1024));
                // SAFETY: the head sentinel lives until Drop (see `window`).
                let head: &Node = unsafe { &*self.head };
                let head_ver = op.visit(&head.ver);
                if head_ver & 1 == 1 {
                    return None;
                }
                // SAFETY: word read via KCAS under `guard`; the node cannot
                // be reclaimed while this pin is held.
                let mut curr: &Node = unsafe { word_to_ref(op.read(&head.next), &guard) };
                loop {
                    let curr_ver = op.visit(&curr.ver);
                    if curr_ver & 1 == 1 {
                        return None; // mark-check: node is being removed
                    }
                    let key = op.read(&curr.key);
                    if key == KEY_TAIL {
                        break;
                    }
                    if key >= start {
                        out.push((key, op.read(&curr.val)));
                        if out.len() == len {
                            break;
                        }
                    }
                    // SAFETY: as above — KCAS read under the same pin.
                    curr = unsafe { word_to_ref(op.read(&curr.next), &guard) };
                }
                if op.validate() {
                    Some(out)
                } else {
                    None
                }
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    fn stats_impl(&self) -> MapStats {
        let mut stats = MapStats {
            node_count: 2,
            approx_bytes: 2 * std::mem::size_of::<Node>() as u64,
            ..Default::default()
        };
        // SAFETY: stats run quiescently (no concurrent writers, per the
        // `load_quiescent` contract); head is live and every reachable word
        // is a valid node pointer owned by the list.
        let mut curr = unsafe { (*self.head).next.load_quiescent() };
        let mut depth = 0u64;
        while curr != NIL {
            // SAFETY: see above — quiescent traversal of live owned nodes.
            let node = unsafe { &*(curr as usize as *const Node) };
            let key = node.key.load_quiescent();
            if key == KEY_TAIL {
                break;
            }
            stats.node_count += 1;
            stats.approx_bytes += std::mem::size_of::<Node>() as u64;
            stats.key_count += 1;
            stats.key_sum += key as u128;
            stats.key_depth_sum += depth;
            depth += 1;
            curr = node.next.load_quiescent();
        }
        stats
    }

    /// Quiescent invariant check: strictly increasing keys, no reachable
    /// marked node.
    pub fn check_invariants(&self) {
        let mut prev_key = KEY_HEAD;
        // SAFETY: invariant checks run quiescently; head is live and each
        // reachable word is a valid node pointer owned by the list.
        let mut curr = unsafe { (*self.head).next.load_quiescent() };
        while curr != NIL {
            // SAFETY: see above — quiescent traversal of live owned nodes.
            let node = unsafe { &*(curr as usize as *const Node) };
            let key = node.key.load_quiescent();
            assert!(key > prev_key, "list order violated: {key} after {prev_key}");
            assert_eq!(node.ver.load_quiescent() & 1, 0, "reachable list node is marked");
            prev_key = key;
            curr = node.next.load_quiescent();
        }
        assert_eq!(prev_key, KEY_TAIL, "list does not end at the tail sentinel");
    }
}

impl ConcurrentMap for PathCasList {
    fn name(&self) -> &'static str {
        "list-pathcas"
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: Key) -> bool {
        self.get_impl(key).is_some()
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.get_impl(key)
    }
    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        self.rmw_impl(key, update)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.scan_impl(start, len)
    }
    fn stats(&self) -> MapStats {
        self.stats_impl()
    }
}

impl Drop for PathCasList {
    fn drop(&mut self) {
        let mut curr = self.head;
        while !curr.is_null() {
            // SAFETY: `&mut self` proves exclusive access; every node in the
            // chain is a live `Box::into_raw` pointer owned by the list.
            let next = unsafe { (*curr).next.load_quiescent() };
            // SAFETY: see above — each node is reclaimed exactly once.
            unsafe { drop(Box::from_raw(curr)) };
            curr = next as usize as *mut Node;
        }
        let _ = self.tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
    use mapapi::suites::*;
    use std::time::Duration;

    #[test]
    fn basic_semantics() {
        check_basic_semantics(&PathCasList::new());
    }

    #[test]
    fn ordered_patterns() {
        let l = PathCasList::new();
        check_ordered_patterns(&l);
        l.check_invariants();
    }

    #[test]
    fn random_vs_oracle() {
        let l = PathCasList::new();
        check_random_against_oracle(&l, 4000, 64, 5);
        check_stats_consistency(&l, 64);
        l.check_invariants();
    }

    #[test]
    fn stripes_stress() {
        let l = PathCasList::new();
        stress_disjoint_stripes(&l, 4, 60);
        l.check_invariants();
    }

    #[test]
    fn keysum_stress() {
        let l = PathCasList::new();
        prefill(&l, 128, 64, 3);
        stress_keysum(&l, 4, 128, 60, Duration::from_millis(250), 9);
        l.check_invariants();
    }

    #[test]
    fn scan_semantics() {
        check_scan_semantics(&PathCasList::new());
    }

    #[test]
    fn scan_vs_oracle() {
        let l = PathCasList::new();
        check_scan_against_oracle(&l, 96, 0x11);
        l.check_invariants();
    }

    #[test]
    fn rmw_updates_in_place() {
        let l = PathCasList::new();
        assert!(!l.rmw(3, &mut |v| v.unwrap_or(7)));
        assert_eq!(l.get(3), Some(7));
        assert!(l.rmw(3, &mut |v| v.unwrap() * 2));
        assert_eq!(l.get(3), Some(14));
        l.check_invariants();
    }

    #[test]
    fn concurrent_rmw_increments_are_not_lost() {
        let l = std::sync::Arc::new(PathCasList::new());
        l.insert(5, 0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = std::sync::Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..1_500 {
                        l.rmw(5, &mut |v| v.unwrap() + 1);
                    }
                });
            }
        });
        assert_eq!(l.get(5), Some(6_000));
        l.check_invariants();
    }
}
