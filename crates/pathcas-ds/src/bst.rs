//! The lock-free *internal* unbalanced binary search tree of §4 of the paper
//! (`int-bst-pathcas`), Algorithms 3–6.
//!
//! Every operation performs a plain sequential-looking search in which each
//! traversed node is `visit`ed; updates then `add` the child pointer / key /
//! value words they modify together with a version bump of every modified
//! node (marking removed nodes), and commit with a single `vexec`.  A
//! successful `vexec` implies no visited node changed since it was visited,
//! which makes the whole read-phase + write-phase atomic and the correctness
//! argument short (Appendix E).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;
use kcas::CasWord;
use mapapi::{ConcurrentMap, Key, MapStats, Value};
use pathcas::PathCasOp;

use crate::node::{ptr_to_word, retire, with_builder, word_to_ref, NIL};

/// Sentinel key of `minRoot` (conceptually -infinity).
const KEY_MIN_SENTINEL: u64 = 0;
/// Sentinel key of `maxRoot` (conceptually +infinity).
const KEY_MAX_SENTINEL: u64 = kcas::MAX_VALUE;

/// A tree node. All fields that PathCAS may modify are `CasWord`s; `key` and
/// `val` are mutable because a two-child deletion promotes the successor's
/// key/value into the deleted node (Algorithm 6).
pub(crate) struct Node {
    pub(crate) key: CasWord,
    pub(crate) val: CasWord,
    pub(crate) left: CasWord,
    pub(crate) right: CasWord,
    pub(crate) ver: CasWord,
}

impl Node {
    pub(crate) fn new(key: u64, val: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key: CasWord::new(key),
            val: CasWord::new(val),
            left: CasWord::new(NIL),
            right: CasWord::new(NIL),
            ver: CasWord::new(0),
        }))
    }
}

/// Result of the shared search routine (Algorithm 3).
struct SearchResult<'g> {
    found: bool,
    curr: Option<&'g Node>,
    curr_ver: u64,
    parent: &'g Node,
    parent_ver: u64,
}

/// The PathCAS internal binary search tree (`int-bst-pathcas`).
pub struct PathCasBst {
    max_root: *mut Node,
    min_root: *mut Node,
    retries: AtomicU64,
}

// SAFETY: all shared mutation goes through PathCAS; raw pointers are only
// dereferenced under epoch guards.
unsafe impl Send for PathCasBst {}
// SAFETY: see `Send` above.
unsafe impl Sync for PathCasBst {}

impl Default for PathCasBst {
    fn default() -> Self {
        Self::new()
    }
}

impl PathCasBst {
    /// Create an empty tree containing only the two sentinel nodes.
    pub fn new() -> Self {
        let min_root = Node::new(KEY_MIN_SENTINEL, 0);
        let max_root = Node::new(KEY_MAX_SENTINEL, 0);
        // maxRoot.left = minRoot; all real keys live under minRoot.right.
        // SAFETY: `max_root` is a freshly boxed node not yet shared with any
        // other thread, so the raw store cannot race.
        unsafe { (*max_root).left.store(ptr_to_word(min_root)) };
        PathCasBst { max_root, min_root, retries: AtomicU64::new(0) }
    }

    /// Number of times operations had to restart from scratch (a software
    /// proxy for the contention/abort columns of the paper's Figure 5).
    pub fn retry_count(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.retries.load(Ordering::Relaxed)
    }

    #[inline]
    fn note_retry(&self) {
        // ORDERING: Relaxed — diagnostic counter only; tree correctness is
        // carried by the validated KCAS operations, not by this statistic.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn max_root<'g>(&self, _guard: &'g Guard) -> &'g Node {
        // SAFETY: the sentinel roots are allocated in `new` and freed only in
        // Drop, so they outlive every guard borrowed from `&self`.
        unsafe { &*self.max_root }
    }

    #[inline]
    fn min_root<'g>(&self, _guard: &'g Guard) -> &'g Node {
        // SAFETY: see `max_root` — sentinels live until Drop.
        unsafe { &*self.min_root }
    }

    /// Algorithm 3: traverse from the sentinels towards `key`, visiting every
    /// node on the path.
    fn search<'g>(&self, op: &mut PathCasOp<'g>, guard: &'g Guard, key: u64) -> SearchResult<'g> {
        let mut parent = self.max_root(guard);
        let mut parent_ver = op.visit(&parent.ver);
        let mut curr = self.min_root(guard);
        let mut curr_ver = op.visit(&curr.ver);
        loop {
            let curr_key = op.read(&curr.key);
            if key == curr_key {
                return SearchResult { found: true, curr: Some(curr), curr_ver, parent, parent_ver };
            }
            let next = if key > curr_key { op.read(&curr.right) } else { op.read(&curr.left) };
            if next == NIL {
                return SearchResult { found: false, curr: None, curr_ver, parent: curr, parent_ver: curr_ver };
            }
            parent = curr;
            parent_ver = curr_ver;
            // SAFETY: `next` was read via KCAS under `guard`; epoch pinning
            // keeps the pointed-to node alive until the guard drops.
            curr = unsafe { word_to_ref(next, guard) };
            curr_ver = op.visit(&curr.ver);
        }
    }

    /// Successor search used by two-child deletion (Algorithm 5): walk one
    /// step right, then left as far as possible, visiting every node.
    fn get_successor<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        guard: &'g Guard,
        start: &'g Node,
        start_ver: u64,
    ) -> Option<(&'g Node, u64, &'g Node, u64)> {
        let mut succ_p = start;
        let mut succ_p_ver = start_ver;
        let right = op.read(&start.right);
        if right == NIL {
            return None;
        }
        // SAFETY: `right` is a non-NIL word read via KCAS under `guard`.
        let mut succ: &Node = unsafe { word_to_ref(right, guard) };
        let mut succ_ver = op.visit(&succ.ver);
        loop {
            let next = op.read(&succ.left);
            if next == NIL {
                return Some((succ, succ_ver, succ_p, succ_p_ver));
            }
            succ_p = succ;
            succ_p_ver = succ_ver;
            // SAFETY: as above — KCAS read under the same epoch pin.
            succ = unsafe { word_to_ref(next, guard) };
            succ_ver = op.visit(&succ.ver);
        }
    }

    fn insert_impl(&self, key: u64, val: u64) -> bool {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if res.found {
                    // Algorithm 4 line 4: the key is present; validation
                    // establishes a time during the operation at which the
                    // whole (unchanged) search path — and hence the key —
                    // was in the tree.
                    if op.validate() {
                        return Some(false);
                    }
                    return None;
                }
                let parent = res.parent;
                let parent_ver = res.parent_ver;
                if parent_ver & 1 == 1 {
                    return None; // parent already marked; retry
                }
                let new_node = Node::new(key, val);
                let parent_key = op.read(&parent.key);
                let ptr_to_change = if key < parent_key { &parent.left } else { &parent.right };
                op.add(ptr_to_change, NIL, ptr_to_word(new_node));
                op.add(&parent.ver, parent_ver, parent_ver + 2);
                if op.vexec() {
                    Some(true)
                } else {
                    // The new node was never published; reclaim it directly.
                    // SAFETY: the vexec failed, so no other thread ever saw
                    // `new_node`; this thread still solely owns the fresh Box.
                    unsafe { drop(Box::from_raw(new_node)) };
                    None
                }
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    fn remove_impl(&self, key: u64) -> bool {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if !res.found {
                    if op.validate() {
                        return Some(false);
                    }
                    return None;
                }
                let curr = res.curr.expect("found implies a node");
                let curr_ver = res.curr_ver;
                let parent = res.parent;
                let parent_ver = res.parent_ver;
                // Algorithm 6 line 7: if either node is marked, retry.
                if curr_ver & 1 == 1 || parent_ver & 1 == 1 {
                    return None;
                }
                let curr_left = op.read(&curr.left);
                let curr_right = op.read(&curr.right);
                let curr_word = ptr_to_word(curr as *const Node);

                if curr_left == NIL || curr_right == NIL {
                    // Leaf deletion or one-child deletion: replace the parent's
                    // child pointer with the (possibly NIL) remaining child.
                    let child_to_keep = if curr_left == NIL { curr_right } else { curr_left };
                    let parent_left = op.read(&parent.left);
                    let ptr_to_change =
                        if parent_left == curr_word { &parent.left } else { &parent.right };
                    op.add(ptr_to_change, curr_word, child_to_keep);
                    op.add(&parent.ver, parent_ver, parent_ver + 2);
                    op.add(&curr.ver, curr_ver, curr_ver + 1); // mark curr
                    if op.vexec() {
                        // SAFETY: the successful vexec unlinked and marked
                        // `curr`, so this thread alone retires it; pinned
                        // readers keep it alive until their epochs expire.
                        unsafe { retire(curr as *const Node, &guard) };
                        return Some(true);
                    }
                    return None;
                }

                // Two-child deletion: promote the successor's key/value into
                // curr, then unlink the successor node.
                let (succ, succ_ver, succ_p, succ_p_ver) =
                    match self.get_successor(&mut op, &guard, curr, curr_ver) {
                        Some(t) => t,
                        None => return None,
                    };
                if succ_ver & 1 == 1 || succ_p_ver & 1 == 1 {
                    return None;
                }
                let succ_word = ptr_to_word(succ as *const Node);
                let succ_r = op.read(&succ.right); // succ has no left child
                if succ_r != NIL {
                    // SAFETY: `succ_r` is a non-NIL word read via KCAS under
                    // the same epoch pin, so the node cannot be reclaimed.
                    let succ_r_node: &Node = unsafe { word_to_ref(succ_r, &guard) };
                    let succ_r_ver = op.visit(&succ_r_node.ver);
                    if succ_r_ver & 1 == 1 {
                        return None;
                    }
                }
                let succ_p_right = op.read(&succ_p.right);
                let ptr_to_change =
                    if succ_p_right == succ_word { &succ_p.right } else { &succ_p.left };
                op.add(ptr_to_change, succ_word, succ_r);
                let curr_val = op.read(&curr.val);
                let succ_val = op.read(&succ.val);
                let succ_key = op.read(&succ.key);
                op.add(&curr.val, curr_val, succ_val);
                op.add(&curr.key, key, succ_key);
                op.add(&succ.ver, succ_ver, succ_ver + 1); // mark succ
                op.add(&succ_p.ver, succ_p_ver, succ_p_ver + 2);
                if !std::ptr::eq(succ_p, curr) {
                    op.add(&curr.ver, curr_ver, curr_ver + 2);
                }
                if op.vexec() {
                    // SAFETY: the vexec unlinked and marked `succ`; only this
                    // thread retires it, and pinned readers stay protected.
                    unsafe { retire(succ as *const Node, &guard) };
                    return Some(true);
                }
                None
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if res.found {
                    // §4.1: no validation required when the key is found —
                    // reachability implies the node is unmarked, hence the key
                    // was in the tree at some point during this operation.
                    let curr = res.curr.expect("found implies a node");
                    return Some(Some(op.read(&curr.val)));
                }
                if op.validate() {
                    return Some(None);
                }
                None
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    /// Atomic single-key read-modify-write: search, compute the new value
    /// from the observed one, and commit value + version bump with a single
    /// `vexec` whose validation covers the whole search path.  Unlike the
    /// composed `get`+`remove`+`insert` default, the key is never observably
    /// absent mid-RMW and no racing update is clobbered (a conflicting
    /// commit fails the `vexec` and the operation retries, re-running
    /// `update` on the fresh value — so `update` must be pure).
    fn rmw_impl(&self, key: u64, update: &mut dyn FnMut(Option<u64>) -> u64) -> bool {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if res.found {
                    let curr = res.curr.expect("found implies a node");
                    let curr_ver = res.curr_ver;
                    if curr_ver & 1 == 1 {
                        return None;
                    }
                    let old_val = op.read(&curr.val);
                    let new_val = update(Some(old_val));
                    op.add(&curr.val, old_val, new_val);
                    // The version bump publishes the value change to
                    // validated readers (scans re-validate this node).
                    op.add(&curr.ver, curr_ver, curr_ver + 2);
                    if op.vexec() {
                        return Some(true);
                    }
                    return None;
                }
                // Absent: atomically insert `update(None)` at the reached
                // leaf position, exactly like `insert`.
                let parent = res.parent;
                let parent_ver = res.parent_ver;
                if parent_ver & 1 == 1 {
                    return None;
                }
                let new_node = Node::new(key, update(None));
                let parent_key = op.read(&parent.key);
                let ptr_to_change = if key < parent_key { &parent.left } else { &parent.right };
                op.add(ptr_to_change, NIL, ptr_to_word(new_node));
                op.add(&parent.ver, parent_ver, parent_ver + 2);
                if op.vexec() {
                    Some(false)
                } else {
                    // SAFETY: failed vexec — `new_node` was never published,
                    // so the fresh Box is still exclusively owned here.
                    unsafe { drop(Box::from_raw(new_node)) };
                    None
                }
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    /// Validated in-order range scan: collect the first `len` pairs with key
    /// ≥ `start`, visiting every traversed node, then `validate` the whole
    /// visited path.  A successful validation proves no visited node changed
    /// or was marked between its visit and the validation point, so every
    /// collected pair was simultaneously present — the scan is an atomic
    /// snapshot (the paper's composite read built from path validation).
    /// On validation failure the scan restarts from scratch.
    fn scan_impl(&self, start: u64, len: usize) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let start = start.max(KEY_MIN_SENTINEL + 1);
        loop {
            let done = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let min_root = self.min_root(&guard);
                let min_ver = op.visit(&min_root.ver);
                if min_ver & 1 == 1 {
                    return None;
                }
                let mut out: Vec<(u64, u64)> = Vec::with_capacity(len.min(1024));
                // Explicit in-order stack with subtree pruning: a node whose
                // key is below `start` has no relevant left subtree.
                let mut stack: Vec<(&Node, u64)> = Vec::new();
                let mut curr = op.read(&min_root.right);
                'walk: loop {
                    while curr != NIL {
                        // SAFETY: `curr` was read via KCAS under `guard`, so
                        // the node is protected from reclamation.
                        let node: &Node = unsafe { word_to_ref(curr, &guard) };
                        let ver = op.visit(&node.ver);
                        if ver & 1 == 1 {
                            // Reached an already-marked node: the path we
                            // followed is stale; restart.
                            return None;
                        }
                        let key = op.read(&node.key);
                        if key >= start {
                            stack.push((node, key));
                            curr = op.read(&node.left);
                        } else {
                            curr = op.read(&node.right);
                        }
                    }
                    match stack.pop() {
                        None => break 'walk,
                        Some((node, key)) => {
                            out.push((key, op.read(&node.val)));
                            if out.len() == len {
                                break 'walk;
                            }
                            curr = op.read(&node.right);
                        }
                    }
                }
                if op.validate() {
                    Some(out)
                } else {
                    None
                }
            });
            match done {
                Some(r) => return r,
                None => self.note_retry(),
            }
        }
    }

    fn stats_impl(&self) -> MapStats {
        // Quiescent traversal; no concurrent updates may be running.
        let mut stats = MapStats { node_count: 2, approx_bytes: 2 * std::mem::size_of::<Node>() as u64, ..Default::default() };
        // SAFETY: stats run quiescently (per the `load_quiescent` contract);
        // the sentinel is live and no writer can race this read.
        let root = unsafe { (*self.min_root).right.load_quiescent() };
        let mut stack: Vec<(u64, u64)> = Vec::new();
        if root != NIL {
            stack.push((root, 0));
        }
        while let Some((word, depth)) = stack.pop() {
            // SAFETY: quiescent traversal — every reachable word is a valid
            // node pointer owned by the tree.
            let node = unsafe { &*(word as usize as *const Node) };
            stats.node_count += 1;
            stats.approx_bytes += std::mem::size_of::<Node>() as u64;
            let key = node.key.load_quiescent();
            stats.key_count += 1;
            stats.key_sum += key as u128;
            stats.key_depth_sum += depth;
            let l = node.left.load_quiescent();
            let r = node.right.load_quiescent();
            if l != NIL {
                stack.push((l, depth + 1));
            }
            if r != NIL {
                stack.push((r, depth + 1));
            }
        }
        stats
    }

    /// Check the binary-search-tree order invariant (quiescent). Panics on
    /// violation; used by tests after stress runs.
    pub fn check_invariants(&self) {
        fn walk(word: u64, low: u64, high: u64) {
            if word == NIL {
                return;
            }
            // SAFETY: invariant checks run quiescently; each reachable word
            // is a valid node pointer owned by the tree.
            let node = unsafe { &*(word as usize as *const Node) };
            let key = node.key.load_quiescent();
            assert!(key > low && key < high, "BST order violated: {key} not in ({low},{high})");
            assert_eq!(node.ver.load_quiescent() & 1, 0, "reachable node is marked");
            walk(node.left.load_quiescent(), low, key);
            walk(node.right.load_quiescent(), key, high);
        }
        // SAFETY: quiescent read of the live sentinel (see `stats_impl`).
        let root = unsafe { (*self.min_root).right.load_quiescent() };
        walk(root, KEY_MIN_SENTINEL, KEY_MAX_SENTINEL);
    }
}

impl ConcurrentMap for PathCasBst {
    fn name(&self) -> &'static str {
        "int-bst-pathcas"
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: Key) -> bool {
        self.get_impl(key).is_some()
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.get_impl(key)
    }
    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        self.rmw_impl(key, update)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.scan_impl(start, len)
    }
    fn stats(&self) -> MapStats {
        self.stats_impl()
    }
}

impl Drop for PathCasBst {
    fn drop(&mut self) {
        // Exclusive access: free every node with a manual stack (avoids
        // recursion depth issues on degenerate trees).
        let mut to_free: Vec<*mut Node> = Vec::new();
        let mut work = vec![ptr_to_word(self.max_root)];
        while let Some(word) = work.pop() {
            if word == NIL {
                continue;
            }
            let ptr = word as usize as *mut Node;
            // SAFETY: `&mut self` proves exclusive access; every word in the
            // tree is a live `Box::into_raw` pointer owned by it.
            let node = unsafe { &*ptr };
            work.push(node.left.load_quiescent());
            work.push(node.right.load_quiescent());
            to_free.push(ptr);
        }
        for ptr in to_free {
            // SAFETY: see above — each node collected once, freed once.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
    use mapapi::suites::*;
    use std::time::Duration;

    #[test]
    fn basic_semantics() {
        check_basic_semantics(&PathCasBst::new());
    }

    #[test]
    fn ordered_patterns() {
        check_ordered_patterns(&PathCasBst::new());
    }

    #[test]
    fn random_vs_oracle() {
        let t = PathCasBst::new();
        check_random_against_oracle(&t, 6000, 128, 0xBEEF);
        check_stats_consistency(&t, 128);
        t.check_invariants();
    }

    #[test]
    fn random_vs_oracle_dense_keyspace() {
        let t = PathCasBst::new();
        check_random_against_oracle(&t, 4000, 16, 7);
        t.check_invariants();
    }

    #[test]
    fn two_child_deletions() {
        let t = PathCasBst::new();
        // Build a tree where the root has two children, then delete interior
        // nodes to exercise successor promotion.
        for k in [50u64, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43] {
            assert!(t.insert(k, k));
        }
        assert!(t.remove(50)); // two children, successor is 62
        assert!(!t.contains(50));
        assert!(t.contains(62));
        assert!(t.remove(25)); // two children, successor is 31
        assert!(!t.contains(25));
        t.check_invariants();
        let s = t.stats();
        assert_eq!(s.key_count, 9);
    }

    #[test]
    fn stripes_stress() {
        let t = PathCasBst::new();
        stress_disjoint_stripes(&t, 4, 300);
        t.check_invariants();
    }

    #[test]
    fn keysum_stress_mixed() {
        let t = PathCasBst::new();
        prefill(&t, 512, 256, 99);
        stress_keysum(&t, 4, 512, 40, Duration::from_millis(300), 3);
        t.check_invariants();
    }

    #[test]
    fn keysum_stress_update_heavy() {
        let t = PathCasBst::new();
        prefill(&t, 64, 32, 5);
        stress_keysum(&t, 4, 64, 100, Duration::from_millis(300), 11);
        t.check_invariants();
    }

    #[test]
    fn retries_counter_is_observable() {
        let t = PathCasBst::new();
        t.insert(1, 1);
        // Single-threaded operations should essentially never retry.
        assert_eq!(t.retry_count(), 0);
    }

    #[test]
    fn scan_semantics() {
        check_scan_semantics(&PathCasBst::new());
    }

    #[test]
    fn scan_vs_oracle() {
        let t = PathCasBst::new();
        check_scan_against_oracle(&t, 256, 0x5CA9);
        t.check_invariants();
    }

    #[test]
    fn rmw_is_present_throughout_and_accumulates() {
        let t = PathCasBst::new();
        // Absent key: created with update(None).
        assert!(!t.rmw(7, &mut |v| v.unwrap_or(100) + 1));
        assert_eq!(t.get(7), Some(101));
        // Present key: updated in place.
        assert!(t.rmw(7, &mut |v| v.unwrap() + 1));
        assert_eq!(t.get(7), Some(102));
        t.check_invariants();
    }

    #[test]
    fn concurrent_rmw_increments_are_not_lost() {
        // The lost-update litmus: N threads each add 1 to the same key M
        // times through rmw; the final value must be exactly N*M.  The
        // composed remove+insert default loses increments under this race.
        let t = std::sync::Arc::new(PathCasBst::new());
        t.insert(42, 0);
        let threads = 4u64;
        let per = 2_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..per {
                        t.rmw(42, &mut |v| v.unwrap() + 1);
                    }
                });
            }
        });
        assert_eq!(t.get(42), Some(threads * per));
        t.check_invariants();
    }

    #[test]
    fn concurrent_scans_see_consistent_snapshots() {
        // Writers churn keys outside a fixed region; scans over the region
        // must always return exactly the region.
        let t = std::sync::Arc::new(PathCasBst::new());
        let region: Vec<u64> = (1000..1064).collect();
        for &k in &region {
            t.insert(k, k);
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..2u64 {
                let t = std::sync::Arc::clone(&t);
                let stop = &stop;
                s.spawn(move || {
                    let mut x = 12345u64.wrapping_add(w);
                    while !stop.load(Ordering::Relaxed) {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let k = 1 + x % 999; // churn strictly below the region
                        if x & 1 == 0 {
                            t.insert(k, k);
                        } else {
                            t.remove(k);
                        }
                    }
                });
            }
            let t2 = std::sync::Arc::clone(&t);
            for _ in 0..300 {
                let got = t2.scan(1000, 64);
                assert_eq!(got.len(), 64, "scan dropped region keys");
                for (i, &(k, v)) in got.iter().enumerate() {
                    assert_eq!(k, 1000 + i as u64);
                    assert_eq!(v, k);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        t.check_invariants();
    }
}
