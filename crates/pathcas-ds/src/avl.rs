//! The relaxed internal AVL tree of §4.2 / Appendix D (`int-avl-pathcas`).
//!
//! The tree is the internal BST of [`crate::bst`] augmented with `parent`
//! pointers and *logical* `height` fields.  After every successful insert or
//! delete, the thread that (may have) created a balance violation walks
//! towards the root along parent pointers, applying Bougé-style local
//! rebalancing steps — `rotateRight`, `rotateLeft`, `rotateLeftRight`,
//! `rotateRightLeft` and `fixHeight` — each of which is a single `vexec` that
//! visits every node it reads, adds every field it changes, and bumps the
//! version of every node it modifies (Algorithms 8–11).

// `drop(op)` below releases the op's borrow of the shared builder so the
// rebalancing walk can start a new op; the drop is about lifetimes, which is
// exactly what this lint flags as suspicious.
#![allow(clippy::drop_non_drop)]

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;
use kcas::CasWord;
use mapapi::{ConcurrentMap, Key, MapStats, Value};
use pathcas::{OpBuilder, PathCasOp};

use crate::node::{ptr_to_word, retire, with_builder, word_to_ref, NIL};

const KEY_MIN_SENTINEL: u64 = 0;
const KEY_MAX_SENTINEL: u64 = kcas::MAX_VALUE;

/// An AVL node (Figure 8 of the paper): the BST fields plus a parent pointer
/// and a logical height.
pub(crate) struct Node {
    key: CasWord,
    val: CasWord,
    left: CasWord,
    right: CasWord,
    parent: CasWord,
    height: CasWord,
    ver: CasWord,
}

impl Node {
    fn new(key: u64, val: u64, parent: u64, height: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key: CasWord::new(key),
            val: CasWord::new(val),
            left: CasWord::new(NIL),
            right: CasWord::new(NIL),
            parent: CasWord::new(parent),
            height: CasWord::new(height),
            ver: CasWord::new(0),
        }))
    }
}

struct SearchResult<'g> {
    found: bool,
    curr: Option<&'g Node>,
    curr_ver: u64,
    parent: &'g Node,
    parent_ver: u64,
}

/// Outcome of one rebalancing attempt at a node.
enum Step {
    /// Transient conflict; retry at the same node.
    Retry,
    /// Nothing to do here or the node is gone; stop this walk.
    Done,
    /// Height fixed (or already correct); move to the parent.
    MoveUp(u64),
    /// A rotation succeeded; re-examine these nodes, then continue at the
    /// parent.
    Rotated { next: u64, recheck: Vec<u64> },
}

/// The PathCAS relaxed AVL tree (`int-avl-pathcas`).
pub struct PathCasAvl {
    max_root: *mut Node,
    min_root: *mut Node,
    retries: AtomicU64,
    rotations: AtomicU64,
}

// SAFETY: all shared mutation goes through PathCAS; raw pointers are only
// dereferenced under epoch guards.
unsafe impl Send for PathCasAvl {}
// SAFETY: see `Send` above.
unsafe impl Sync for PathCasAvl {}

impl Default for PathCasAvl {
    fn default() -> Self {
        Self::new()
    }
}

impl PathCasAvl {
    /// Create an empty tree containing only the two sentinel nodes.
    pub fn new() -> Self {
        let max_root = Node::new(KEY_MAX_SENTINEL, 0, NIL, 0);
        let min_root = Node::new(KEY_MIN_SENTINEL, 0, ptr_to_word(max_root), 0);
        // SAFETY: `max_root` is a freshly boxed node not yet shared with any
        // other thread, so the raw store cannot race.
        unsafe { (*max_root).left.store(ptr_to_word(min_root)) };
        PathCasAvl {
            max_root,
            min_root,
            retries: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
        }
    }

    /// Number of operation restarts (software contention proxy for Figure 5).
    pub fn retry_count(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.retries.load(Ordering::Relaxed)
    }

    /// Number of successful rotations performed (single + double).
    pub fn rotation_count(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.rotations.load(Ordering::Relaxed)
    }

    #[inline]
    fn note_retry(&self) {
        // ORDERING: Relaxed — diagnostic counter only; tree correctness is
        // carried by the validated KCAS operations, not by this statistic.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn min_word(&self) -> u64 {
        ptr_to_word(self.min_root)
    }

    #[inline]
    fn max_word(&self) -> u64 {
        ptr_to_word(self.max_root)
    }

    fn search<'g>(&self, op: &mut PathCasOp<'g>, guard: &'g Guard, key: u64) -> SearchResult<'g> {
        // SAFETY: the sentinel roots are allocated in `new` and freed only in
        // Drop, so they outlive every guard borrowed from `&self`.
        let mut parent: &Node = unsafe { &*self.max_root };
        let mut parent_ver = op.visit(&parent.ver);
        // SAFETY: as above — the min sentinel lives until Drop.
        let mut curr: &Node = unsafe { &*self.min_root };
        let mut curr_ver = op.visit(&curr.ver);
        loop {
            let curr_key = op.read(&curr.key);
            if key == curr_key {
                return SearchResult { found: true, curr: Some(curr), curr_ver, parent, parent_ver };
            }
            let next = if key > curr_key { op.read(&curr.right) } else { op.read(&curr.left) };
            if next == NIL {
                return SearchResult { found: false, curr: None, curr_ver, parent: curr, parent_ver: curr_ver };
            }
            parent = curr;
            parent_ver = curr_ver;
            // SAFETY: `next` was read via KCAS under `guard`; epoch pinning
            // keeps the pointed-to node alive until the guard drops.
            curr = unsafe { word_to_ref(next, guard) };
            curr_ver = op.visit(&curr.ver);
        }
    }

    fn get_successor<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        guard: &'g Guard,
        start: &'g Node,
        start_ver: u64,
    ) -> Option<(&'g Node, u64, &'g Node, u64)> {
        let mut succ_p = start;
        let mut succ_p_ver = start_ver;
        let right = op.read(&start.right);
        if right == NIL {
            return None;
        }
        // SAFETY: `right` is a non-NIL word read via KCAS under `guard`.
        let mut succ: &Node = unsafe { word_to_ref(right, guard) };
        let mut succ_ver = op.visit(&succ.ver);
        loop {
            let next = op.read(&succ.left);
            if next == NIL {
                return Some((succ, succ_ver, succ_p, succ_p_ver));
            }
            succ_p = succ;
            succ_p_ver = succ_ver;
            // SAFETY: as above — KCAS read under the same epoch pin.
            succ = unsafe { word_to_ref(next, guard) };
            succ_ver = op.visit(&succ.ver);
        }
    }

    fn insert_impl(&self, key: u64, val: u64) -> bool {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        with_builder(|builder| {
            let guard = crossbeam_epoch::pin();
            loop {
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if res.found {
                    if op.validate() {
                        return false;
                    }
                    self.note_retry();
                    continue;
                }
                let parent = res.parent;
                let parent_ver = res.parent_ver;
                if parent_ver & 1 == 1 {
                    self.note_retry();
                    continue;
                }
                let parent_word = ptr_to_word(parent as *const Node);
                let new_node = Node::new(key, val, parent_word, 1);
                let parent_key = op.read(&parent.key);
                let ptr_to_change = if key < parent_key { &parent.left } else { &parent.right };
                op.add(ptr_to_change, NIL, ptr_to_word(new_node));
                op.add(&parent.ver, parent_ver, parent_ver + 2);
                if op.vexec() {
                    drop(op);
                    self.rebalance(parent_word, builder, &guard);
                    return true;
                }
                // Never published; reclaim directly.
                // SAFETY: the vexec failed, so no other thread ever saw
                // `new_node`; this thread still solely owns the fresh Box.
                unsafe { drop(Box::from_raw(new_node)) };
                self.note_retry();
            }
        })
    }

    fn remove_impl(&self, key: u64) -> bool {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        with_builder(|builder| {
            let guard = crossbeam_epoch::pin();
            loop {
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if !res.found {
                    if op.validate() {
                        return false;
                    }
                    self.note_retry();
                    continue;
                }
                let curr = res.curr.expect("found implies node");
                let curr_ver = res.curr_ver;
                let parent = res.parent;
                let parent_ver = res.parent_ver;
                if curr_ver & 1 == 1 || parent_ver & 1 == 1 {
                    self.note_retry();
                    continue;
                }
                let curr_word = ptr_to_word(curr as *const Node);
                let parent_word = ptr_to_word(parent as *const Node);
                let curr_left = op.read(&curr.left);
                let curr_right = op.read(&curr.right);

                if curr_left == NIL || curr_right == NIL {
                    // Leaf / one-child deletion: splice the remaining child
                    // (or NIL) into the parent and repoint its parent pointer.
                    let child_to_keep = if curr_left == NIL { curr_right } else { curr_left };
                    let parent_left = op.read(&parent.left);
                    let ptr_to_change =
                        if parent_left == curr_word { &parent.left } else { &parent.right };
                    op.add(ptr_to_change, curr_word, child_to_keep);
                    op.add(&parent.ver, parent_ver, parent_ver + 2);
                    op.add(&curr.ver, curr_ver, curr_ver + 1); // mark curr
                    if child_to_keep != NIL {
                        // SAFETY: non-NIL word read via KCAS under the pin.
                        let child: &Node = unsafe { word_to_ref(child_to_keep, &guard) };
                        let child_ver = op.visit(&child.ver);
                        if child_ver & 1 == 1 {
                            self.note_retry();
                            continue;
                        }
                        op.add(&child.parent, curr_word, parent_word);
                        op.add(&child.ver, child_ver, child_ver + 2);
                    }
                    if op.vexec() {
                        drop(op);
                        // SAFETY: the successful vexec unlinked and marked
                        // `curr`, so this thread alone retires it; pinned
                        // readers keep it alive until their epochs expire.
                        unsafe { retire(curr as *const Node, &guard) };
                        self.rebalance(parent_word, builder, &guard);
                        return true;
                    }
                    self.note_retry();
                    continue;
                }

                // Two-child deletion: promote the successor's key/value into
                // `curr`, then unlink the successor node.
                let (succ, succ_ver, succ_p, succ_p_ver) =
                    match self.get_successor(&mut op, &guard, curr, curr_ver) {
                        Some(t) => t,
                        None => {
                            self.note_retry();
                            continue;
                        }
                    };
                if succ_ver & 1 == 1 || succ_p_ver & 1 == 1 {
                    self.note_retry();
                    continue;
                }
                let succ_word = ptr_to_word(succ as *const Node);
                let succ_p_word = ptr_to_word(succ_p as *const Node);
                let succ_r = op.read(&succ.right);
                if succ_r != NIL {
                    // SAFETY: non-NIL word read via KCAS under the same pin.
                    let succ_r_node: &Node = unsafe { word_to_ref(succ_r, &guard) };
                    let succ_r_ver = op.visit(&succ_r_node.ver);
                    if succ_r_ver & 1 == 1 {
                        self.note_retry();
                        continue;
                    }
                    op.add(&succ_r_node.parent, succ_word, succ_p_word);
                    op.add(&succ_r_node.ver, succ_r_ver, succ_r_ver + 2);
                }
                let succ_p_right = op.read(&succ_p.right);
                let ptr_to_change =
                    if succ_p_right == succ_word { &succ_p.right } else { &succ_p.left };
                op.add(ptr_to_change, succ_word, succ_r);
                let curr_val = op.read(&curr.val);
                let succ_val = op.read(&succ.val);
                let succ_key = op.read(&succ.key);
                op.add(&curr.val, curr_val, succ_val);
                op.add(&curr.key, key, succ_key);
                op.add(&succ.ver, succ_ver, succ_ver + 1); // mark succ
                op.add(&succ_p.ver, succ_p_ver, succ_p_ver + 2);
                if !std::ptr::eq(succ_p, curr) {
                    op.add(&curr.ver, curr_ver, curr_ver + 2);
                }
                if op.vexec() {
                    drop(op);
                    // SAFETY: the vexec unlinked and marked `succ`; only this
                    // thread retires it, and pinned readers stay protected.
                    unsafe { retire(succ as *const Node, &guard) };
                    self.rebalance(succ_p_word, builder, &guard);
                    return true;
                }
                self.note_retry();
            }
        })
    }

    fn get_impl(&self, key: u64) -> Option<u64> {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        with_builder(|builder| {
            let guard = crossbeam_epoch::pin();
            loop {
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if res.found {
                    // §4.1: found keys need no validation.
                    let curr = res.curr.expect("found implies node");
                    return Some(op.read(&curr.val));
                }
                if op.validate() {
                    return None;
                }
                self.note_retry();
            }
        })
    }

    /// Atomic single-key read-modify-write (see [`crate::bst`]): the value
    /// change and the version bump commit in one path-validated `vexec`, so
    /// the key is never observably absent mid-RMW and racing updates are
    /// never clobbered.  `update` may run again on retry, so it must be pure.
    fn rmw_impl(&self, key: u64, update: &mut dyn FnMut(Option<u64>) -> u64) -> bool {
        debug_assert!(key > KEY_MIN_SENTINEL && key < KEY_MAX_SENTINEL);
        with_builder(|builder| {
            let guard = crossbeam_epoch::pin();
            loop {
                let mut op = builder.start(&guard);
                let res = self.search(&mut op, &guard, key);
                if res.found {
                    let curr = res.curr.expect("found implies node");
                    let curr_ver = res.curr_ver;
                    if curr_ver & 1 == 1 {
                        self.note_retry();
                        continue;
                    }
                    let old_val = op.read(&curr.val);
                    let new_val = update(Some(old_val));
                    op.add(&curr.val, old_val, new_val);
                    op.add(&curr.ver, curr_ver, curr_ver + 2);
                    if op.vexec() {
                        return true;
                    }
                    self.note_retry();
                    continue;
                }
                // Absent: insert `update(None)` atomically, then rebalance.
                let parent = res.parent;
                let parent_ver = res.parent_ver;
                if parent_ver & 1 == 1 {
                    self.note_retry();
                    continue;
                }
                let parent_word = ptr_to_word(parent as *const Node);
                let new_node = Node::new(key, update(None), parent_word, 1);
                let parent_key = op.read(&parent.key);
                let ptr_to_change = if key < parent_key { &parent.left } else { &parent.right };
                op.add(ptr_to_change, NIL, ptr_to_word(new_node));
                op.add(&parent.ver, parent_ver, parent_ver + 2);
                if op.vexec() {
                    drop(op);
                    self.rebalance(parent_word, builder, &guard);
                    return false;
                }
                // SAFETY: failed vexec — `new_node` was never published, so
                // the fresh Box is still exclusively owned here.
                unsafe { drop(Box::from_raw(new_node)) };
                self.note_retry();
            }
        })
    }

    /// Validated in-order range scan, identical in structure to the BST's
    /// (see [`crate::bst`]): prune subtrees below `start`, visit every
    /// traversed node, collect up to `len` pairs, then `validate` the whole
    /// path — success makes the result an atomic snapshot.  Concurrent
    /// rotations bump every version they touch, so a scan overlapping a
    /// rebalance simply retries.
    fn scan_impl(&self, start: u64, len: usize) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let start = start.max(KEY_MIN_SENTINEL + 1);
        with_builder(|builder| {
            let guard = crossbeam_epoch::pin();
            'retry: loop {
                let mut op = builder.start(&guard);
                // SAFETY: the min sentinel lives until Drop (see `search`).
                let min_root: &Node = unsafe { &*self.min_root };
                let min_ver = op.visit(&min_root.ver);
                if min_ver & 1 == 1 {
                    self.note_retry();
                    continue 'retry;
                }
                let mut out: Vec<(u64, u64)> = Vec::with_capacity(len.min(1024));
                let mut stack: Vec<(&Node, u64)> = Vec::new();
                let mut curr = op.read(&min_root.right);
                'walk: loop {
                    while curr != NIL {
                        // SAFETY: `curr` was read via KCAS under `guard`, so
                        // the node is protected from reclamation.
                        let node: &Node = unsafe { word_to_ref(curr, &guard) };
                        let ver = op.visit(&node.ver);
                        if ver & 1 == 1 {
                            self.note_retry();
                            continue 'retry;
                        }
                        let key = op.read(&node.key);
                        if key >= start {
                            stack.push((node, key));
                            curr = op.read(&node.left);
                        } else {
                            curr = op.read(&node.right);
                        }
                    }
                    match stack.pop() {
                        None => break 'walk,
                        Some((node, key)) => {
                            out.push((key, op.read(&node.val)));
                            if out.len() == len {
                                break 'walk;
                            }
                            curr = op.read(&node.right);
                        }
                    }
                }
                if op.validate() {
                    return out;
                }
                self.note_retry();
            }
        })
    }

    // ------------------------------------------------------------------
    // Rebalancing (Algorithm 10 and the rotations of Algorithms 8, 9, 11)
    // ------------------------------------------------------------------

    /// Walk towards the root from `start`, repairing violations this thread
    /// may have created.  Uses an explicit work list instead of recursion so
    /// that degenerate shapes cannot overflow the stack.
    fn rebalance(&self, start: u64, builder: &mut OpBuilder, guard: &Guard) {
        let mut work: Vec<u64> = vec![start];
        // Defensive bound: Bougé's rebalancing terminates, but a bound keeps
        // a bug from turning into an unbounded loop.
        let mut budget: u64 = 1_000_000;
        while let Some(mut n_word) = work.pop() {
            loop {
                if budget == 0 {
                    return;
                }
                budget -= 1;
                if n_word == NIL || n_word == self.min_word() || n_word == self.max_word() {
                    break;
                }
                match self.rebalance_step(n_word, builder, guard) {
                    Step::Retry => continue,
                    Step::Done => break,
                    Step::MoveUp(next) => {
                        n_word = next;
                    }
                    Step::Rotated { next, recheck } => {
                        // ORDERING: Relaxed — diagnostic counter only.
                        self.rotations.fetch_add(1, Ordering::Relaxed);
                        work.extend(recheck);
                        n_word = next;
                    }
                }
            }
        }
    }

    /// One attempt to repair the balance at `n_word` (one iteration of the
    /// loop in Algorithm 10).
    fn rebalance_step(&self, n_word: u64, builder: &mut OpBuilder, guard: &Guard) -> Step {
        // SAFETY: `n_word` was obtained from a KCAS read (or a just-executed
        // op) under a guard the caller still holds, so the node is protected.
        let n: &Node = unsafe { word_to_ref(n_word, guard) };
        let mut op = builder.start(guard);
        let n_ver = op.visit(&n.ver);
        if n_ver & 1 == 1 {
            // The node was deleted; whoever deleted it owns further violations.
            return Step::Done;
        }
        let p_word = op.read(&n.parent);
        if p_word == NIL {
            return Step::Done;
        }
        // SAFETY: non-NIL parent word read via KCAS under the same guard.
        let p: &Node = unsafe { word_to_ref(p_word, guard) };
        let p_ver = op.visit(&p.ver);
        if p_ver & 1 == 1 {
            return Step::Retry;
        }
        let l_word = op.read(&n.left);
        let r_word = op.read(&n.right);
        let (l, l_ver, lh) = self.read_child(&mut op, guard, l_word);
        if l_ver & 1 == 1 {
            return Step::Retry;
        }
        let (r, r_ver, rh) = self.read_child(&mut op, guard, r_word);
        if r_ver & 1 == 1 {
            return Step::Retry;
        }
        let balance = lh as i64 - rh as i64;

        if balance >= 2 {
            // Left-heavy: inspect the left child's children.
            let l = l.expect("balance >= 2 implies a left child");
            let ll_word = op.read(&l.left);
            let lr_word = op.read(&l.right);
            let (_ll, ll_ver, llh) = self.read_child(&mut op, guard, ll_word);
            if ll_ver & 1 == 1 {
                return Step::Retry;
            }
            let (lr, lr_ver, lrh) = self.read_child(&mut op, guard, lr_word);
            if lr_ver & 1 == 1 {
                return Step::Retry;
            }
            if (llh as i64 - lrh as i64) < 0 {
                let lr = lr.expect("negative child balance implies a right grandchild");
                match self
                    .rotate_left_right(&mut op, guard, p, p_ver, n, n_ver, l, l_ver, lr, lr_ver, rh, llh)
                {
                    Some(()) => {
                        Step::Rotated { next: p_word, recheck: vec![n_word, l_word, lr_word] }
                    }
                    None => Step::Retry,
                }
            } else {
                match self.rotate_right(&mut op, guard, p, p_ver, n, n_ver, l, l_ver, rh, llh) {
                    Some(()) => Step::Rotated { next: p_word, recheck: vec![n_word, l_word] },
                    None => Step::Retry,
                }
            }
        } else if balance <= -2 {
            // Right-heavy: the mirror image.
            let r = r.expect("balance <= -2 implies a right child");
            let rr_word = op.read(&r.right);
            let rl_word = op.read(&r.left);
            let (_rr, rr_ver, rrh) = self.read_child(&mut op, guard, rr_word);
            if rr_ver & 1 == 1 {
                return Step::Retry;
            }
            let (rl, rl_ver, rlh) = self.read_child(&mut op, guard, rl_word);
            if rl_ver & 1 == 1 {
                return Step::Retry;
            }
            if (rrh as i64 - rlh as i64) < 0 {
                let rl = rl.expect("negative child balance implies a left grandchild");
                match self
                    .rotate_right_left(&mut op, guard, p, p_ver, n, n_ver, r, r_ver, rl, rl_ver, lh, rrh)
                {
                    Some(()) => {
                        Step::Rotated { next: p_word, recheck: vec![n_word, r_word, rl_word] }
                    }
                    None => Step::Retry,
                }
            } else {
                match self.rotate_left(&mut op, guard, p, p_ver, n, n_ver, r, r_ver, lh, rrh) {
                    Some(()) => Step::Rotated { next: p_word, recheck: vec![n_word, r_word] },
                    None => Step::Retry,
                }
            }
        } else {
            // Balanced: make sure the logical height is accurate (Algorithm 8).
            let old_height = op.read(&n.height);
            let new_height = 1 + lh.max(rh);
            if old_height == new_height {
                if op.validate() {
                    return Step::Done;
                }
                return Step::Retry;
            }
            op.add(&n.height, old_height, new_height);
            op.add(&n.ver, n_ver, n_ver + 2);
            if op.vexec() {
                Step::MoveUp(p_word)
            } else {
                Step::Retry
            }
        }
    }

    /// Visit a child (if present) and read its logical height; absent
    /// children count as height 0.
    fn read_child<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        guard: &'g Guard,
        word: u64,
    ) -> (Option<&'g Node>, u64, u64) {
        if word == NIL {
            (None, 0, 0)
        } else {
            // SAFETY: non-NIL child word read via KCAS under the guard the
            // caller holds, so the node cannot be reclaimed.
            let node: &Node = unsafe { word_to_ref(word, guard) };
            let ver = op.visit(&node.ver);
            let h = op.read(&node.height);
            (Some(node), ver, h)
        }
    }

    /// Replace `p`'s child pointer `from` with `to`; returns `None` if `from`
    /// is not currently a child of `p` (the rotation must be retried).
    fn add_child_swap<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        p: &'g Node,
        from: u64,
        to: u64,
    ) -> Option<()> {
        let p_left = op.read(&p.left);
        let p_right = op.read(&p.right);
        if p_right == from {
            op.add(&p.right, from, to);
            Some(())
        } else if p_left == from {
            op.add(&p.left, from, to);
            Some(())
        } else {
            None
        }
    }

    /// Algorithm 11: single right rotation at `n` (left child `l` moves up).
    #[allow(clippy::too_many_arguments)]
    fn rotate_right<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        guard: &'g Guard,
        p: &'g Node,
        p_ver: u64,
        n: &'g Node,
        n_ver: u64,
        l: &'g Node,
        l_ver: u64,
        rh: u64,
        llh: u64,
    ) -> Option<()> {
        let n_word = ptr_to_word(n as *const Node);
        let p_word = ptr_to_word(p as *const Node);
        let l_word = ptr_to_word(l as *const Node);
        self.add_child_swap(op, p, n_word, l_word)?;
        let lr_word = op.read(&l.right);
        let mut lrh = 0;
        if lr_word != NIL {
            // SAFETY: non-NIL word read via KCAS under the caller's guard.
            let lr: &Node = unsafe { word_to_ref(lr_word, guard) };
            let lr_ver = op.visit(&lr.ver);
            if lr_ver & 1 == 1 {
                return None;
            }
            lrh = op.read(&lr.height);
            op.add(&lr.parent, l_word, n_word);
            op.add(&lr.ver, lr_ver, lr_ver + 2);
        }
        let old_nh = op.read(&n.height);
        let old_lh = op.read(&l.height);
        let new_nh = 1 + lrh.max(rh);
        let new_lh = 1 + llh.max(new_nh);
        op.add(&l.parent, n_word, p_word);
        op.add(&n.left, l_word, lr_word);
        op.add(&l.right, lr_word, n_word);
        op.add(&n.parent, p_word, l_word);
        op.add(&n.height, old_nh, new_nh);
        op.add(&l.height, old_lh, new_lh);
        op.add(&p.ver, p_ver, p_ver + 2);
        op.add(&n.ver, n_ver, n_ver + 2);
        op.add(&l.ver, l_ver, l_ver + 2);
        if op.vexec() {
            Some(())
        } else {
            None
        }
    }

    /// Mirror of [`Self::rotate_right`]: single left rotation at `n`.
    #[allow(clippy::too_many_arguments)]
    fn rotate_left<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        guard: &'g Guard,
        p: &'g Node,
        p_ver: u64,
        n: &'g Node,
        n_ver: u64,
        r: &'g Node,
        r_ver: u64,
        lh: u64,
        rrh: u64,
    ) -> Option<()> {
        let n_word = ptr_to_word(n as *const Node);
        let p_word = ptr_to_word(p as *const Node);
        let r_word = ptr_to_word(r as *const Node);
        self.add_child_swap(op, p, n_word, r_word)?;
        let rl_word = op.read(&r.left);
        let mut rlh = 0;
        if rl_word != NIL {
            // SAFETY: non-NIL word read via KCAS under the caller's guard.
            let rl: &Node = unsafe { word_to_ref(rl_word, guard) };
            let rl_ver = op.visit(&rl.ver);
            if rl_ver & 1 == 1 {
                return None;
            }
            rlh = op.read(&rl.height);
            op.add(&rl.parent, r_word, n_word);
            op.add(&rl.ver, rl_ver, rl_ver + 2);
        }
        let old_nh = op.read(&n.height);
        let old_rh = op.read(&r.height);
        let new_nh = 1 + rlh.max(lh);
        let new_rh = 1 + rrh.max(new_nh);
        op.add(&r.parent, n_word, p_word);
        op.add(&n.right, r_word, rl_word);
        op.add(&r.left, rl_word, n_word);
        op.add(&n.parent, p_word, r_word);
        op.add(&n.height, old_nh, new_nh);
        op.add(&r.height, old_rh, new_rh);
        op.add(&p.ver, p_ver, p_ver + 2);
        op.add(&n.ver, n_ver, n_ver + 2);
        op.add(&r.ver, r_ver, r_ver + 2);
        if op.vexec() {
            Some(())
        } else {
            None
        }
    }

    /// Algorithm 9: double rotation — the left child `l` is right-heavy, so
    /// `l.right` (`lr`) becomes the new root of the subtree.
    #[allow(clippy::too_many_arguments)]
    fn rotate_left_right<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        guard: &'g Guard,
        p: &'g Node,
        p_ver: u64,
        n: &'g Node,
        n_ver: u64,
        l: &'g Node,
        l_ver: u64,
        lr: &'g Node,
        lr_ver: u64,
        rh: u64,
        llh: u64,
    ) -> Option<()> {
        let n_word = ptr_to_word(n as *const Node);
        let p_word = ptr_to_word(p as *const Node);
        let l_word = ptr_to_word(l as *const Node);
        let lr_word = ptr_to_word(lr as *const Node);
        self.add_child_swap(op, p, n_word, lr_word)?;

        let lrl_word = op.read(&lr.left);
        let mut lrlh = 0;
        if lrl_word != NIL {
            // SAFETY: non-NIL word read via KCAS under the caller's guard.
            let lrl: &Node = unsafe { word_to_ref(lrl_word, guard) };
            let lrl_ver = op.visit(&lrl.ver);
            if lrl_ver & 1 == 1 {
                return None;
            }
            lrlh = op.read(&lrl.height);
            op.add(&lrl.parent, lr_word, l_word);
            op.add(&lrl.ver, lrl_ver, lrl_ver + 2);
        }
        let lrr_word = op.read(&lr.right);
        let mut lrrh = 0;
        if lrr_word != NIL {
            // SAFETY: non-NIL word read via KCAS under the caller's guard.
            let lrr: &Node = unsafe { word_to_ref(lrr_word, guard) };
            let lrr_ver = op.visit(&lrr.ver);
            if lrr_ver & 1 == 1 {
                return None;
            }
            lrrh = op.read(&lrr.height);
            op.add(&lrr.parent, lr_word, n_word);
            op.add(&lrr.ver, lrr_ver, lrr_ver + 2);
        }

        let old_nh = op.read(&n.height);
        let old_lh = op.read(&l.height);
        let old_lrh = op.read(&lr.height);
        let new_nh = 1 + lrrh.max(rh);
        let new_lh = 1 + llh.max(lrlh);
        let new_lrh = 1 + new_nh.max(new_lh);

        op.add(&lr.parent, l_word, p_word);
        op.add(&lr.left, lrl_word, l_word);
        op.add(&l.parent, n_word, lr_word);
        op.add(&lr.right, lrr_word, n_word);
        op.add(&n.parent, p_word, lr_word);
        op.add(&l.right, lr_word, lrl_word);
        op.add(&n.left, l_word, lrr_word);
        op.add(&n.height, old_nh, new_nh);
        op.add(&l.height, old_lh, new_lh);
        op.add(&lr.height, old_lrh, new_lrh);
        op.add(&lr.ver, lr_ver, lr_ver + 2);
        op.add(&p.ver, p_ver, p_ver + 2);
        op.add(&n.ver, n_ver, n_ver + 2);
        op.add(&l.ver, l_ver, l_ver + 2);
        if op.vexec() {
            Some(())
        } else {
            None
        }
    }

    /// Mirror of [`Self::rotate_left_right`].
    #[allow(clippy::too_many_arguments)]
    fn rotate_right_left<'g>(
        &self,
        op: &mut PathCasOp<'g>,
        guard: &'g Guard,
        p: &'g Node,
        p_ver: u64,
        n: &'g Node,
        n_ver: u64,
        r: &'g Node,
        r_ver: u64,
        rl: &'g Node,
        rl_ver: u64,
        lh: u64,
        rrh: u64,
    ) -> Option<()> {
        let n_word = ptr_to_word(n as *const Node);
        let p_word = ptr_to_word(p as *const Node);
        let r_word = ptr_to_word(r as *const Node);
        let rl_word = ptr_to_word(rl as *const Node);
        self.add_child_swap(op, p, n_word, rl_word)?;

        let rlr_word = op.read(&rl.right);
        let mut rlrh = 0;
        if rlr_word != NIL {
            // SAFETY: non-NIL word read via KCAS under the caller's guard.
            let rlr: &Node = unsafe { word_to_ref(rlr_word, guard) };
            let rlr_ver = op.visit(&rlr.ver);
            if rlr_ver & 1 == 1 {
                return None;
            }
            rlrh = op.read(&rlr.height);
            op.add(&rlr.parent, rl_word, r_word);
            op.add(&rlr.ver, rlr_ver, rlr_ver + 2);
        }
        let rll_word = op.read(&rl.left);
        let mut rllh = 0;
        if rll_word != NIL {
            // SAFETY: non-NIL word read via KCAS under the caller's guard.
            let rll: &Node = unsafe { word_to_ref(rll_word, guard) };
            let rll_ver = op.visit(&rll.ver);
            if rll_ver & 1 == 1 {
                return None;
            }
            rllh = op.read(&rll.height);
            op.add(&rll.parent, rl_word, n_word);
            op.add(&rll.ver, rll_ver, rll_ver + 2);
        }

        let old_nh = op.read(&n.height);
        let old_rh = op.read(&r.height);
        let old_rlh = op.read(&rl.height);
        let new_nh = 1 + rllh.max(lh);
        let new_rh = 1 + rrh.max(rlrh);
        let new_rlh = 1 + new_nh.max(new_rh);

        op.add(&rl.parent, r_word, p_word);
        op.add(&rl.right, rlr_word, r_word);
        op.add(&r.parent, n_word, rl_word);
        op.add(&rl.left, rll_word, n_word);
        op.add(&n.parent, p_word, rl_word);
        op.add(&r.left, rl_word, rlr_word);
        op.add(&n.right, r_word, rll_word);
        op.add(&n.height, old_nh, new_nh);
        op.add(&r.height, old_rh, new_rh);
        op.add(&rl.height, old_rlh, new_rlh);
        op.add(&rl.ver, rl_ver, rl_ver + 2);
        op.add(&p.ver, p_ver, p_ver + 2);
        op.add(&n.ver, n_ver, n_ver + 2);
        op.add(&r.ver, r_ver, r_ver + 2);
        if op.vexec() {
            Some(())
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Quiescent inspection
    // ------------------------------------------------------------------

    fn stats_impl(&self) -> MapStats {
        let mut stats = MapStats {
            node_count: 2,
            approx_bytes: 2 * std::mem::size_of::<Node>() as u64,
            ..Default::default()
        };
        // SAFETY: stats run quiescently (per the `load_quiescent` contract);
        // the sentinel is live and no writer can race this read.
        let root = unsafe { (*self.min_root).right.load_quiescent() };
        let mut stack: Vec<(u64, u64)> = Vec::new();
        if root != NIL {
            stack.push((root, 0));
        }
        while let Some((word, depth)) = stack.pop() {
            // SAFETY: quiescent traversal — every reachable word is a valid
            // node pointer owned by the tree.
            let node = unsafe { &*(word as usize as *const Node) };
            stats.node_count += 1;
            stats.approx_bytes += std::mem::size_of::<Node>() as u64;
            stats.key_count += 1;
            stats.key_sum += node.key.load_quiescent() as u128;
            stats.key_depth_sum += depth;
            let l = node.left.load_quiescent();
            let r = node.right.load_quiescent();
            if l != NIL {
                stack.push((l, depth + 1));
            }
            if r != NIL {
                stack.push((r, depth + 1));
            }
        }
        stats
    }

    /// Actual (not logical) height of the tree rooted under `minRoot.right`.
    pub fn actual_height(&self) -> u64 {
        let mut max_depth = 0u64;
        // SAFETY: quiescent read of the live sentinel (see `stats_impl`).
        let root = unsafe { (*self.min_root).right.load_quiescent() };
        let mut stack: Vec<(u64, u64)> = Vec::new();
        if root != NIL {
            stack.push((root, 1));
        }
        while let Some((word, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            // SAFETY: quiescent traversal of live owned nodes (see above).
            let node = unsafe { &*(word as usize as *const Node) };
            let l = node.left.load_quiescent();
            let r = node.right.load_quiescent();
            if l != NIL {
                stack.push((l, depth + 1));
            }
            if r != NIL {
                stack.push((r, depth + 1));
            }
        }
        max_depth
    }

    /// Quiescent structural invariants: BST order, parent pointers, no
    /// reachable marked nodes.  Panics on violation.
    pub fn check_invariants(&self) {
        // SAFETY: invariant checks run quiescently; the sentinel is live and
        // no writer can race this read.
        let root = unsafe { (*self.min_root).right.load_quiescent() };
        // (word, low, high, expected_parent)
        let mut stack: Vec<(u64, u64, u64, u64)> = Vec::new();
        if root != NIL {
            stack.push((root, KEY_MIN_SENTINEL, KEY_MAX_SENTINEL, ptr_to_word(self.min_root)));
        }
        while let Some((word, low, high, expected_parent)) = stack.pop() {
            // SAFETY: quiescent traversal — every reachable word is a valid
            // node pointer owned by the tree.
            let node = unsafe { &*(word as usize as *const Node) };
            let key = node.key.load_quiescent();
            assert!(key > low && key < high, "AVL order violated: {key} not in ({low},{high})");
            assert_eq!(node.ver.load_quiescent() & 1, 0, "reachable AVL node is marked");
            assert_eq!(
                node.parent.load_quiescent(),
                expected_parent,
                "parent pointer of {key} is stale"
            );
            let l = node.left.load_quiescent();
            let r = node.right.load_quiescent();
            if l != NIL {
                stack.push((l, low, key, word));
            }
            if r != NIL {
                stack.push((r, key, high, word));
            }
        }
    }
}

impl ConcurrentMap for PathCasAvl {
    fn name(&self) -> &'static str {
        "int-avl-pathcas"
    }
    fn insert(&self, key: Key, value: Value) -> bool {
        self.insert_impl(key, value)
    }
    fn remove(&self, key: Key) -> bool {
        self.remove_impl(key)
    }
    fn contains(&self, key: Key) -> bool {
        self.get_impl(key).is_some()
    }
    fn get(&self, key: Key) -> Option<Value> {
        self.get_impl(key)
    }
    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        self.rmw_impl(key, update)
    }
    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.scan_impl(start, len)
    }
    fn stats(&self) -> MapStats {
        self.stats_impl()
    }
}

impl Drop for PathCasAvl {
    fn drop(&mut self) {
        let mut to_free: Vec<*mut Node> = Vec::new();
        let mut work = vec![ptr_to_word(self.max_root)];
        while let Some(word) = work.pop() {
            if word == NIL {
                continue;
            }
            let ptr = word as usize as *mut Node;
            // SAFETY: `&mut self` proves exclusive access; every word in the
            // tree is a live `Box::into_raw` pointer owned by it.
            let node = unsafe { &*ptr };
            work.push(node.left.load_quiescent());
            work.push(node.right.load_quiescent());
            to_free.push(ptr);
        }
        for ptr in to_free {
            // SAFETY: see above — each node collected once, freed once.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
    use mapapi::suites::*;
    use std::time::Duration;

    #[test]
    fn basic_semantics() {
        check_basic_semantics(&PathCasAvl::new());
    }

    #[test]
    fn ordered_patterns() {
        let t = PathCasAvl::new();
        check_ordered_patterns(&t);
        t.check_invariants();
    }

    #[test]
    fn random_vs_oracle() {
        let t = PathCasAvl::new();
        check_random_against_oracle(&t, 6000, 128, 0xA11E);
        check_stats_consistency(&t, 128);
        t.check_invariants();
    }

    #[test]
    fn sequential_inserts_are_rebalanced() {
        // Ascending insertion into an unbalanced internal BST produces a path
        // of length n; the relaxed AVL tree must keep the actual height
        // logarithmic (with slack for relaxation).
        let t = PathCasAvl::new();
        let n: u64 = 1024;
        for k in 1..=n {
            assert!(t.insert(k, k));
        }
        t.check_invariants();
        let h = t.actual_height();
        assert!(h <= 30, "AVL height {h} too large for {n} sequential keys");
        assert!(t.rotation_count() > 0, "no rotations were performed");
        let s = t.stats();
        assert_eq!(s.key_count, n);
        assert!(s.avg_key_depth() <= 20.0, "avg depth {} too large", s.avg_key_depth());
    }

    #[test]
    fn descending_inserts_are_rebalanced() {
        let t = PathCasAvl::new();
        let n: u64 = 1024;
        for k in (1..=n).rev() {
            assert!(t.insert(k, k));
        }
        t.check_invariants();
        assert!(t.actual_height() <= 30);
    }

    #[test]
    fn deletions_keep_tree_consistent() {
        let t = PathCasAvl::new();
        let n: u64 = 512;
        for k in 1..=n {
            t.insert(k, k);
        }
        for k in (1..=n).step_by(3) {
            assert!(t.remove(k));
        }
        t.check_invariants();
        for k in 1..=n {
            assert_eq!(t.contains(k), (k - 1) % 3 != 0);
        }
    }

    #[test]
    fn two_child_deletion_with_rebalance() {
        let t = PathCasAvl::new();
        for k in [50u64, 25, 75, 12, 37, 62, 87, 31, 43] {
            t.insert(k, k);
        }
        assert!(t.remove(50));
        assert!(t.remove(25));
        assert!(t.remove(75));
        t.check_invariants();
        let s = t.stats();
        assert_eq!(s.key_count, 6);
    }

    #[test]
    fn stripes_stress() {
        let t = PathCasAvl::new();
        stress_disjoint_stripes(&t, 4, 250);
        t.check_invariants();
    }

    #[test]
    fn keysum_stress_mixed() {
        let t = PathCasAvl::new();
        prefill(&t, 512, 256, 21);
        stress_keysum(&t, 4, 512, 40, Duration::from_millis(300), 77);
        t.check_invariants();
    }

    #[test]
    fn keysum_stress_update_heavy() {
        let t = PathCasAvl::new();
        prefill(&t, 64, 32, 13);
        stress_keysum(&t, 4, 64, 100, Duration::from_millis(300), 31);
        t.check_invariants();
    }

    #[test]
    fn scan_semantics() {
        check_scan_semantics(&PathCasAvl::new());
    }

    #[test]
    fn scan_vs_oracle() {
        let t = PathCasAvl::new();
        check_scan_against_oracle(&t, 256, 0xAB1E);
        t.check_invariants();
    }

    #[test]
    fn chunked_audit_covers_trees_larger_than_one_chunk() {
        // The scan audit walks in SCAN_AUDIT_CHUNK-sized validated scans, so
        // a tree bigger than one chunk exercises the resume logic on a real
        // validated structure.
        let t = PathCasAvl::new();
        for k in 1..=(2 * SCAN_AUDIT_CHUNK as u64 + 77) {
            t.insert(k, k);
        }
        check_scan_matches_stats(&t, &t.stats());
    }

    #[test]
    fn scan_survives_concurrent_rebalancing() {
        // Ascending inserts trigger constant rotations through the scanned
        // range; every scan must still be a consistent prefix of the keys
        // inserted so far (values equal keys, strictly ascending).
        let t = std::sync::Arc::new(PathCasAvl::new());
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let t = std::sync::Arc::clone(&t);
                let stop = &stop;
                s.spawn(move || {
                    let mut k = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        t.insert(k, k);
                        k += 1;
                    }
                });
            }
            let t2 = std::sync::Arc::clone(&t);
            for _ in 0..200 {
                let got = t2.scan(1, 32);
                for (i, &(k, v)) in got.iter().enumerate() {
                    assert_eq!(k, 1 + i as u64, "scan not a dense ascending prefix: {got:?}");
                    assert_eq!(v, k);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        t.check_invariants();
    }

    #[test]
    fn rmw_updates_in_place_and_rebalances_on_insert() {
        let t = PathCasAvl::new();
        // Build entirely through rmw: the absent branch must rebalance.
        for k in 1..=256u64 {
            assert!(!t.rmw(k, &mut |v| v.unwrap_or(k * 2)));
        }
        assert!(t.actual_height() <= 20, "rmw inserts not rebalanced: {}", t.actual_height());
        assert!(t.rmw(17, &mut |v| v.unwrap() + 1));
        assert_eq!(t.get(17), Some(35));
        t.check_invariants();
    }

    #[test]
    fn concurrent_rmw_increments_are_not_lost() {
        let t = std::sync::Arc::new(PathCasAvl::new());
        t.insert(42, 0);
        let threads = 4u64;
        let per = 2_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..per {
                        t.rmw(42, &mut |v| v.unwrap() + 1);
                    }
                });
            }
        });
        assert_eq!(t.get(42), Some(threads * per));
        t.check_invariants();
    }

    #[test]
    fn concurrent_ascending_inserts_stay_balanced() {
        let t = std::sync::Arc::new(PathCasAvl::new());
        let threads = 4usize;
        let per = 500u64;
        std::thread::scope(|s| {
            for id in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per {
                        t.insert(1 + i * threads as u64 + id as u64, i);
                    }
                });
            }
        });
        t.check_invariants();
        let s = t.stats();
        assert_eq!(s.key_count, per * threads as u64);
        assert!(t.actual_height() <= 60, "height {} after concurrent inserts", t.actual_height());
    }
}
