//! A lock-free stack built on the PathCAS/KCAS machinery (§6 mentions stacks
//! among the structures implemented with the same recipe).  Push and pop are
//! single-word operations, so they use `exec` without any visited path; the
//! value of the exercise is that epoch reclamation plus descriptor-based CAS
//! makes the classic ABA pitfall a non-issue.

use std::sync::atomic::{AtomicU64, Ordering};

use kcas::CasWord;

use crate::node::{ptr_to_word, retire, with_builder, word_to_ref, NIL};

struct Node {
    val: u64,
    next: CasWord,
}

/// A Treiber-style lock-free stack of `u64` values, synchronized with PathCAS.
pub struct PathCasStack {
    top: CasWord,
    len: AtomicU64,
}

// SAFETY: the stack owns its nodes; all shared mutation goes through the
// KCAS engine's atomic words and nodes are reclaimed through the epoch
// collector, so references handed across threads stay valid.
unsafe impl Send for PathCasStack {}
// SAFETY: as above — every operation on shared state is lock-free-atomic.
unsafe impl Sync for PathCasStack {}

impl Default for PathCasStack {
    fn default() -> Self {
        Self::new()
    }
}

impl PathCasStack {
    /// Create an empty stack.
    pub fn new() -> Self {
        PathCasStack { top: CasWord::new(NIL), len: AtomicU64::new(0) }
    }

    /// Push a value.
    pub fn push(&self, val: u64) {
        let node = Box::into_raw(Box::new(Node { val, next: CasWord::new(NIL) }));
        loop {
            let pushed = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let top = op.read(&self.top);
                // SAFETY: `node` was just boxed by this thread and is not
                // yet published; only we can reach it until `exec` succeeds.
                unsafe { &*node }.next.store(top);
                op.add(&self.top, top, ptr_to_word(node));
                op.exec()
            });
            if pushed {
                // ORDERING: Relaxed — `len` is a best-effort statistic
                // (its doc says so); linearization lives in `top`.
                self.len.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Pop the most recently pushed value, or `None` if the stack is empty.
    pub fn pop(&self) -> Option<u64> {
        loop {
            let result = with_builder(|builder| {
                let guard = crossbeam_epoch::pin();
                let mut op = builder.start(&guard);
                let top = op.read(&self.top);
                if top == NIL {
                    return Some(None);
                }
                // SAFETY: `top` was read under `guard`, so the node it
                // points at cannot be reclaimed while we hold the pin.
                let node: &Node = unsafe { word_to_ref(top, &guard) };
                let next = op.read(&node.next);
                op.add(&self.top, top, next);
                if op.exec() {
                    let val = node.val;
                    // SAFETY: the successful exec unlinked `node`; no new
                    // reader can reach it, and `retire` defers the free
                    // past every pinned guard.
                    unsafe { retire(node as *const Node, &guard) };
                    Some(Some(val))
                } else {
                    None
                }
            });
            if let Some(r) = result {
                if r.is_some() {
                    // ORDERING: Relaxed — best-effort statistic, as in push.
                    self.len.fetch_sub(1, Ordering::Relaxed);
                }
                return r;
            }
        }
    }

    /// Best-effort number of elements currently on the stack.
    pub fn len(&self) -> u64 {
        // ORDERING: Relaxed — best-effort statistic, racy by contract.
        self.len.load(Ordering::Relaxed)
    }

    /// Returns `true` if the stack is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        let guard = crossbeam_epoch::pin();
        kcas::read(&self.top, &guard) == NIL
    }
}

impl Drop for PathCasStack {
    fn drop(&mut self) {
        let mut curr = self.top.load_quiescent();
        while curr != NIL {
            let node = curr as usize as *mut Node;
            // SAFETY: `&mut self` proves no concurrent operation is running,
            // so every reachable node is exclusively ours to walk and free.
            curr = unsafe { (*node).next.load_quiescent() };
            // SAFETY: each node was allocated by `Box::new` in `push` and is
            // unlinked exactly once by this walk.
            unsafe { drop(Box::from_raw(node)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifo_order() {
        let s = PathCasStack::new();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        for v in 1..=10u64 {
            s.push(v);
        }
        assert_eq!(s.len(), 10);
        for v in (1..=10u64).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        let s = Arc::new(PathCasStack::new());
        let threads = 4;
        let per = 3000u64;
        let popped: Vec<u64> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let s = Arc::clone(&s);
                handles.push(scope.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per {
                        s.push(t as u64 * per + i + 1);
                        if i % 2 == 1 {
                            if let Some(v) = s.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                }));
            }
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut remaining = Vec::new();
        while let Some(v) = s.pop() {
            remaining.push(v);
        }
        let mut all: Vec<u64> = popped.into_iter().chain(remaining).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len() as u64, threads as u64 * per, "elements lost or duplicated");
    }
}
