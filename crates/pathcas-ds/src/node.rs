//! Shared node plumbing for the PathCAS data structures: pointer encoding,
//! epoch-guarded dereferencing, and a small per-thread builder cache.

use std::cell::RefCell;

use crossbeam_epoch::Guard;
use pathcas::OpBuilder;

/// The null pointer value stored in child/next words.
pub const NIL: u64 = 0;

/// Encode a raw node pointer as a `CasWord` application value.
#[inline]
pub fn ptr_to_word<T>(ptr: *const T) -> u64 {
    ptr as usize as u64
}

/// Dereference a node pointer stored in a `CasWord`, with a lifetime tied to
/// the epoch guard of the enclosing operation.
///
/// # Safety
/// The pointer must have been read from the data structure while `guard` was
/// pinned, and the data structure must only retire nodes through the same
/// epoch collector — both are invariants of every structure in this crate.
#[inline]
pub unsafe fn word_to_ref<T>(word: u64, _guard: &Guard) -> &T {
    debug_assert_ne!(word, NIL, "dereferencing NIL");
    // SAFETY: per the function contract, `word` is a live node pointer
    // observed under the pinned epoch represented by `_guard`.
    unsafe { &*(word as usize as *const T) }
}

thread_local! {
    static BUILDER: RefCell<OpBuilder> = RefCell::new(OpBuilder::new());
}

/// Run a closure with the calling thread's reusable PathCAS argument builder.
///
/// Operations never nest (a data-structure operation does not invoke another
/// one on the same thread), so a single per-thread builder suffices — this is
/// the analogue of the paper's per-thread reusable descriptor.
pub fn with_builder<R>(f: impl FnOnce(&mut OpBuilder) -> R) -> R {
    BUILDER.with(|b| f(&mut b.borrow_mut()))
}

/// Retire a node allocated with `Box::into_raw`, freeing it once no epoch
/// guard pinned at retire time remains active.
///
/// # Safety
/// `ptr` must have been produced by `Box::into_raw`, must have been unlinked
/// from the data structure (unreachable for new operations), and must not be
/// retired twice.
pub unsafe fn retire<T>(ptr: *const T, guard: &Guard) {
    // SAFETY: per the function contract, `ptr` is an unlinked Box pointer
    // retired at most once; the deferred drop runs only after every epoch
    // pinned at retire time has expired.
    unsafe {
        guard.defer_unchecked(move || {
            drop(Box::from_raw(ptr as *mut T));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_roundtrip() {
        let x = Box::into_raw(Box::new(42u64));
        let w = ptr_to_word(x);
        let guard = crossbeam_epoch::pin();
        // SAFETY: `w` encodes the live Box allocated above.
        let r: &u64 = unsafe { word_to_ref(w, &guard) };
        assert_eq!(*r, 42);
        // SAFETY: `x` came from Box::into_raw and is freed exactly once.
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn builder_is_reused_per_thread() {
        let a = with_builder(|b| b as *mut OpBuilder as usize);
        let b = with_builder(|b| b as *mut OpBuilder as usize);
        assert_eq!(a, b);
    }
}
