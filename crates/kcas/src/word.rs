//! Tagged 64-bit words (`CasWord`), the unit of memory that DCSS, KCAS and
//! PathCAS operate on.
//!
//! Every field that may ever be modified by a multi-word operation must be a
//! [`CasWord`].  The low two bits of the raw word distinguish what it holds:
//!
//! | tag (bits 1..0) | meaning                                  |
//! |-----------------|------------------------------------------|
//! | `00`            | an application value, stored shifted left by two (62-bit payload) |
//! | `01`            | a *pooled* KCAS / PathCAS descriptor reference (slot + seqno) |
//! | `10`            | a *pooled* DCSS descriptor reference (slot + seqno) |
//! | `11`            | a pointer to a heap-allocated (legacy) KCAS descriptor |
//!
//! Pooled descriptor words do not carry a pointer at all.  They encode the
//! index of a reusable per-thread descriptor *slot* (see [`crate::pool`])
//! together with the sequence number the slot had when the operation was
//! published:
//!
//! ```text
//! bits 63..14 : sequence number (50 bits, monotonically increasing per slot)
//! bits 13..2  : slot index into the global descriptor table (4096 slots)
//! bits  1..0  : tag (01 = KCAS slot, 10 = DCSS slot)
//! ```
//!
//! Because the sequence number is part of the word itself, a helper that
//! still holds a stale descriptor word after the slot has been recycled can
//! detect the recycling (the slot's current seqno no longer matches) and its
//! leftover CASes can never succeed (the stale word never reappears in shared
//! memory).  This is the Arbel-Raviv & Brown descriptor-reuse transformation
//! (DISC '17) that the paper applies; see DESIGN.md §3.
//!
//! This mirrors the `casword<T>` template of the paper's C++ implementation
//! (§4, footnote 5): application code only ever sees *decoded* values, and the
//! helping machinery is hidden behind [`crate::read`].

use crate::sync::{AtomicU64, Ordering};

/// Number of low bits reserved for tags.
pub const TAG_BITS: u32 = 2;
/// Mask selecting the tag bits.
pub const TAG_MASK: u64 = 0b11;
/// Tag value for a plain application value.
pub const TAG_VALUE: u64 = 0b00;
/// Tag value for a pooled KCAS / PathCAS descriptor reference.
pub const TAG_KCAS: u64 = 0b01;
/// Tag value for a pooled DCSS descriptor reference.
pub const TAG_DCSS: u64 = 0b10;
/// Tag value for a heap-allocated (legacy) KCAS descriptor pointer.
///
/// This path is kept as the benchmark baseline for the descriptor-reuse
/// speedup ([`crate::execute_alloc`]) and as the overflow fallback for
/// operations larger than a pooled slot's capacity.
pub const TAG_KCAS_BOXED: u64 = 0b11;

/// Number of bits encoding the slot index of a pooled descriptor word.
pub const SLOT_INDEX_BITS: u32 = 12;
/// Size of the global descriptor slot tables (one for KCAS, one for DCSS).
pub const MAX_POOL_SLOTS: usize = 1 << SLOT_INDEX_BITS;
/// Bit position where the sequence number starts in a pooled descriptor word.
const SEQ_SHIFT: u32 = TAG_BITS + SLOT_INDEX_BITS;
/// The largest sequence number a pooled descriptor word can carry (50 bits).
///
/// A slot publishing one operation every nanosecond would take ~36 years to
/// exhaust this, so wrap-around is not a practical concern.
pub const MAX_SEQ: u64 = (1u64 << (64 - SEQ_SHIFT)) - 1;

/// The largest application value that can be stored in a [`CasWord`]
/// (payloads are 62 bits wide).
pub const MAX_VALUE: u64 = (1u64 << 62) - 1;

/// Encode an application value into its raw tagged representation.
///
/// # Panics
/// Panics in debug builds if `v` exceeds [`MAX_VALUE`].
#[inline]
pub fn encode(v: u64) -> u64 {
    debug_assert!(v <= MAX_VALUE, "value {v} exceeds the 62-bit CasWord payload");
    v << TAG_BITS
}

/// Decode a raw tagged representation back into an application value.
///
/// # Panics
/// Panics in debug builds if `raw` is not value-tagged.
#[inline]
pub fn decode(raw: u64) -> u64 {
    debug_assert_eq!(raw & TAG_MASK, TAG_VALUE, "decoding a descriptor-tagged word");
    raw >> TAG_BITS
}

/// Returns `true` if the raw word holds a plain application value.
#[inline]
pub fn is_value(raw: u64) -> bool {
    raw & TAG_MASK == TAG_VALUE
}

/// Returns `true` if the raw word is a pooled KCAS / PathCAS descriptor
/// reference.
#[inline]
pub fn is_kcas_desc(raw: u64) -> bool {
    raw & TAG_MASK == TAG_KCAS
}

/// Returns `true` if the raw word is a heap-allocated (legacy) KCAS
/// descriptor pointer.
#[inline]
pub fn is_kcas_boxed(raw: u64) -> bool {
    raw & TAG_MASK == TAG_KCAS_BOXED
}

/// Returns `true` if the raw word refers to a KCAS / PathCAS descriptor of
/// either kind (pooled or heap-allocated).
#[inline]
pub fn is_any_kcas_desc(raw: u64) -> bool {
    is_kcas_desc(raw) || is_kcas_boxed(raw)
}

/// Returns `true` if the raw word is a pooled DCSS descriptor reference.
#[inline]
pub fn is_dcss_desc(raw: u64) -> bool {
    raw & TAG_MASK == TAG_DCSS
}

/// Returns `true` if the raw word is any kind of descriptor reference.
#[inline]
pub fn is_descriptor(raw: u64) -> bool {
    raw & TAG_MASK != TAG_VALUE
}

/// Pack a pooled descriptor reference from a tag, slot index and seqno.
#[inline]
pub(crate) fn pack_pooled(tag: u64, slot: usize, seq: u64) -> u64 {
    debug_assert!(tag == TAG_KCAS || tag == TAG_DCSS);
    debug_assert!(slot < MAX_POOL_SLOTS, "slot index {slot} out of range");
    debug_assert!(seq <= MAX_SEQ, "sequence number overflow");
    (seq << SEQ_SHIFT) | ((slot as u64) << TAG_BITS) | tag
}

/// Slot index of a pooled descriptor word.
#[inline]
pub(crate) fn pooled_slot(raw: u64) -> usize {
    ((raw >> TAG_BITS) as usize) & (MAX_POOL_SLOTS - 1)
}

/// Sequence number of a pooled descriptor word.
#[inline]
pub(crate) fn pooled_seq(raw: u64) -> u64 {
    raw >> SEQ_SHIFT
}

/// Tag a raw pointer as a heap-allocated (legacy) KCAS descriptor word.
#[inline]
pub(crate) fn tag_boxed_kcas_ptr(ptr: usize) -> u64 {
    debug_assert_eq!(ptr as u64 & TAG_MASK, 0, "descriptor pointers must be 4-byte aligned");
    ptr as u64 | TAG_KCAS_BOXED
}

/// Strip the tag from a boxed descriptor word, recovering the raw pointer.
#[inline]
pub(crate) fn untag_ptr(raw: u64) -> usize {
    (raw & !TAG_MASK) as usize
}

/// A 64-bit shared memory word that can be read and modified by DCSS, KCAS
/// and PathCAS operations.
///
/// Application values stored in a `CasWord` are limited to 62 bits
/// ([`MAX_VALUE`]); this comfortably holds keys, values, version numbers,
/// heights and pointers on 64-bit platforms.
///
/// Reading a `CasWord` that might be concurrently modified by a multi-word
/// operation must go through [`crate::read`] (the paper's `KCASRead`), which
/// helps any in-flight operation it encounters.  Plain [`CasWord::load_raw`] is
/// only appropriate when the caller can tolerate (or wants to observe)
/// descriptor-tagged raw values.
#[repr(transparent)]
#[derive(Debug)]
pub struct CasWord(pub(crate) AtomicU64);

impl CasWord {
    /// Create a word holding the application value `v`.
    #[inline]
    pub fn new(v: u64) -> Self {
        CasWord(AtomicU64::new(encode(v)))
    }

    /// Load the raw tagged representation.
    #[inline]
    pub fn load_raw(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    /// Load the word assuming it currently holds an application value.
    ///
    /// This is a convenience for quiescent (single-threaded) inspection, e.g.
    /// validation passes and statistics.  Concurrent readers must use
    /// [`crate::read`] instead.
    ///
    /// # Panics
    /// Panics if the word currently holds a descriptor pointer.
    #[inline]
    pub fn load_quiescent(&self) -> u64 {
        let raw = self.0.load(Ordering::SeqCst);
        assert!(is_value(raw), "load_quiescent observed a descriptor; the structure is not quiescent");
        decode(raw)
    }

    /// Store an application value. Only safe to use before the word is shared
    /// (e.g. while initialising a node) or during quiescent periods.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(encode(v), Ordering::SeqCst);
    }

    /// Raw compare-and-swap on the tagged representation.
    #[inline]
    pub(crate) fn cas_raw(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Compare-and-swap between two application values.  Exposed for
    /// single-word fast paths in data structures built on this crate.
    #[inline]
    pub fn cas_value(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.cas_raw(encode(expected), encode(new))
            .map(decode)
            .map_err(|raw| if is_value(raw) { decode(raw) } else { raw })
    }
}

impl Default for CasWord {
    fn default() -> Self {
        CasWord::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 2, 1 << 20, MAX_VALUE] {
            assert_eq!(decode(encode(v)), v);
            assert!(is_value(encode(v)));
            assert!(!is_descriptor(encode(v)));
        }
    }

    #[test]
    fn tags_are_disjoint() {
        let ptr = 0x0007_f00d_eadb_eef0_usize & !0b11;
        let k = pack_pooled(TAG_KCAS, 17, 99);
        let d = pack_pooled(TAG_DCSS, 17, 99);
        let b = tag_boxed_kcas_ptr(ptr);
        assert!(is_kcas_desc(k) && !is_dcss_desc(k) && !is_value(k) && !is_kcas_boxed(k));
        assert!(is_dcss_desc(d) && !is_kcas_desc(d) && !is_value(d) && !is_kcas_boxed(d));
        assert!(is_kcas_boxed(b) && !is_kcas_desc(b) && !is_dcss_desc(b) && !is_value(b));
        assert!(is_any_kcas_desc(k) && is_any_kcas_desc(b) && !is_any_kcas_desc(d));
        assert_eq!(untag_ptr(b), ptr);
    }

    #[test]
    fn pooled_words_roundtrip() {
        for (slot, seq) in [(0usize, 0u64), (1, 1), (4095, MAX_SEQ), (1234, 1 << 40)] {
            for tag in [TAG_KCAS, TAG_DCSS] {
                let raw = pack_pooled(tag, slot, seq);
                assert_eq!(pooled_slot(raw), slot);
                assert_eq!(pooled_seq(raw), seq);
                assert_eq!(raw & TAG_MASK, tag);
                assert!(is_descriptor(raw));
            }
        }
    }

    #[test]
    fn word_basic_ops() {
        let w = CasWord::new(42);
        assert_eq!(w.load_quiescent(), 42);
        w.store(7);
        assert_eq!(w.load_quiescent(), 7);
        assert!(w.cas_value(7, 9).is_ok());
        assert_eq!(w.load_quiescent(), 9);
        assert_eq!(w.cas_value(7, 11), Err(decode(encode(9))));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CasWord::default().load_quiescent(), 0);
    }
}
