//! Tagged 64-bit words (`CasWord`), the unit of memory that DCSS, KCAS and
//! PathCAS operate on.
//!
//! Every field that may ever be modified by a multi-word operation must be a
//! [`CasWord`].  The low two bits of the raw word distinguish what it holds:
//!
//! | tag (bits 1..0) | meaning                                  |
//! |-----------------|------------------------------------------|
//! | `00`            | an application value, stored shifted left by two (62-bit payload) |
//! | `01`            | a pointer to a KCAS / PathCAS descriptor |
//! | `10`            | a pointer to a DCSS descriptor           |
//!
//! This mirrors the `casword<T>` template of the paper's C++ implementation
//! (§4, footnote 5): application code only ever sees *decoded* values, and the
//! helping machinery is hidden behind [`crate::read`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of low bits reserved for tags.
pub const TAG_BITS: u32 = 2;
/// Mask selecting the tag bits.
pub const TAG_MASK: u64 = 0b11;
/// Tag value for a plain application value.
pub const TAG_VALUE: u64 = 0b00;
/// Tag value for a KCAS / PathCAS descriptor pointer.
pub const TAG_KCAS: u64 = 0b01;
/// Tag value for a DCSS descriptor pointer.
pub const TAG_DCSS: u64 = 0b10;

/// The largest application value that can be stored in a [`CasWord`]
/// (payloads are 62 bits wide).
pub const MAX_VALUE: u64 = (1u64 << 62) - 1;

/// Encode an application value into its raw tagged representation.
///
/// # Panics
/// Panics in debug builds if `v` exceeds [`MAX_VALUE`].
#[inline]
pub fn encode(v: u64) -> u64 {
    debug_assert!(v <= MAX_VALUE, "value {v} exceeds the 62-bit CasWord payload");
    v << TAG_BITS
}

/// Decode a raw tagged representation back into an application value.
///
/// # Panics
/// Panics in debug builds if `raw` is not value-tagged.
#[inline]
pub fn decode(raw: u64) -> u64 {
    debug_assert_eq!(raw & TAG_MASK, TAG_VALUE, "decoding a descriptor-tagged word");
    raw >> TAG_BITS
}

/// Returns `true` if the raw word holds a plain application value.
#[inline]
pub fn is_value(raw: u64) -> bool {
    raw & TAG_MASK == TAG_VALUE
}

/// Returns `true` if the raw word is a KCAS / PathCAS descriptor pointer.
#[inline]
pub fn is_kcas_desc(raw: u64) -> bool {
    raw & TAG_MASK == TAG_KCAS
}

/// Returns `true` if the raw word is a DCSS descriptor pointer.
#[inline]
pub fn is_dcss_desc(raw: u64) -> bool {
    raw & TAG_MASK == TAG_DCSS
}

/// Returns `true` if the raw word is any kind of descriptor pointer.
#[inline]
pub fn is_descriptor(raw: u64) -> bool {
    raw & TAG_MASK != TAG_VALUE
}

/// Tag a raw pointer as a KCAS descriptor word.
#[inline]
pub(crate) fn tag_kcas_ptr(ptr: usize) -> u64 {
    debug_assert_eq!(ptr as u64 & TAG_MASK, 0, "descriptor pointers must be 4-byte aligned");
    ptr as u64 | TAG_KCAS
}

/// Tag a raw pointer as a DCSS descriptor word.
#[inline]
pub(crate) fn tag_dcss_ptr(ptr: usize) -> u64 {
    debug_assert_eq!(ptr as u64 & TAG_MASK, 0, "descriptor pointers must be 4-byte aligned");
    ptr as u64 | TAG_DCSS
}

/// Strip the tag from a descriptor word, recovering the raw pointer.
#[inline]
pub(crate) fn untag_ptr(raw: u64) -> usize {
    (raw & !TAG_MASK) as usize
}

/// A 64-bit shared memory word that can be read and modified by DCSS, KCAS
/// and PathCAS operations.
///
/// Application values stored in a `CasWord` are limited to 62 bits
/// ([`MAX_VALUE`]); this comfortably holds keys, values, version numbers,
/// heights and pointers on 64-bit platforms.
///
/// Reading a `CasWord` that might be concurrently modified by a multi-word
/// operation must go through [`crate::read`] (the paper's `KCASRead`), which
/// helps any in-flight operation it encounters.  Plain [`CasWord::load_raw`] is
/// only appropriate when the caller can tolerate (or wants to observe)
/// descriptor-tagged raw values.
#[repr(transparent)]
#[derive(Debug)]
pub struct CasWord(pub(crate) AtomicU64);

impl CasWord {
    /// Create a word holding the application value `v`.
    #[inline]
    pub fn new(v: u64) -> Self {
        CasWord(AtomicU64::new(encode(v)))
    }

    /// Load the raw tagged representation.
    #[inline]
    pub fn load_raw(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    /// Load the word assuming it currently holds an application value.
    ///
    /// This is a convenience for quiescent (single-threaded) inspection, e.g.
    /// validation passes and statistics.  Concurrent readers must use
    /// [`crate::read`] instead.
    ///
    /// # Panics
    /// Panics if the word currently holds a descriptor pointer.
    #[inline]
    pub fn load_quiescent(&self) -> u64 {
        let raw = self.0.load(Ordering::SeqCst);
        assert!(is_value(raw), "load_quiescent observed a descriptor; the structure is not quiescent");
        decode(raw)
    }

    /// Store an application value. Only safe to use before the word is shared
    /// (e.g. while initialising a node) or during quiescent periods.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(encode(v), Ordering::SeqCst);
    }

    /// Raw compare-and-swap on the tagged representation.
    #[inline]
    pub(crate) fn cas_raw(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.0
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Compare-and-swap between two application values.  Exposed for
    /// single-word fast paths in data structures built on this crate.
    #[inline]
    pub fn cas_value(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.cas_raw(encode(expected), encode(new))
            .map(decode)
            .map_err(|raw| if is_value(raw) { decode(raw) } else { raw })
    }
}

impl Default for CasWord {
    fn default() -> Self {
        CasWord::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 2, 1 << 20, MAX_VALUE] {
            assert_eq!(decode(encode(v)), v);
            assert!(is_value(encode(v)));
            assert!(!is_descriptor(encode(v)));
        }
    }

    #[test]
    fn tags_are_disjoint() {
        let ptr = 0x0007_f00d_eadb_eef0_usize & !0b11;
        let k = tag_kcas_ptr(ptr);
        let d = tag_dcss_ptr(ptr);
        assert!(is_kcas_desc(k) && !is_dcss_desc(k) && !is_value(k));
        assert!(is_dcss_desc(d) && !is_kcas_desc(d) && !is_value(d));
        assert_eq!(untag_ptr(k), ptr);
        assert_eq!(untag_ptr(d), ptr);
    }

    #[test]
    fn word_basic_ops() {
        let w = CasWord::new(42);
        assert_eq!(w.load_quiescent(), 42);
        w.store(7);
        assert_eq!(w.load_quiescent(), 7);
        assert!(w.cas_value(7, 9).is_ok());
        assert_eq!(w.load_quiescent(), 9);
        assert_eq!(w.cas_value(7, 11), Err(decode(encode(9))));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CasWord::default().load_quiescent(), 0);
    }
}
