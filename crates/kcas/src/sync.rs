//! Atomics facade: the one place this crate touches an atomics
//! implementation.
//!
//! Normal builds re-export `std::sync::atomic`. Under `--cfg pathcas_loom`
//! (see README "Verification") the same names resolve to `loom-shim`'s mock
//! atomics, so the model checker explores the *production* protocol code in
//! `dcss.rs` / `engine.rs` / `pool.rs` — never a hand-copied model.
//!
//! The [`registration`] submodule stays on real std atomics in *both*
//! configurations: it backs the slot tables and free lists, machinery that
//! runs once per thread lifetime, is not part of the checked protocols, and
//! must stay invisible to the model scheduler (a mock operation inside that
//! path would both blow up the schedule space and deadlock the cooperative
//! scheduler if it ever ran under a lock).

#[cfg(not(pathcas_loom))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[cfg(pathcas_loom)]
pub(crate) use loom_shim::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Deliberately non-facaded atomics for slot registration (see module docs).
pub(crate) mod registration {
    pub(crate) use std::sync::atomic::{AtomicPtr, AtomicUsize};
}
