//! KCAS telemetry: striped wait-free counters for the contention events the
//! substrate's performance story turns on — helping, phase-1 retries, and
//! descriptor-pool overflow — exposed through the global `telemetry`
//! registry (and from there over the server's `METRICS` verb).
//!
//! Everything here is allocation-free on the increment path: the counters
//! are `static`s and [`metrics`]'s `Once` fast path is a single atomic load,
//! so instrumented KCAS operations keep the zero-heap-allocation success
//! path the descriptor-reuse transformation bought
//! (`crates/kcas/tests/zero_alloc.rs` asserts this *with* the counters
//! firing).

#[cfg(not(pathcas_loom))]
use std::sync::Once;

#[cfg(not(pathcas_loom))]
use telemetry::{Counter, Handle};

/// Inert drop-in for [`telemetry::Counter`] under `cfg(pathcas_loom)`:
/// model checking explores the DCSS/KCAS protocol itself, and counter
/// increments riding along would multiply the schedule space (every
/// increment is a visible operation to the checker) without being part of
/// the protocol under test. The telemetry counters have their own model
/// suite in `crates/telemetry`.
#[cfg(pathcas_loom)]
pub struct Counter;

#[cfg(pathcas_loom)]
impl Counter {
    /// No-op under the model checker.
    #[inline]
    pub fn inc(&self) {}

    /// No-op under the model checker.
    #[inline]
    pub fn add(&self, _n: u64) {}
}

/// The substrate-level event counters (see module docs).
pub struct KcasMetrics {
    /// KCAS/PathCAS operations started ([`crate::execute`],
    /// [`crate::execute_raw`], [`crate::execute_alloc`] — and therefore
    /// [`crate::kcas`], which goes through `execute`).
    pub ops: Counter,
    /// Phase-1 lock-acquisition retries: an address was found "locked" by a
    /// *different* operation's descriptor, which was helped before the
    /// acquisition was retried. The direct contention signal.
    pub retries: Counter,
    /// Helping events: every time any thread helped an operation it did not
    /// own because it encountered that operation's descriptor in a word
    /// (from `read` or from a phase-1 conflict).
    pub help_events: Counter,
    /// Operations too large for a pooled descriptor slot that fell back to
    /// the legacy heap-allocated descriptor ([`crate::execute`] /
    /// [`crate::execute_raw`] overflow only; the explicit
    /// [`crate::execute_alloc`] baseline is not an overflow).
    pub boxed_fallbacks: Counter,
}

#[cfg(not(pathcas_loom))]
static METRICS: KcasMetrics = KcasMetrics {
    ops: Counter::new(),
    retries: Counter::new(),
    help_events: Counter::new(),
    boxed_fallbacks: Counter::new(),
};

#[cfg(pathcas_loom)]
static METRICS: KcasMetrics = KcasMetrics {
    ops: Counter,
    retries: Counter,
    help_events: Counter,
    boxed_fallbacks: Counter,
};

#[cfg(not(pathcas_loom))]
static REGISTER: Once = Once::new();

/// The global KCAS counters, registering them with the `telemetry` registry
/// on first call. The fast path after registration is one atomic load.
#[cfg(not(pathcas_loom))]
#[inline]
pub fn metrics() -> &'static KcasMetrics {
    REGISTER.call_once(|| {
        telemetry::register("kcas_ops_total", Handle::Counter(&METRICS.ops));
        telemetry::register("kcas_retries_total", Handle::Counter(&METRICS.retries));
        telemetry::register("kcas_help_events_total", Handle::Counter(&METRICS.help_events));
        telemetry::register(
            "kcas_boxed_fallbacks_total",
            Handle::Counter(&METRICS.boxed_fallbacks),
        );
    });
    &METRICS
}

/// Inert variant of [`metrics`] for model-checking builds (see [`Counter`]).
#[cfg(pathcas_loom)]
#[inline]
pub fn metrics() -> &'static KcasMetrics {
    &METRICS
}

/// Record one phase-1 lock-acquisition retry: bumps the global counter
/// *and* notes the event on the calling thread's active trace (if the op
/// was sampled), so span expositions attribute contention to the op that
/// paid for it.
#[cfg(not(pathcas_loom))]
#[inline]
pub fn retry() {
    metrics().retries.inc();
    telemetry::trace::note_retry();
}

/// Record one helping event; trace-noted like [`retry`].
#[cfg(not(pathcas_loom))]
#[inline]
pub fn help() {
    metrics().help_events.inc();
    telemetry::trace::note_help();
}

/// No-op under the model checker (see [`Counter`]): trace notes are
/// thread-local bookkeeping, irrelevant to the protocol under test.
#[cfg(pathcas_loom)]
#[inline]
pub fn retry() {}

/// No-op under the model checker (see [`Counter`]).
#[cfg(pathcas_loom)]
#[inline]
pub fn help() {}
