//! Per-thread reusable descriptor pools (the Arbel-Raviv & Brown
//! descriptor-reuse transformation, DISC '17).
//!
//! Instead of heap-allocating a fresh descriptor for every published KCAS /
//! DCSS operation and retiring it through epoch-based reclamation, each
//! thread owns a small fixed set of descriptor *slots* that it recycles
//! across operations.  A slot lives forever (it is allocated once, on the
//! first operation of a thread, and returned to a free list when the thread
//! exits so a later thread can adopt it), which makes reading a slot's
//! fields always memory-safe — the only hazard is reading fields that belong
//! to a *newer* operation than the one a helper meant to help.
//!
//! That hazard is handled with sequence numbers:
//!
//! * every published descriptor word encodes `(slot index, seqno)`
//!   (see [`crate::word`]);
//! * a KCAS slot packs its seqno and its 2-bit status into one atomic word
//!   (`KcasSlot::seqstat`), so the DCSS control expectation
//!   `(seqno, UNDECIDED)` can never match a recycled descriptor — this is
//!   what prevents a stalled helper from resurrecting a completed operation;
//! * a DCSS slot keeps a plain seqno (`DcssSlot::seq`).
//!
//! ## The reuse protocol
//!
//! The owner of a slot publishes a new operation in this order:
//!
//! 1. **Invalidate**: bump the seqno (store `seqstat = (seq+1, UNDECIDED)`
//!    resp. `seq = seq+1`).  From this point every helper of the *previous*
//!    operation fails its seqno validation and aborts; the previous
//!    operation is necessarily complete, because the owner only reuses a
//!    slot after its own help routine returned.
//! 2. **Write** the operation's fields (entries, path).  No thread can be
//!    reading them under the *new* seqno yet, because the new descriptor
//!    word has not been installed anywhere.
//! 3. **Publish** the word `(slot, seq+1)` by installing it into shared
//!    memory (KCAS phase 1 / the DCSS installation CAS).
//!
//! A helper must in turn:
//!
//! * validate `slot.seq == word.seq` *after* reading any field and *before*
//!   acting on it (in particular before dereferencing an address read from
//!   the slot) — on mismatch it abandons the help: the operation it meant to
//!   help is already decided and fully uninstalled;
//! * perform all its CASes with the seqno-carrying word itself, so a CAS
//!   prepared against a recycled descriptor can never succeed (the stale
//!   word never reappears in shared memory).
//!
//! ## Memory orderings
//!
//! Field arrays use release stores and acquire loads.  The KCAS seqno word
//! (`seqstat`) uses `SeqCst` throughout — it doubles as the DCSS control
//! word and the decide-CAS target, so it is on the algorithm's linearizing
//! path anyway.  The DCSS seqno (`seq`) is *stored* with `Release` (it is
//! bumped once per DCSS, and a full fence there is measurable) and loaded
//! with `SeqCst` by validators.  Release/acquire suffices for recycling
//! detection because the owner bumps the seqno *before* rewriting fields:
//! if a helper's acquire field load observes any value written for a newer
//! operation, that load synchronizes-with the release store, making the
//! (program-order earlier) seqno bump visible — so the helper's post-read
//! seqno validation is guaranteed to detect the recycling.  If every field
//! load returned old-operation values, the helper acts on a consistent
//! (merely stale) field set, which is harmless: its CASes carry the stale
//! seqno-bearing word, which was permanently removed from shared memory
//! before the slot could be recycled, so they fail by coherence.
//! Publication in the other direction (owner fields → helper) is ordered by
//! the installing CAS (a `SeqCst` RMW) that first makes the descriptor word
//! reachable.
//!
//! ## Capacity bounds
//!
//! Slots have fixed capacity ([`SLOT_ENTRY_CAP`] / [`SLOT_PATH_CAP`]).
//! Operations that do not fit (degenerate structures can produce paths of
//! thousands of visited nodes) transparently fall back to the legacy
//! heap-allocating path (`TAG_KCAS_BOXED`), which is also kept as the
//! benchmark baseline; see DESIGN.md §3.

use std::cell::Cell;
use std::sync::Mutex;

use crate::sync::{registration, AtomicU64, AtomicUsize, Ordering};
use crate::word::MAX_POOL_SLOTS;

/// Maximum number of `⟨addr, old, new⟩` entries a pooled KCAS descriptor can
/// hold.  This covers the paper's largest operation (an AVL double rotation
/// adds fewer than 20 addresses) plus the `vexec_strong` slow path, which
/// converts up to [`SLOT_PATH_CAP`] visited nodes into compare-only entries.
pub const SLOT_ENTRY_CAP: usize = 256;

/// Maximum number of visited-path entries a pooled KCAS descriptor can hold.
/// Balanced structures visit a few dozen nodes at most; operations with
/// longer paths fall back to the heap-allocating path.
pub const SLOT_PATH_CAP: usize = 192;

/// Number of KCAS descriptor slots each thread owns (used round-robin).
pub const KCAS_SLOTS_PER_THREAD: usize = 2;

/// Number of DCSS descriptor slots each thread owns (used round-robin).
pub const DCSS_SLOTS_PER_THREAD: usize = 2;

/// Number of low bits of [`KcasSlot::seqstat`] holding the operation status.
const STATUS_BITS: u32 = 2;

/// Pack a seqno and a status into a `seqstat` word.
#[inline]
pub(crate) fn pack_seqstat(seq: u64, status: u64) -> u64 {
    debug_assert!(status <= 0b11);
    (seq << STATUS_BITS) | status
}

/// The seqno half of a `seqstat` word.
#[inline]
pub(crate) fn seqstat_seq(seqstat: u64) -> u64 {
    seqstat >> STATUS_BITS
}

/// The status half of a `seqstat` word.
#[inline]
pub(crate) fn seqstat_status(seqstat: u64) -> u64 {
    seqstat & 0b11
}

/// A reusable KCAS / PathCAS descriptor slot.
///
/// All fields are atomics because helpers may read them concurrently with
/// the owner recycling the slot; the seqno protocol (module docs) makes such
/// races benign.  Within one seqno the fields other than `seqstat` are
/// written only by the owner, before the descriptor word is published.
pub(crate) struct KcasSlot {
    /// `(seqno << 2) | status`; the status moves `UNDECIDED →
    /// SUCCEEDED | FAILED` exactly once per seqno, via CAS.
    pub(crate) seqstat: AtomicU64,
    /// Number of live entries.
    pub(crate) len: AtomicUsize,
    /// Number of live path entries.
    pub(crate) path_len: AtomicUsize,
    /// Entry target addresses (`*const CasWord` as `usize`).
    pub(crate) addrs: [AtomicUsize; SLOT_ENTRY_CAP],
    /// Entry expected values (raw tagged representation).
    pub(crate) olds: [AtomicU64; SLOT_ENTRY_CAP],
    /// Entry new values (raw tagged representation).
    pub(crate) news: [AtomicU64; SLOT_ENTRY_CAP],
    /// Visited-node version-word addresses (`*const CasWord` as `usize`).
    pub(crate) ver_addrs: [AtomicUsize; SLOT_PATH_CAP],
    /// Observed version values (raw tagged representation).
    pub(crate) seens: [AtomicU64; SLOT_PATH_CAP],
}

impl KcasSlot {
    fn new_boxed() -> Box<Self> {
        Box::new(KcasSlot {
            seqstat: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            path_len: AtomicUsize::new(0),
            addrs: std::array::from_fn(|_| AtomicUsize::new(0)),
            olds: std::array::from_fn(|_| AtomicU64::new(0)),
            news: std::array::from_fn(|_| AtomicU64::new(0)),
            ver_addrs: std::array::from_fn(|_| AtomicUsize::new(0)),
            seens: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }
}

/// A reusable DCSS descriptor slot (same protocol as [`KcasSlot`], with a
/// bare seqno because a DCSS has no multi-step status — completion removes
/// the descriptor word from the target).
pub(crate) struct DcssSlot {
    /// Monotonically increasing sequence number; bumped before the fields
    /// are rewritten for a new operation.
    pub(crate) seq: AtomicU64,
    /// Control-word address (`*const AtomicU64` as `usize`).
    pub(crate) addr1: AtomicUsize,
    /// Expected control-word value.
    pub(crate) exp1: AtomicU64,
    /// Target-word address (`*const CasWord` as `usize`).
    pub(crate) addr2: AtomicUsize,
    /// Expected target value (raw tagged representation).
    pub(crate) old2: AtomicU64,
    /// New target value (raw tagged representation).
    pub(crate) new2: AtomicU64,
}

impl DcssSlot {
    fn new_boxed() -> Box<Self> {
        Box::new(DcssSlot {
            seq: AtomicU64::new(0),
            addr1: AtomicUsize::new(0),
            exp1: AtomicU64::new(0),
            addr2: AtomicUsize::new(0),
            old2: AtomicU64::new(0),
            new2: AtomicU64::new(0),
        })
    }
}

// The global slot tables. A slot index that has ever appeared in a published
// descriptor word maps to a non-null pointer forever (slots are allocated
// once and never freed; thread exit only returns the *index* to a free list
// so a later thread can adopt the existing slot, seqno intact).
static KCAS_TABLE: [registration::AtomicPtr<KcasSlot>; MAX_POOL_SLOTS] =
    [const { registration::AtomicPtr::new(std::ptr::null_mut()) }; MAX_POOL_SLOTS];
static DCSS_TABLE: [registration::AtomicPtr<DcssSlot>; MAX_POOL_SLOTS] =
    [const { registration::AtomicPtr::new(std::ptr::null_mut()) }; MAX_POOL_SLOTS];

static NEXT_KCAS_IDX: registration::AtomicUsize = registration::AtomicUsize::new(0);
static NEXT_DCSS_IDX: registration::AtomicUsize = registration::AtomicUsize::new(0);

// Indices of slots whose owning thread has exited, available for adoption.
// Only touched at thread birth/death, never on the operation hot path.
static KCAS_FREE: Mutex<Vec<usize>> = Mutex::new(Vec::new());
static DCSS_FREE: Mutex<Vec<usize>> = Mutex::new(Vec::new());

fn lock_ignoring_poison<T>(m: &Mutex<Vec<T>>) -> std::sync::MutexGuard<'_, Vec<T>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn acquire_kcas_slot() -> (usize, &'static KcasSlot) {
    // ORDERING: Relaxed — the dispenser only needs the RMW's atomicity for
    // index uniqueness; slot contents are published by the table's
    // Release store below.
    let idx = lock_ignoring_poison(&KCAS_FREE)
        .pop()
        .unwrap_or_else(|| NEXT_KCAS_IDX.fetch_add(1, Ordering::Relaxed));
    assert!(
        idx < MAX_POOL_SLOTS,
        "KCAS descriptor pool exhausted ({MAX_POOL_SLOTS} slots, {KCAS_SLOTS_PER_THREAD} per thread)"
    );
    let existing = KCAS_TABLE[idx].load(Ordering::Acquire);
    if existing.is_null() {
        let fresh: &'static KcasSlot = Box::leak(KcasSlot::new_boxed());
        KCAS_TABLE[idx].store(fresh as *const _ as *mut _, Ordering::Release);
        (idx, fresh)
    } else {
        // SAFETY: table entries, once set, point at leaked (never freed)
        // slots; the index was handed to exactly this thread.
        (idx, unsafe { &*existing })
    }
}

fn acquire_dcss_slot() -> (usize, &'static DcssSlot) {
    // ORDERING: Relaxed — as in `acquire_kcas_slot`: atomicity for
    // uniqueness; publication rides the table's Release store.
    let idx = lock_ignoring_poison(&DCSS_FREE)
        .pop()
        .unwrap_or_else(|| NEXT_DCSS_IDX.fetch_add(1, Ordering::Relaxed));
    assert!(
        idx < MAX_POOL_SLOTS,
        "DCSS descriptor pool exhausted ({MAX_POOL_SLOTS} slots, {DCSS_SLOTS_PER_THREAD} per thread)"
    );
    let existing = DCSS_TABLE[idx].load(Ordering::Acquire);
    if existing.is_null() {
        let fresh: &'static DcssSlot = Box::leak(DcssSlot::new_boxed());
        DCSS_TABLE[idx].store(fresh as *const _ as *mut _, Ordering::Release);
        (idx, fresh)
    } else {
        // SAFETY: as in `acquire_kcas_slot`.
        (idx, unsafe { &*existing })
    }
}

/// Resolve a KCAS slot index read from a published descriptor word.
///
/// The pointer is non-null for every index that has ever been published: the
/// owner registers the slot (with a release store) before the descriptor
/// word can first be installed, and slots are never freed.
pub(crate) fn kcas_slot(idx: usize) -> &'static KcasSlot {
    let ptr = KCAS_TABLE[idx & (MAX_POOL_SLOTS - 1)].load(Ordering::Acquire);
    assert!(!ptr.is_null(), "descriptor word names an unregistered KCAS slot");
    // SAFETY: non-null table entries point at leaked slots.
    unsafe { &*ptr }
}

/// Resolve a DCSS slot index read from a published descriptor word.
pub(crate) fn dcss_slot(idx: usize) -> &'static DcssSlot {
    let ptr = DCSS_TABLE[idx & (MAX_POOL_SLOTS - 1)].load(Ordering::Acquire);
    assert!(!ptr.is_null(), "descriptor word names an unregistered DCSS slot");
    // SAFETY: non-null table entries point at leaked slots.
    unsafe { &*ptr }
}

/// The calling thread's descriptor pool: a fixed set of KCAS and DCSS slots
/// used round-robin, registered on first use and returned to the free lists
/// when the thread exits.
struct ThreadPool {
    kcas_idx: [usize; KCAS_SLOTS_PER_THREAD],
    kcas: [&'static KcasSlot; KCAS_SLOTS_PER_THREAD],
    next_kcas: Cell<usize>,
    dcss_idx: [usize; DCSS_SLOTS_PER_THREAD],
    dcss: [&'static DcssSlot; DCSS_SLOTS_PER_THREAD],
    next_dcss: Cell<usize>,
}

impl ThreadPool {
    fn register() -> Self {
        let mut kcas_idx = [0usize; KCAS_SLOTS_PER_THREAD];
        let mut kcas: [Option<&'static KcasSlot>; KCAS_SLOTS_PER_THREAD] =
            [None; KCAS_SLOTS_PER_THREAD];
        for i in 0..KCAS_SLOTS_PER_THREAD {
            let (idx, slot) = acquire_kcas_slot();
            kcas_idx[i] = idx;
            kcas[i] = Some(slot);
        }
        let mut dcss_idx = [0usize; DCSS_SLOTS_PER_THREAD];
        let mut dcss: [Option<&'static DcssSlot>; DCSS_SLOTS_PER_THREAD] =
            [None; DCSS_SLOTS_PER_THREAD];
        for i in 0..DCSS_SLOTS_PER_THREAD {
            let (idx, slot) = acquire_dcss_slot();
            dcss_idx[i] = idx;
            dcss[i] = Some(slot);
        }
        ThreadPool {
            kcas_idx,
            kcas: kcas.map(|s| s.expect("slot acquired")),
            next_kcas: Cell::new(0),
            dcss_idx,
            dcss: dcss.map(|s| s.expect("slot acquired")),
            next_dcss: Cell::new(0),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Return the slot *indices*; the slots themselves (and their current
        // seqnos) stay in the table so stale helpers of this thread's last
        // operations still validate correctly against the adopting thread's
        // future seqnos.  Pushed in reverse so the LIFO pop hands an adopting
        // thread the indices in the same order this thread held them — which
        // keeps repeated spawn/exit cycles (the model checker re-runs its
        // closure thousands of times) on a stable slot assignment.
        lock_ignoring_poison(&KCAS_FREE).extend(self.kcas_idx.iter().rev());
        lock_ignoring_poison(&DCSS_FREE).extend(self.dcss_idx.iter().rev());
    }
}

thread_local! {
    static POOL: ThreadPool = ThreadPool::register();
}

/// Run `f` with the calling thread's next KCAS slot (round-robin).
pub(crate) fn with_kcas_slot<R>(f: impl FnOnce(usize, &'static KcasSlot) -> R) -> R {
    POOL.with(|p| {
        let i = p.next_kcas.get();
        p.next_kcas.set((i + 1) % KCAS_SLOTS_PER_THREAD);
        f(p.kcas_idx[i], p.kcas[i])
    })
}

/// Run `f` with the calling thread's next DCSS slot (round-robin).
pub(crate) fn with_dcss_slot<R>(f: impl FnOnce(usize, &'static DcssSlot) -> R) -> R {
    POOL.with(|p| {
        let i = p.next_dcss.get();
        p.next_dcss.set((i + 1) % DCSS_SLOTS_PER_THREAD);
        f(p.dcss_idx[i], p.dcss[i])
    })
}

/// A diagnostic snapshot of the calling thread's descriptor pool, for tests
/// and benchmarks (e.g. asserting that operations recycle slots instead of
/// allocating).
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Global table indices of this thread's KCAS slots.
    pub kcas_slots: Vec<usize>,
    /// Current sequence number of each KCAS slot (one publish = one bump).
    pub kcas_seqs: Vec<u64>,
    /// Global table indices of this thread's DCSS slots.
    pub dcss_slots: Vec<usize>,
    /// Current sequence number of each DCSS slot (one DCSS = one bump).
    pub dcss_seqs: Vec<u64>,
}

/// Snapshot the calling thread's descriptor pool (registering it if this
/// thread has not performed an operation yet).
pub fn local_pool_stats() -> PoolStats {
    POOL.with(|p| PoolStats {
        kcas_slots: p.kcas_idx.to_vec(),
        kcas_seqs: p.kcas.iter().map(|s| seqstat_seq(s.seqstat.load(Ordering::SeqCst))).collect(),
        dcss_slots: p.dcss_idx.to_vec(),
        dcss_seqs: p.dcss.iter().map(|s| s.seq.load(Ordering::SeqCst)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqstat_packing_roundtrip() {
        for seq in [0u64, 1, 7, 1 << 40] {
            for status in [0u64, 1, 2] {
                let ss = pack_seqstat(seq, status);
                assert_eq!(seqstat_seq(ss), seq);
                assert_eq!(seqstat_status(ss), status);
            }
        }
    }

    #[test]
    fn thread_pool_registers_distinct_slots() {
        let stats = local_pool_stats();
        assert_eq!(stats.kcas_slots.len(), KCAS_SLOTS_PER_THREAD);
        assert_eq!(stats.dcss_slots.len(), DCSS_SLOTS_PER_THREAD);
        let mut k = stats.kcas_slots.clone();
        k.dedup();
        assert_eq!(k.len(), KCAS_SLOTS_PER_THREAD, "KCAS slot indices must be distinct");
    }

    #[test]
    fn exited_threads_slots_are_adopted() {
        // The second thread starts after the first exited, so it adopts (at
        // least some of) the same table indices from the free list.  Other
        // unit tests run concurrently in this binary and may snatch the
        // returned indices between our two spawns, so accept success on any
        // of several attempts instead of demanding it on the first.
        for attempt in 0..20 {
            let first = std::thread::spawn(local_pool_stats).join().unwrap();
            let second = std::thread::spawn(local_pool_stats).join().unwrap();
            if second.kcas_slots.iter().any(|s| first.kcas_slots.contains(s)) {
                return;
            }
            let _ = attempt;
        }
        panic!("no slot adoption observed in 20 attempts — free list is not recycling indices");
    }
}
