//! The KCAS engine: `help`, path validation, `read` (the paper's `KCASRead`)
//! and the convenience multi-word CAS entry point.
//!
//! This is the Harris-Fraser-Pratt KCAS algorithm (§3.1) extended with the
//! two "red lines" of Algorithm 1: after all addresses have been "locked"
//! with DCSS, the visited path is validated (Algorithm 2) before the status
//! is decided.  A descriptor with an empty path behaves exactly like the
//! original HFP KCAS.

use crossbeam_epoch::Guard;

use crate::descriptor::{Descriptor, Entry, PathEntry, FAILED, SUCCEEDED, UNDECIDED};
use crate::dcss::{dcss, help_dcss};
use crate::word::{
    decode, encode, is_dcss_desc, is_kcas_desc, is_value, tag_kcas_ptr, untag_ptr, CasWord,
};

/// Read the application value of a word that may be modified by KCAS /
/// PathCAS operations (the paper's `KCASRead`).
///
/// If the word currently holds a descriptor pointer, the corresponding
/// operation is helped to completion and the read retries, so the returned
/// value is always a plain application value.
#[inline]
pub fn read(word: &CasWord, guard: &Guard) -> u64 {
    loop {
        let raw = word.load_raw(std::sync::atomic::Ordering::SeqCst);
        if is_value(raw) {
            return decode(raw);
        }
        if is_dcss_desc(raw) {
            help_dcss(raw, guard);
            continue;
        }
        debug_assert!(is_kcas_desc(raw));
        help_by_word(raw, guard);
    }
}

/// Read the raw (possibly descriptor-tagged) contents of a word without
/// helping.  Used by validation, which treats any descriptor other than its
/// own as a (possibly spurious) conflict.
#[inline]
pub(crate) fn read_raw(word: &CasWord) -> u64 {
    word.load_raw(std::sync::atomic::Ordering::SeqCst)
}

/// Help the KCAS / PathCAS operation whose tagged descriptor word was
/// observed in a shared word.
pub(crate) fn help_by_word(raw: u64, guard: &Guard) {
    debug_assert!(is_kcas_desc(raw));
    // SAFETY: the descriptor was observed in a shared word while `guard` was
    // pinned, so it is protected from reclamation until we unpin.
    let desc = unsafe { &*(untag_ptr(raw) as *const Descriptor) };
    help(desc, raw, guard);
}

/// Validate the visited path of a descriptor (Algorithm 2 of the paper).
///
/// Returns `true` only if every visited node still carries the version number
/// observed by `visit`, is not marked, and is not "locked" by a *different*
/// operation.  Nodes locked by *this* operation pass validation.
pub(crate) fn validate_descriptor(desc: &Descriptor, self_word: u64) -> bool {
    for p in desc.path.iter() {
        // SAFETY: version words live inside epoch-protected nodes and every
        // participant holds a guard.
        let current = read_raw(unsafe { &*p.ver_addr });
        if current == self_word {
            // "Locked" for our own PathCAS: the version cannot change under us.
            continue;
        }
        if !is_value(current) {
            // Locked for a different PathCAS (or a DCSS is in flight):
            // fail, possibly spuriously — permitted by the semantics (§3.2).
            return false;
        }
        if current != p.seen_raw {
            return false;
        }
        if decode(p.seen_raw) & 1 == 1 {
            // The node was already marked when it was visited.
            return false;
        }
    }
    true
}

/// The help routine (Algorithm 1 of the paper).  Called by the owner of the
/// operation and by any helper that encounters the descriptor.
///
/// Returns `true` if the operation succeeded.
pub(crate) fn help(desc: &Descriptor, self_word: u64, guard: &Guard) -> bool {
    // Phase 1: "lock" every address for this operation.
    if desc.status() == UNDECIDED {
        let mut new_status = SUCCEEDED;
        'entries: for e in desc.entries.iter() {
            loop {
                // SAFETY: entry addresses point at epoch-protected CasWords.
                let seen = unsafe {
                    dcss(&desc.status as *const _, UNDECIDED, e.addr, e.old_raw, self_word, guard)
                };
                if is_kcas_desc(seen) {
                    if seen == self_word {
                        // Another helper already locked this address for us.
                        break;
                    }
                    // Locked by a different operation: help it, then retry.
                    help_by_word(seen, guard);
                    continue;
                }
                if seen != e.old_raw {
                    // The address no longer holds the expected old value.
                    new_status = FAILED;
                    break 'entries;
                }
                break;
            }
        }
        // The two "red lines": validate the visited path before deciding.
        if new_status == SUCCEEDED && !validate_descriptor(desc, self_word) {
            new_status = FAILED;
        }
        let _ = desc.status.compare_exchange(
            UNDECIDED,
            new_status,
            std::sync::atomic::Ordering::SeqCst,
            std::sync::atomic::Ordering::SeqCst,
        );
    }

    // Phase 2: "unlock" every address according to the decided status.
    let success = desc.status() == SUCCEEDED;
    for e in desc.entries.iter() {
        let final_raw = if success { e.new_raw } else { e.old_raw };
        // SAFETY: as above.
        let word = unsafe { &*e.addr };
        let _ = word.cas_raw(self_word, final_raw);
    }
    success
}

/// An owned argument triple for [`kcas`] and the PathCAS builder: change
/// `addr` from the application value `old` to `new`.
#[derive(Clone, Copy)]
pub struct KcasArg<'a> {
    /// The word to change.
    pub addr: &'a CasWord,
    /// Expected current application value.
    pub old: u64,
    /// New application value.
    pub new: u64,
}

/// An owned visited-node record for PathCAS: the version word of a node and
/// the (decoded) version value observed when it was visited.
#[derive(Clone, Copy)]
pub struct VisitArg<'a> {
    /// The node's version word.
    pub ver_addr: &'a CasWord,
    /// Decoded version value returned by `visit`.
    pub seen: u64,
}

/// Build, publish and execute a descriptor from the given entries and path.
///
/// Entries are sorted by address (required for the lock-freedom argument of
/// Appendix C) and exact duplicates are removed.  Returns `true` on success.
///
/// The caller must hold `guard` for the whole duration of the enclosing data
/// structure operation (so that every address passed in refers to live
/// memory) — this is the same contract as the paper's C++ implementation,
/// where operations run under a DEBRA guard.
pub fn execute(entries: &[KcasArg<'_>], path: &[VisitArg<'_>], guard: &Guard) -> bool {
    let mut raw_entries: Vec<Entry> = entries
        .iter()
        .map(|a| Entry {
            addr: a.addr as *const CasWord,
            old_raw: encode(a.old),
            new_raw: encode(a.new),
        })
        .collect();
    raw_entries.sort_by_key(|e| e.addr as usize);
    raw_entries.dedup_by(|a, b| {
        a.addr == b.addr && a.old_raw == b.old_raw && a.new_raw == b.new_raw
    });
    debug_assert!(
        raw_entries.windows(2).all(|w| w[0].addr != w[1].addr),
        "the same address was added twice with conflicting values"
    );
    let raw_path: Vec<PathEntry> = path
        .iter()
        .map(|v| PathEntry { ver_addr: v.ver_addr as *const CasWord, seen_raw: encode(v.seen) })
        .collect();

    let desc = crossbeam_epoch::Owned::new(Descriptor::new(
        raw_entries.into_boxed_slice(),
        raw_path.into_boxed_slice(),
    ))
    .into_shared(guard);
    let self_word = tag_kcas_ptr(desc.as_raw() as usize);
    // SAFETY: we just created the descriptor; it is valid.
    let result = help(unsafe { desc.deref() }, self_word, guard);
    // SAFETY: after our own `help` returns, phase 2 has removed `self_word`
    // from every entry address and the decided status prevents reinstallation,
    // so no *new* reference to the descriptor can be created. Helpers that
    // already hold it are pinned. Deferred destruction is therefore safe.
    unsafe { guard.defer_destroy(desc) };
    result
}

/// A plain multi-word compare-and-swap (no path validation), i.e. the HFP
/// KCAS operation: atomically, if every `addr_i` holds `old_i`, store `new_i`
/// into every `addr_i` and return `true`; otherwise return `false`.
#[inline]
pub fn kcas(entries: &[KcasArg<'_>], guard: &Guard) -> bool {
    execute(entries, &[], guard)
}

/// Validate a path without publishing anything: re-read every version word
/// (helping any in-flight operation it encounters) and check it still equals
/// the observed version and is unmarked.
///
/// Unlike the internal descriptor validation this never fails spuriously: encountering a
/// descriptor helps it and then compares the resolved value.  It is the
/// building block of validated read-only operations (e.g. `contains`).
pub fn validate_path(path: &[VisitArg<'_>], guard: &Guard) -> bool {
    for v in path {
        let current = read(v.ver_addr, guard);
        if current != v.seen || v.seen & 1 == 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn words(vals: &[u64]) -> Vec<CasWord> {
        vals.iter().map(|&v| CasWord::new(v)).collect()
    }

    #[test]
    fn kcas_succeeds_on_matching_olds() {
        let ws = words(&[1, 2, 3]);
        let guard = crossbeam_epoch::pin();
        let args: Vec<KcasArg> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| KcasArg { addr: w, old: (i + 1) as u64, new: (i + 10) as u64 })
            .collect();
        assert!(kcas(&args, &guard));
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(read(w, &guard), (i + 10) as u64);
        }
    }

    #[test]
    fn kcas_fails_and_rolls_back_on_mismatch() {
        let ws = words(&[1, 2, 3]);
        let guard = crossbeam_epoch::pin();
        let args = [
            KcasArg { addr: &ws[0], old: 1, new: 10 },
            KcasArg { addr: &ws[1], old: 99, new: 20 }, // wrong old
            KcasArg { addr: &ws[2], old: 3, new: 30 },
        ];
        assert!(!kcas(&args, &guard));
        assert_eq!(read(&ws[0], &guard), 1);
        assert_eq!(read(&ws[1], &guard), 2);
        assert_eq!(read(&ws[2], &guard), 3);
    }

    #[test]
    fn empty_kcas_succeeds() {
        let guard = crossbeam_epoch::pin();
        assert!(kcas(&[], &guard));
    }

    #[test]
    fn path_validation_rejects_changed_version() {
        let ver = CasWord::new(4);
        let target = CasWord::new(0);
        let guard = crossbeam_epoch::pin();
        // Change the version after it was "visited".
        let visited = VisitArg { ver_addr: &ver, seen: 4 };
        ver.store(6);
        let args = [KcasArg { addr: &target, old: 0, new: 1 }];
        assert!(!execute(&args, &[visited], &guard));
        assert_eq!(read(&target, &guard), 0);
    }

    #[test]
    fn path_validation_rejects_marked_version() {
        let ver = CasWord::new(5); // odd = marked
        let target = CasWord::new(0);
        let guard = crossbeam_epoch::pin();
        let visited = VisitArg { ver_addr: &ver, seen: 5 };
        let args = [KcasArg { addr: &target, old: 0, new: 1 }];
        assert!(!execute(&args, &[visited], &guard));
    }

    #[test]
    fn path_validation_accepts_unchanged_version() {
        let ver = CasWord::new(4);
        let target = CasWord::new(0);
        let guard = crossbeam_epoch::pin();
        let visited = VisitArg { ver_addr: &ver, seen: 4 };
        let args = [KcasArg { addr: &target, old: 0, new: 1 }];
        assert!(execute(&args, &[visited], &guard));
        assert_eq!(read(&target, &guard), 1);
    }

    #[test]
    fn validate_path_standalone() {
        let v1 = CasWord::new(2);
        let v2 = CasWord::new(8);
        let guard = crossbeam_epoch::pin();
        let path = [VisitArg { ver_addr: &v1, seen: 2 }, VisitArg { ver_addr: &v2, seen: 8 }];
        assert!(validate_path(&path, &guard));
        v2.store(10);
        assert!(!validate_path(&path, &guard));
    }

    #[test]
    fn duplicate_identical_entries_are_deduped() {
        let w = CasWord::new(5);
        let guard = crossbeam_epoch::pin();
        let args = [KcasArg { addr: &w, old: 5, new: 6 }, KcasArg { addr: &w, old: 5, new: 6 }];
        assert!(kcas(&args, &guard));
        assert_eq!(read(&w, &guard), 6);
    }

    #[test]
    fn concurrent_kcas_multi_counter() {
        // N shared counters; each thread repeatedly KCASes *all* of them from
        // their current values to current+1. The sum must equal threads *
        // iterations * n_counters and all counters must end equal.
        const N: usize = 4;
        const THREADS: usize = 4;
        const OPS: usize = 1500;
        let counters: Arc<Vec<CasWord>> = Arc::new((0..N).map(|_| CasWord::new(0)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    for _ in 0..OPS {
                        loop {
                            let guard = crossbeam_epoch::pin();
                            let olds: Vec<u64> =
                                counters.iter().map(|c| read(c, &guard)).collect();
                            let args: Vec<KcasArg> = counters
                                .iter()
                                .zip(&olds)
                                .map(|(c, &o)| KcasArg { addr: c, old: o, new: o + 1 })
                                .collect();
                            if kcas(&args, &guard) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let guard = crossbeam_epoch::pin();
        let first = read(&counters[0], &guard);
        assert_eq!(first, (THREADS * OPS) as u64);
        for c in counters.iter() {
            assert_eq!(read(c, &guard), first);
        }
    }

    #[test]
    fn concurrent_kcas_transfer_preserves_sum() {
        // Bank-transfer style test: threads move amounts between random pairs
        // of accounts with 2-word KCAS; the total must be preserved.
        const ACCOUNTS: usize = 8;
        const THREADS: usize = 4;
        const OPS: usize = 2000;
        let accounts: Arc<Vec<CasWord>> =
            Arc::new((0..ACCOUNTS).map(|_| CasWord::new(1000)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let mut state = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    let mut next = || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..OPS {
                        let a = (next() % ACCOUNTS as u64) as usize;
                        let mut b = (next() % ACCOUNTS as u64) as usize;
                        if a == b {
                            b = (b + 1) % ACCOUNTS;
                        }
                        loop {
                            let guard = crossbeam_epoch::pin();
                            let va = read(&accounts[a], &guard);
                            let vb = read(&accounts[b], &guard);
                            if va == 0 {
                                break;
                            }
                            let args = [
                                KcasArg { addr: &accounts[a], old: va, new: va - 1 },
                                KcasArg { addr: &accounts[b], old: vb, new: vb + 1 },
                            ];
                            if kcas(&args, &guard) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let guard = crossbeam_epoch::pin();
        let total: u64 = accounts.iter().map(|a| read(a, &guard)).sum();
        assert_eq!(total, (ACCOUNTS as u64) * 1000);
    }
}
