//! The KCAS engine: `help`, path validation, `read` (the paper's `KCASRead`)
//! and the multi-word CAS entry points.
//!
//! This is the Harris-Fraser-Pratt KCAS algorithm (§3.1) extended with the
//! two "red lines" of Algorithm 1: after all addresses have been "locked"
//! with DCSS, the visited path is validated (Algorithm 2) before the status
//! is decided.  A descriptor with an empty path behaves exactly like the
//! original HFP KCAS.
//!
//! Operations publish through reusable per-thread descriptor slots
//! ([`crate::pool`]) — the Arbel-Raviv & Brown reuse transformation the
//! paper applies — so the success path performs **zero heap allocations**.
//! Two situations use the legacy heap-allocated descriptor instead: an
//! operation too large for a slot (capacity [`SLOT_ENTRY_CAP`] /
//! [`SLOT_PATH_CAP`]), and explicit calls to [`execute_alloc`], the
//! benchmark baseline.

use std::mem::MaybeUninit;
use crate::sync::Ordering;

use crossbeam_epoch::Guard;

use crate::descriptor::{Descriptor, Entry, PathEntry, FAILED, SUCCEEDED, UNDECIDED};
use crate::dcss::{dcss, help_dcss};
use crate::pool::{
    self, pack_seqstat, seqstat_seq, seqstat_status, KcasSlot, SLOT_ENTRY_CAP, SLOT_PATH_CAP,
};
use crate::word::{
    decode, encode, is_any_kcas_desc, is_dcss_desc, is_kcas_boxed, is_value, pack_pooled,
    pooled_seq, pooled_slot, tag_boxed_kcas_ptr, untag_ptr, CasWord, MAX_SEQ, TAG_KCAS,
};

/// Read the application value of a word that may be modified by KCAS /
/// PathCAS operations (the paper's `KCASRead`).
///
/// If the word currently holds a descriptor reference, the corresponding
/// operation is helped to completion and the read retries, so the returned
/// value is always a plain application value.
#[inline]
pub fn read(word: &CasWord, guard: &Guard) -> u64 {
    loop {
        let raw = word.load_raw(Ordering::SeqCst);
        if is_value(raw) {
            return decode(raw);
        }
        if is_dcss_desc(raw) {
            help_dcss(raw, guard);
            continue;
        }
        debug_assert!(is_any_kcas_desc(raw));
        help_by_word(raw, guard);
    }
}

/// Read the raw (possibly descriptor-tagged) contents of a word without
/// helping.  Used by validation, which treats any descriptor other than its
/// own as a (possibly spurious) conflict.
#[inline]
pub(crate) fn read_raw(word: &CasWord) -> u64 {
    word.load_raw(Ordering::SeqCst)
}

/// Help the KCAS / PathCAS operation whose descriptor word was observed in a
/// shared word — pooled or boxed, according to the tag.
pub(crate) fn help_by_word(raw: u64, guard: &Guard) {
    debug_assert!(is_any_kcas_desc(raw));
    crate::metrics::help();
    if is_kcas_boxed(raw) {
        // SAFETY: the boxed descriptor was observed in a shared word while
        // `guard` was pinned, so it is protected from reclamation until we
        // unpin.
        let desc = unsafe { &*(untag_ptr(raw) as *const Descriptor) };
        help_boxed(desc, raw, guard);
    } else {
        let slot = pool::kcas_slot(pooled_slot(raw));
        // A `None` return means the slot was recycled: the operation `raw`
        // named is complete and uninstalled, so the caller's re-read will
        // observe a different value.
        let _ = help_pooled(slot, pooled_seq(raw), raw, guard);
    }
}

// ---------------------------------------------------------------------------
// Pooled (descriptor-reuse) path
// ---------------------------------------------------------------------------

/// Help the pooled operation published as `self_word` (= `(slot, seq)`).
/// Called by the owner and by any helper that encounters the word.
///
/// Returns `None` if the slot's seqno no longer matches `seq` — the
/// operation is already decided, fully uninstalled, and its slot recycled —
/// and `Some(success)` otherwise.  The owner always receives `Some`, because
/// only the owning thread recycles a slot.
///
/// Every field read from the slot is validated by re-reading the seqno
/// *before the value is acted upon* (dereferenced or handed to a CAS); see
/// the protocol in [`crate::pool`].  All CASes carry `self_word`, whose
/// embedded seqno guarantees stale attempts can never succeed.
pub(crate) fn help_pooled(
    slot: &'static KcasSlot,
    seq: u64,
    self_word: u64,
    guard: &Guard,
) -> Option<bool> {
    let undecided = pack_seqstat(seq, UNDECIDED);
    let ss = slot.seqstat.load(Ordering::SeqCst);
    if seqstat_seq(ss) != seq {
        return None;
    }
    if seqstat_status(ss) == UNDECIDED {
        // Phase 1: "lock" every address for this operation.
        let n = slot.len.load(Ordering::Acquire);
        let path_len = slot.path_len.load(Ordering::Acquire);
        if seqstat_seq(slot.seqstat.load(Ordering::SeqCst)) != seq {
            return None;
        }
        let mut new_status = SUCCEEDED;
        'entries: for i in 0..n {
            loop {
                let addr = slot.addrs[i].load(Ordering::Acquire) as *const CasWord;
                let old_raw = slot.olds[i].load(Ordering::Acquire);
                if seqstat_seq(slot.seqstat.load(Ordering::SeqCst)) != seq {
                    return None;
                }
                // SAFETY: the seqno re-check above proves `addr`/`old_raw`
                // belong to this operation, and entry addresses point at
                // epoch-protected CasWords (crate-level contract).  The
                // control word is this slot's seqstat — static memory.
                let seen = unsafe {
                    dcss(&slot.seqstat as *const _, undecided, addr, old_raw, self_word, guard)
                };
                if is_any_kcas_desc(seen) {
                    if seen == self_word {
                        // Another helper already locked this address for us.
                        break;
                    }
                    // Locked by a different operation: help it, then retry.
                    crate::metrics::retry();
                    help_by_word(seen, guard);
                    continue;
                }
                if seen != old_raw {
                    // The address no longer holds the expected old value.
                    new_status = FAILED;
                    break 'entries;
                }
                break;
            }
        }
        // The two "red lines": validate the visited path before deciding.
        if new_status == SUCCEEDED {
            match validate_pooled(slot, seq, path_len, self_word) {
                None => return None,
                Some(ok) => {
                    if !ok {
                        new_status = FAILED;
                    }
                }
            }
        }
        // The expected value embeds the seqno, so this can never decide a
        // recycled descriptor's newer operation.
        let _ = slot.seqstat.compare_exchange(
            undecided,
            pack_seqstat(seq, new_status),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    // Phase 2: "unlock" every address according to the decided status.
    let ss = slot.seqstat.load(Ordering::SeqCst);
    if seqstat_seq(ss) != seq {
        return None;
    }
    let success = seqstat_status(ss) == SUCCEEDED;
    let n = slot.len.load(Ordering::Acquire);
    if seqstat_seq(slot.seqstat.load(Ordering::SeqCst)) != seq {
        return None;
    }
    for i in 0..n {
        let addr = slot.addrs[i].load(Ordering::Acquire) as *const CasWord;
        let final_raw = if success {
            slot.news[i].load(Ordering::Acquire)
        } else {
            slot.olds[i].load(Ordering::Acquire)
        };
        if seqstat_seq(slot.seqstat.load(Ordering::SeqCst)) != seq {
            // Recycled mid-loop: the owner finished phase 2 before reusing
            // the slot, so every remaining unlock already happened.
            return None;
        }
        // SAFETY: seqno re-validated after the field reads (entry addresses
        // are epoch-protected CasWords per the crate contract).
        let word = unsafe { &*addr };
        let _ = word.cas_raw(self_word, final_raw);
    }
    Some(success)
}

/// Validate the visited path of a pooled descriptor (Algorithm 2).
///
/// Returns `Some(true)` only if every visited node still carries the version
/// observed by `visit`, is not marked, and is not "locked" by a *different*
/// operation; `Some(false)` on a validation failure; `None` if the slot was
/// recycled (the operation is already decided).
fn validate_pooled(slot: &'static KcasSlot, seq: u64, path_len: usize, self_word: u64) -> Option<bool> {
    for i in 0..path_len {
        let ver_addr = slot.ver_addrs[i].load(Ordering::Acquire) as *const CasWord;
        let seen_raw = slot.seens[i].load(Ordering::Acquire);
        if seqstat_seq(slot.seqstat.load(Ordering::SeqCst)) != seq {
            return None;
        }
        // SAFETY: seqno re-validated after the field reads; version words
        // live inside epoch-protected nodes and every participant holds a
        // guard.
        let current = read_raw(unsafe { &*ver_addr });
        if current == self_word {
            // "Locked" for our own PathCAS: the version cannot change under us.
            continue;
        }
        if !is_value(current) {
            // Locked for a different PathCAS (or a DCSS is in flight):
            // fail, possibly spuriously — permitted by the semantics (§3.2).
            return Some(false);
        }
        if current != seen_raw {
            return Some(false);
        }
        if decode(seen_raw) & 1 == 1 {
            // The node was already marked when it was visited.
            return Some(false);
        }
    }
    Some(true)
}

/// Publish `entries`/`path` through the calling thread's next pooled slot
/// and run the operation to completion.  `entries` must already be sorted by
/// address and deduplicated.
fn publish_pooled(entries: &[RawEntry], path: &[RawVisit], guard: &Guard) -> bool {
    debug_assert!(entries.len() <= SLOT_ENTRY_CAP && path.len() <= SLOT_PATH_CAP);
    pool::with_kcas_slot(|idx, slot| {
        let seq = seqstat_seq(slot.seqstat.load(Ordering::SeqCst)) + 1;
        debug_assert!(seq <= MAX_SEQ, "KCAS slot seqno overflow");
        // Invalidate stalled helpers of the slot's previous operation
        // *before* overwriting its fields (pool module docs, step 1).
        slot.seqstat.store(pack_seqstat(seq, UNDECIDED), Ordering::SeqCst);
        slot.len.store(entries.len(), Ordering::Release);
        for (i, e) in entries.iter().enumerate() {
            slot.addrs[i].store(e.addr as usize, Ordering::Release);
            slot.olds[i].store(encode(e.old), Ordering::Release);
            slot.news[i].store(encode(e.new), Ordering::Release);
        }
        slot.path_len.store(path.len(), Ordering::Release);
        for (i, v) in path.iter().enumerate() {
            slot.ver_addrs[i].store(v.ver_addr as usize, Ordering::Release);
            slot.seens[i].store(encode(v.seen), Ordering::Release);
        }
        let self_word = pack_pooled(TAG_KCAS, idx, seq);
        help_pooled(slot, seq, self_word, guard)
            .expect("only the owning thread recycles a slot, and it is running this operation")
    })
}

// ---------------------------------------------------------------------------
// Boxed (legacy / fallback) path
// ---------------------------------------------------------------------------

/// Validate the visited path of a boxed descriptor (Algorithm 2).
fn validate_boxed(desc: &Descriptor, self_word: u64) -> bool {
    for p in desc.path.iter() {
        // SAFETY: version words live inside epoch-protected nodes and every
        // participant holds a guard.
        let current = read_raw(unsafe { &*p.ver_addr });
        if current == self_word {
            continue;
        }
        if !is_value(current) {
            return false;
        }
        if current != p.seen_raw {
            return false;
        }
        if decode(p.seen_raw) & 1 == 1 {
            return false;
        }
    }
    true
}

/// The help routine for boxed descriptors (Algorithm 1, original form: the
/// descriptor's slices are immutable after publication, so no seqno
/// validation is needed — only epoch protection).
pub(crate) fn help_boxed(desc: &Descriptor, self_word: u64, guard: &Guard) -> bool {
    if desc.status() == UNDECIDED {
        let mut new_status = SUCCEEDED;
        'entries: for e in desc.entries.iter() {
            loop {
                // SAFETY: entry addresses point at epoch-protected CasWords;
                // the control word is the descriptor's own status field.
                let seen = unsafe {
                    dcss(&desc.status as *const _, UNDECIDED, e.addr, e.old_raw, self_word, guard)
                };
                if is_any_kcas_desc(seen) {
                    if seen == self_word {
                        break;
                    }
                    crate::metrics::retry();
                    help_by_word(seen, guard);
                    continue;
                }
                if seen != e.old_raw {
                    new_status = FAILED;
                    break 'entries;
                }
                break;
            }
        }
        if new_status == SUCCEEDED && !validate_boxed(desc, self_word) {
            new_status = FAILED;
        }
        let _ = desc.status.compare_exchange(
            UNDECIDED,
            new_status,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    let success = desc.status() == SUCCEEDED;
    for e in desc.entries.iter() {
        let final_raw = if success { e.new_raw } else { e.old_raw };
        // SAFETY: as above.
        let word = unsafe { &*e.addr };
        let _ = word.cas_raw(self_word, final_raw);
    }
    success
}

/// Publish `entries`/`path` through a fresh heap-allocated descriptor,
/// retired through the epoch collector after the owner's help returns.
/// `entries` must already be sorted by address and deduplicated.
fn publish_boxed(entries: &[RawEntry], path: &[RawVisit], guard: &Guard) -> bool {
    let raw_entries: Vec<Entry> = entries
        .iter()
        .map(|e| Entry { addr: e.addr, old_raw: encode(e.old), new_raw: encode(e.new) })
        .collect();
    let raw_path: Vec<PathEntry> = path
        .iter()
        .map(|v| PathEntry { ver_addr: v.ver_addr, seen_raw: encode(v.seen) })
        .collect();
    let desc = crossbeam_epoch::Owned::new(Descriptor::new(
        raw_entries.into_boxed_slice(),
        raw_path.into_boxed_slice(),
    ))
    .into_shared(guard);
    let self_word = tag_boxed_kcas_ptr(desc.as_raw() as usize);
    // SAFETY: we just created the descriptor; it is valid.
    let result = help_boxed(unsafe { desc.deref() }, self_word, guard);
    // SAFETY: after our own `help_boxed` returns, phase 2 has removed
    // `self_word` from every entry address and the decided status prevents
    // reinstallation, so no *new* reference to the descriptor can be
    // created. Helpers that already hold it are pinned. Deferred destruction
    // is therefore safe.
    unsafe { guard.defer_destroy(desc) };
    result
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// An argument triple for [`kcas`] and the PathCAS builder: change `addr`
/// from the application value `old` to `new`.
#[derive(Clone, Copy)]
pub struct KcasArg<'a> {
    /// The word to change.
    pub addr: &'a CasWord,
    /// Expected current application value.
    pub old: u64,
    /// New application value.
    pub new: u64,
}

/// A visited-node record for PathCAS: the version word of a node and the
/// (decoded) version value observed when it was visited.
#[derive(Clone, Copy)]
pub struct VisitArg<'a> {
    /// The node's version word.
    pub ver_addr: &'a CasWord,
    /// Decoded version value returned by `visit`.
    pub seen: u64,
}

/// The raw-pointer form of [`KcasArg`], for callers (like `pathcas`'s
/// reusable builder) that accumulate arguments in long-lived scratch buffers
/// where a borrow-based type cannot express the lifetimes.  Values are
/// decoded application values, exactly as in [`KcasArg`].
#[derive(Clone, Copy, Debug)]
pub struct RawEntry {
    /// The word to change.
    pub addr: *const CasWord,
    /// Expected current application value.
    pub old: u64,
    /// New application value.
    pub new: u64,
}

/// The raw-pointer form of [`VisitArg`]; see [`RawEntry`].
#[derive(Clone, Copy, Debug)]
pub struct RawVisit {
    /// The node's version word.
    pub ver_addr: *const CasWord,
    /// Decoded version value returned by `visit`.
    pub seen: u64,
}

/// Sort `entries` by address and drop duplicate addresses in place,
/// returning the deduplicated length.  Sorting is required for the
/// lock-freedom argument of Appendix C; adding the same address twice with
/// conflicting values is undefined behaviour per §3.2 (asserted in debug
/// builds, first entry wins in release builds).
fn sort_dedup(entries: &mut [RawEntry]) -> usize {
    entries.sort_unstable_by_key(|e| e.addr as usize);
    let mut kept = 0;
    for i in 0..entries.len() {
        if kept > 0 && entries[i].addr == entries[kept - 1].addr {
            debug_assert!(
                entries[i].old == entries[kept - 1].old
                    && entries[i].new == entries[kept - 1].new,
                "the same address was added twice with conflicting values"
            );
            continue;
        }
        entries[kept] = entries[i];
        kept += 1;
    }
    kept
}

/// Copy up to `CAP` items produced by `fill` into an uninitialized stack
/// buffer and hand the initialized prefix to `then`.
#[inline]
fn with_stack_entries<R>(
    count: usize,
    fill: impl Fn(usize) -> RawEntry,
    then: impl FnOnce(&mut [RawEntry]) -> R,
) -> R {
    debug_assert!(count <= SLOT_ENTRY_CAP);
    let mut buf = [const { MaybeUninit::<RawEntry>::uninit() }; SLOT_ENTRY_CAP];
    for (i, item) in buf.iter_mut().enumerate().take(count) {
        item.write(fill(i));
    }
    // SAFETY: the first `count` elements were just initialized.
    let init = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<RawEntry>(), count) };
    then(init)
}

/// Build, publish and execute an operation from the given entries and path.
///
/// Entries are sorted by address (required for the lock-freedom argument of
/// Appendix C) and exact duplicates are removed.  Returns `true` on success.
///
/// Operations that fit a pooled slot ([`SLOT_ENTRY_CAP`] entries,
/// [`SLOT_PATH_CAP`] path pairs — every operation the paper's structures
/// issue does) are published through the calling thread's reusable
/// descriptor pool and perform **no heap allocation**; larger operations
/// fall back to a heap-allocated descriptor.
///
/// The caller must hold `guard` for the whole duration of the enclosing data
/// structure operation (so that every address passed in refers to live
/// memory) — this is the same contract as the paper's C++ implementation,
/// where operations run under a DEBRA guard.
pub fn execute(entries: &[KcasArg<'_>], path: &[VisitArg<'_>], guard: &Guard) -> bool {
    crate::metrics::metrics().ops.inc();
    if entries.len() <= SLOT_ENTRY_CAP && path.len() <= SLOT_PATH_CAP {
        with_stack_entries(
            entries.len(),
            |i| RawEntry { addr: entries[i].addr, old: entries[i].old, new: entries[i].new },
            |buf| {
                let n = sort_dedup(buf);
                let mut path_buf = [const { MaybeUninit::<RawVisit>::uninit() }; SLOT_PATH_CAP];
                for (i, v) in path.iter().enumerate() {
                    path_buf[i].write(RawVisit { ver_addr: v.ver_addr, seen: v.seen });
                }
                // SAFETY: the first `path.len()` elements were just initialized.
                let path_init = unsafe {
                    std::slice::from_raw_parts(path_buf.as_ptr().cast::<RawVisit>(), path.len())
                };
                publish_pooled(&buf[..n], path_init, guard)
            },
        )
    } else {
        crate::metrics::metrics().boxed_fallbacks.inc();
        let mut raw: Vec<RawEntry> = entries
            .iter()
            .map(|a| RawEntry { addr: a.addr, old: a.old, new: a.new })
            .collect();
        let n = sort_dedup(&mut raw);
        let raw_path: Vec<RawVisit> =
            path.iter().map(|v| RawVisit { ver_addr: v.ver_addr, seen: v.seen }).collect();
        publish_boxed(&raw[..n], &raw_path, guard)
    }
}

/// [`execute`] over pre-accumulated raw argument buffers — the zero-copy
/// entry point used by `pathcas`'s reusable per-thread builder.
///
/// Semantics are identical to [`execute`] (sorting, deduplication, pooled
/// fast path with boxed fallback).
///
/// # Safety
/// Every `addr` in `entries` and every `ver_addr` in `path` must point to a
/// live [`CasWord`] and remain valid for the duration of the call — i.e. the
/// words must be protected by the epoch `guard` the caller holds (or be
/// owned by the caller), exactly as if they had been passed by reference
/// through [`KcasArg`] / [`VisitArg`].
pub unsafe fn execute_raw(entries: &[RawEntry], path: &[RawVisit], guard: &Guard) -> bool {
    crate::metrics::metrics().ops.inc();
    if entries.len() <= SLOT_ENTRY_CAP && path.len() <= SLOT_PATH_CAP {
        with_stack_entries(
            entries.len(),
            |i| entries[i],
            |buf| {
                let n = sort_dedup(buf);
                publish_pooled(&buf[..n], path, guard)
            },
        )
    } else {
        crate::metrics::metrics().boxed_fallbacks.inc();
        let mut raw = entries.to_vec();
        let n = sort_dedup(&mut raw);
        publish_boxed(&raw[..n], path, guard)
    }
}

/// [`execute`] through the legacy allocate-and-epoch-retire descriptor path,
/// regardless of operation size.
///
/// This is **not** the hot path: it exists so the descriptor-reuse speedup
/// can be measured against the old scheme on identical workloads (the
/// `bench_descriptor_reuse` harness binary and DESIGN.md §3), and as the
/// code path oversized operations fall back to.  Correctness is identical
/// to [`execute`], and both kinds of operation interoperate freely on the
/// same words.
pub fn execute_alloc(entries: &[KcasArg<'_>], path: &[VisitArg<'_>], guard: &Guard) -> bool {
    crate::metrics::metrics().ops.inc();
    let mut raw: Vec<RawEntry> =
        entries.iter().map(|a| RawEntry { addr: a.addr, old: a.old, new: a.new }).collect();
    let n = sort_dedup(&mut raw);
    let raw_path: Vec<RawVisit> =
        path.iter().map(|v| RawVisit { ver_addr: v.ver_addr, seen: v.seen }).collect();
    publish_boxed(&raw[..n], &raw_path, guard)
}

/// A plain multi-word compare-and-swap (no path validation), i.e. the HFP
/// KCAS operation: atomically, if every `addr_i` holds `old_i`, store `new_i`
/// into every `addr_i` and return `true`; otherwise return `false`.
#[inline]
pub fn kcas(entries: &[KcasArg<'_>], guard: &Guard) -> bool {
    execute(entries, &[], guard)
}

/// Validate a path without publishing anything: re-read every version word
/// (helping any in-flight operation it encounters) and check it still equals
/// the observed version and is unmarked.
///
/// Unlike the internal descriptor validation this never fails spuriously: encountering a
/// descriptor helps it and then compares the resolved value.  It is the
/// building block of validated read-only operations (e.g. `contains`).
pub fn validate_path(path: &[VisitArg<'_>], guard: &Guard) -> bool {
    path.iter().all(|v| {
        let current = read(v.ver_addr, guard);
        current == v.seen && v.seen & 1 == 0
    })
}

/// [`validate_path`] over a pre-accumulated raw buffer; see [`execute_raw`].
///
/// # Safety
/// Every `ver_addr` in `path` must point to a live [`CasWord`] protected by
/// the epoch `guard` the caller holds (or owned by the caller).
pub unsafe fn validate_path_raw(path: &[RawVisit], guard: &Guard) -> bool {
    path.iter().all(|v| {
        // SAFETY: per the function contract.
        let current = read(unsafe { &*v.ver_addr }, guard);
        current == v.seen && v.seen & 1 == 0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn words(vals: &[u64]) -> Vec<CasWord> {
        vals.iter().map(|&v| CasWord::new(v)).collect()
    }

    #[test]
    fn kcas_succeeds_on_matching_olds() {
        let ws = words(&[1, 2, 3]);
        let guard = crossbeam_epoch::pin();
        let args: Vec<KcasArg> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| KcasArg { addr: w, old: (i + 1) as u64, new: (i + 10) as u64 })
            .collect();
        assert!(kcas(&args, &guard));
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(read(w, &guard), (i + 10) as u64);
        }
    }

    #[test]
    fn kcas_fails_and_rolls_back_on_mismatch() {
        let ws = words(&[1, 2, 3]);
        let guard = crossbeam_epoch::pin();
        let args = [
            KcasArg { addr: &ws[0], old: 1, new: 10 },
            KcasArg { addr: &ws[1], old: 99, new: 20 }, // wrong old
            KcasArg { addr: &ws[2], old: 3, new: 30 },
        ];
        assert!(!kcas(&args, &guard));
        assert_eq!(read(&ws[0], &guard), 1);
        assert_eq!(read(&ws[1], &guard), 2);
        assert_eq!(read(&ws[2], &guard), 3);
    }

    #[test]
    fn empty_kcas_succeeds() {
        let guard = crossbeam_epoch::pin();
        assert!(kcas(&[], &guard));
    }

    #[test]
    fn successive_operations_recycle_the_same_slots() {
        let ws = words(&[0, 0]);
        let before = crate::pool::local_pool_stats();
        let ops = 60u64;
        for i in 0..ops {
            let guard = crossbeam_epoch::pin();
            let args = [
                KcasArg { addr: &ws[0], old: i, new: i + 1 },
                KcasArg { addr: &ws[1], old: i, new: i + 1 },
            ];
            assert!(kcas(&args, &guard));
        }
        let after = crate::pool::local_pool_stats();
        assert_eq!(before.kcas_slots, after.kcas_slots);
        let bumps: u64 = after.kcas_seqs.iter().sum::<u64>() - before.kcas_seqs.iter().sum::<u64>();
        assert_eq!(bumps, ops, "every KCAS publishes by recycling one pooled slot");
    }

    #[test]
    fn alloc_baseline_matches_pooled_semantics() {
        let ws = words(&[1, 2]);
        let guard = crossbeam_epoch::pin();
        let ok = [KcasArg { addr: &ws[0], old: 1, new: 5 }, KcasArg { addr: &ws[1], old: 2, new: 6 }];
        assert!(execute_alloc(&ok, &[], &guard));
        assert_eq!(read(&ws[0], &guard), 5);
        let bad = [KcasArg { addr: &ws[0], old: 99, new: 7 }];
        assert!(!execute_alloc(&bad, &[], &guard));
        assert_eq!(read(&ws[0], &guard), 5);
        // Path validation works identically through the boxed path.
        let ver = CasWord::new(4);
        let visited = VisitArg { ver_addr: &ver, seen: 4 };
        assert!(execute_alloc(&[KcasArg { addr: &ws[1], old: 6, new: 8 }], &[visited], &guard));
        ver.store(6);
        assert!(!execute_alloc(&[KcasArg { addr: &ws[1], old: 8, new: 9 }], &[visited], &guard));
    }

    #[test]
    fn oversized_operations_fall_back_to_boxed() {
        // More path entries than a pooled slot can hold: must still execute
        // correctly (through the heap-allocated fallback).
        let vers: Vec<CasWord> = (0..SLOT_PATH_CAP + 8).map(|_| CasWord::new(2)).collect();
        let target = CasWord::new(0);
        let guard = crossbeam_epoch::pin();
        let path: Vec<VisitArg> = vers.iter().map(|v| VisitArg { ver_addr: v, seen: 2 }).collect();
        let args = [KcasArg { addr: &target, old: 0, new: 1 }];
        assert!(execute(&args, &path, &guard));
        assert_eq!(read(&target, &guard), 1);
        vers[0].store(4);
        assert!(!execute(&[KcasArg { addr: &target, old: 1, new: 2 }], &path, &guard));
    }

    #[test]
    fn path_validation_rejects_changed_version() {
        let ver = CasWord::new(4);
        let target = CasWord::new(0);
        let guard = crossbeam_epoch::pin();
        // Change the version after it was "visited".
        let visited = VisitArg { ver_addr: &ver, seen: 4 };
        ver.store(6);
        let args = [KcasArg { addr: &target, old: 0, new: 1 }];
        assert!(!execute(&args, &[visited], &guard));
        assert_eq!(read(&target, &guard), 0);
    }

    #[test]
    fn path_validation_rejects_marked_version() {
        let ver = CasWord::new(5); // odd = marked
        let target = CasWord::new(0);
        let guard = crossbeam_epoch::pin();
        let visited = VisitArg { ver_addr: &ver, seen: 5 };
        let args = [KcasArg { addr: &target, old: 0, new: 1 }];
        assert!(!execute(&args, &[visited], &guard));
    }

    #[test]
    fn path_validation_accepts_unchanged_version() {
        let ver = CasWord::new(4);
        let target = CasWord::new(0);
        let guard = crossbeam_epoch::pin();
        let visited = VisitArg { ver_addr: &ver, seen: 4 };
        let args = [KcasArg { addr: &target, old: 0, new: 1 }];
        assert!(execute(&args, &[visited], &guard));
        assert_eq!(read(&target, &guard), 1);
    }

    #[test]
    fn validate_path_standalone() {
        let v1 = CasWord::new(2);
        let v2 = CasWord::new(8);
        let guard = crossbeam_epoch::pin();
        let path = [VisitArg { ver_addr: &v1, seen: 2 }, VisitArg { ver_addr: &v2, seen: 8 }];
        assert!(validate_path(&path, &guard));
        v2.store(10);
        assert!(!validate_path(&path, &guard));
    }

    #[test]
    fn duplicate_identical_entries_are_deduped() {
        let w = CasWord::new(5);
        let guard = crossbeam_epoch::pin();
        let args = [KcasArg { addr: &w, old: 5, new: 6 }, KcasArg { addr: &w, old: 5, new: 6 }];
        assert!(kcas(&args, &guard));
        assert_eq!(read(&w, &guard), 6);
    }

    #[test]
    fn concurrent_kcas_multi_counter() {
        // N shared counters; each thread repeatedly KCASes *all* of them from
        // their current values to current+1. The sum must equal threads *
        // iterations * n_counters and all counters must end equal.
        const N: usize = 4;
        const THREADS: usize = 4;
        const OPS: usize = 1500;
        let counters: Arc<Vec<CasWord>> = Arc::new((0..N).map(|_| CasWord::new(0)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    for _ in 0..OPS {
                        loop {
                            let guard = crossbeam_epoch::pin();
                            let olds: Vec<u64> =
                                counters.iter().map(|c| read(c, &guard)).collect();
                            let args: Vec<KcasArg> = counters
                                .iter()
                                .zip(&olds)
                                .map(|(c, &o)| KcasArg { addr: c, old: o, new: o + 1 })
                                .collect();
                            if kcas(&args, &guard) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let guard = crossbeam_epoch::pin();
        let first = read(&counters[0], &guard);
        assert_eq!(first, (THREADS * OPS) as u64);
        for c in counters.iter() {
            assert_eq!(read(c, &guard), first);
        }
    }

    #[test]
    fn concurrent_kcas_transfer_preserves_sum() {
        // Bank-transfer style test: threads move amounts between random pairs
        // of accounts with 2-word KCAS; the total must be preserved.
        const ACCOUNTS: usize = 8;
        const THREADS: usize = 4;
        const OPS: usize = 2000;
        let accounts: Arc<Vec<CasWord>> =
            Arc::new((0..ACCOUNTS).map(|_| CasWord::new(1000)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let mut state = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    let mut next = || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..OPS {
                        let a = (next() % ACCOUNTS as u64) as usize;
                        let mut b = (next() % ACCOUNTS as u64) as usize;
                        if a == b {
                            b = (b + 1) % ACCOUNTS;
                        }
                        loop {
                            let guard = crossbeam_epoch::pin();
                            let va = read(&accounts[a], &guard);
                            let vb = read(&accounts[b], &guard);
                            if va == 0 {
                                break;
                            }
                            let args = [
                                KcasArg { addr: &accounts[a], old: va, new: va - 1 },
                                KcasArg { addr: &accounts[b], old: vb, new: vb + 1 },
                            ];
                            if kcas(&args, &guard) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let guard = crossbeam_epoch::pin();
        let total: u64 = accounts.iter().map(|a| read(a, &guard)).sum();
        assert_eq!(total, (ACCOUNTS as u64) * 1000);
    }
}
