//! Bounded model checking of the DCSS core (ISSUE 9 / DESIGN.md §12).
//!
//! Compiled only under `--cfg pathcas_loom`, where [`crate::sync`] resolves
//! the crate's atomics to `loom-shim`'s mocks, so the models below drive the
//! *production* [`crate::dcss`] / [`crate::dcss::help_dcss`] code through
//! every thread interleaving and weak-memory read choice within the
//! checker's bounds.
//!
//! Two kinds of test live here:
//!
//! * **Models** (`loom_shim::model`) assert the real code's invariants hold
//!   in every explored execution: DCSS increments are applied exactly once
//!   even when threads help each other, and a stale helper holding a
//!   recycled slot's old descriptor word can never corrupt anything.
//! * **Mutation witnesses** (`loom_shim::model_fails`) run deliberately
//!   weakened *miniatures* of the protocol — the final CAS replaced by a
//!   blind store, the seqno re-validation removed — and assert the checker
//!   finds a counterexample. They prove the models are non-vacuous: the
//!   checker demonstrably distinguishes the shipped protocol from its
//!   one-line corruptions.
//!
//! Run with: `RUSTFLAGS='--cfg pathcas_loom' cargo test -p kcas --release`.

use std::sync::Arc;

use crate::dcss::{dcss, help_dcss};
use crate::sync::{AtomicU64, Ordering};
use crate::word::{encode, is_dcss_desc, CasWord};

/// Control-word value used by every model; the control word never changes,
/// so DCSS success is equivalent to the returned raw equalling `old2`.
const CONTROL: u64 = 1;

/// One DCSS-based increment of `target`, retrying on interference — the
/// same read/retry shape as `dcss_concurrent_counter` in `dcss.rs`, shrunk
/// to model scale.
fn dcss_increment(control: &AtomicU64, target: &CasWord) {
    loop {
        let guard = crossbeam_epoch::pin();
        let cur = crate::read(target, &guard);
        // SAFETY: `control` and `target` are live for the whole model
        // execution (both sides of the join keep their `Arc` alive), and
        // `guard` was pinned before either was read.
        let seen = unsafe {
            dcss(
                control as *const AtomicU64,
                CONTROL,
                target as *const CasWord,
                encode(cur),
                encode(cur + 1),
                &guard,
            )
        };
        if seen == encode(cur) {
            break;
        }
    }
}

/// Model (a), DCSS help-completion: two threads each apply one DCSS
/// increment to the same word. Whenever one thread's install CAS meets the
/// other's in-flight descriptor it must help it to completion and retry;
/// in every interleaving both increments land exactly once.
#[test]
fn dcss_help_completion() {
    loom_shim::model(|| {
        let control = Arc::new(AtomicU64::new(CONTROL));
        let target = Arc::new(CasWord::new(0));
        let (c2, t2) = (Arc::clone(&control), Arc::clone(&target));
        let other = loom_shim::thread::spawn(move || dcss_increment(&c2, &t2));
        dcss_increment(&control, &target);
        other.join();
        assert_eq!(target.load_quiescent(), 2);
    });
}

/// Model (b), descriptor-slot reuse: the main thread runs three sequential
/// DCSS operations, recycling its two pooled slots round-robin, while a
/// helper captures one raw load of the target and — if it caught an
/// installed descriptor word — calls the production [`help_dcss`] on it at
/// an arbitrary later point. The seqno validate / read / re-validate
/// protocol must make the stale help either complete the right operation or
/// do nothing: the final value is exactly 3 and the word is value-tagged.
#[test]
fn dcss_stale_helper_is_harmless() {
    loom_shim::model(|| {
        let control = Arc::new(AtomicU64::new(CONTROL));
        let target = Arc::new(CasWord::new(0));
        let t2 = Arc::clone(&target);
        let helper = loom_shim::thread::spawn(move || {
            let guard = crossbeam_epoch::pin();
            let raw = t2.load_raw(Ordering::SeqCst);
            if is_dcss_desc(raw) {
                help_dcss(raw, &guard);
            }
        });
        for i in 0..3 {
            let guard = crossbeam_epoch::pin();
            // SAFETY: as in `dcss_increment` — both words outlive the
            // execution and the guard is pinned before the call.
            let seen = unsafe {
                dcss(
                    &*control as *const AtomicU64,
                    CONTROL,
                    &*target as *const CasWord,
                    encode(i),
                    encode(i + 1),
                    &guard,
                )
            };
            // No other thread installs, so our install CAS always finds the
            // plain value (a helper may complete our op for us, though).
            assert_eq!(seen, encode(i));
        }
        helper.join();
        assert_eq!(target.load_quiescent(), 3);
    });
}

// ---------------------------------------------------------------------------
// Mutation witnesses: weakened protocol miniatures the checker must fail.
// ---------------------------------------------------------------------------

/// Miniature tagged words for the witnesses: values are `v << 2`, descriptor
/// words are `(seq << 2) | 0b10` — the same disjoint-tag trick as
/// [`crate::word`], small enough to hand-roll.
fn val(v: u64) -> u64 {
    v << 2
}
fn desc(seq: u64) -> u64 {
    (seq << 2) | 0b10
}
fn is_desc(raw: u64) -> bool {
    raw & 0b11 == 0b10
}

/// The shipped `complete`: resolve the final value from the control word,
/// then CAS *the descriptor word* to it, so a stale helper (its descriptor
/// long since removed from `target`) can never clobber later operations.
fn mini_complete_cas(target: &AtomicU64, control: &AtomicU64, exp: u64, old: u64, new: u64, d: u64) {
    let c = control.load(Ordering::SeqCst);
    let f = if c == exp { new } else { old };
    let _ = target.compare_exchange(d, f, Ordering::SeqCst, Ordering::SeqCst);
}

/// Mutation: complete with a *blind store* of the final value. The helper's
/// store no longer carries proof that its operation is still the one
/// installed, so a stale helper can resurrect an already-superseded value.
fn mini_complete_blind(target: &AtomicU64, control: &AtomicU64, exp: u64, old: u64, new: u64, _d: u64) {
    let c = control.load(Ordering::SeqCst);
    let f = if c == exp { new } else { old };
    target.store(f, Ordering::SeqCst);
}

/// Two sequential mini-DCSS ops (1→2 then 2→3) with a helper that may
/// complete op 1 concurrently, parameterised over the completion routine.
fn mini_dcss_run(complete: fn(&AtomicU64, &AtomicU64, u64, u64, u64, u64)) {
    let control = Arc::new(AtomicU64::new(CONTROL));
    let target = Arc::new(AtomicU64::new(val(1)));
    let (c2, t2) = (Arc::clone(&control), Arc::clone(&target));
    let helper = loom_shim::thread::spawn(move || {
        let raw = t2.load(Ordering::SeqCst);
        if is_desc(raw) && raw == desc(1) {
            complete(&t2, &c2, CONTROL, val(1), val(2), desc(1));
        }
    });
    target
        .compare_exchange(val(1), desc(1), Ordering::SeqCst, Ordering::SeqCst)
        .expect("op 1 installs over the initial value");
    complete(&target, &control, CONTROL, val(1), val(2), desc(1));
    target
        .compare_exchange(val(2), desc(2), Ordering::SeqCst, Ordering::SeqCst)
        .expect("op 2 installs over op 1's committed value");
    complete(&target, &control, CONTROL, val(2), val(3), desc(2));
    helper.join();
    assert_eq!(
        target.load(Ordering::SeqCst),
        val(3),
        "a stale helper clobbered a later operation's committed value"
    );
}

/// The CAS-based completion survives every interleaving of the stale helper.
#[test]
fn dcss_complete_cas_passes() {
    loom_shim::model(|| mini_dcss_run(mini_complete_cas));
}

/// Witness for model (a): with the blind-store completion the checker finds
/// the interleaving where the helper, paused since op 1, overwrites op 2's
/// committed value — exactly the corruption the descriptor-word CAS in
/// [`crate::dcss`] (`complete`) exists to prevent.
#[test]
fn dcss_blind_complete_witness() {
    assert!(
        loom_shim::model_fails(|| mini_dcss_run(mini_complete_blind)),
        "checker failed to refute the blind-store completion"
    );
}

/// A miniature pooled slot: seqno plus an (old, new) field pair kept
/// correlated (`new == old + 1`) so a torn read is directly observable.
struct MiniSlot {
    seq: AtomicU64,
    old: AtomicU64,
    new: AtomicU64,
}

/// Owner-side recycle protocol from [`crate::pool`]: bump the seqno first
/// (invalidating stalled helpers), then overwrite the fields, then publish
/// the `(seq)` descriptor word.
fn mini_publish(slot: &MiniSlot, published: &AtomicU64, k: u64) {
    slot.seq.store(k, Ordering::Release);
    slot.old.store(k * 10, Ordering::Release);
    slot.new.store(k * 10 + 1, Ordering::Release);
    published.store(desc(k), Ordering::SeqCst);
}

/// Helper-side read of the slot's field set, parameterised over whether the
/// seqno is re-validated after the field reads (the shipped protocol) or
/// not (the mutation). Returns the field pair the helper would act on.
fn mini_help(slot: &MiniSlot, published: &AtomicU64, revalidate: bool) {
    let raw = published.load(Ordering::SeqCst);
    if raw == 0 || !is_desc(raw) {
        return;
    }
    let k = raw >> 2;
    if slot.seq.load(Ordering::SeqCst) != k {
        return; // already recycled before we started
    }
    let o = slot.old.load(Ordering::Acquire);
    let n = slot.new.load(Ordering::Acquire);
    if revalidate && slot.seq.load(Ordering::SeqCst) != k {
        return; // recycled under us: the pair we hold may be torn
    }
    assert_eq!(
        n,
        o + 1,
        "helper acted on a torn field set (old={o}, new={n})"
    );
}

/// Two publish/retire cycles recycling one slot, racing one helper.
fn mini_reuse_run(revalidate: bool) {
    let slot = Arc::new(MiniSlot {
        seq: AtomicU64::new(0),
        old: AtomicU64::new(0),
        new: AtomicU64::new(1),
    });
    let published = Arc::new(AtomicU64::new(0));
    let (s2, p2) = (Arc::clone(&slot), Arc::clone(&published));
    let helper = loom_shim::thread::spawn(move || mini_help(&s2, &p2, revalidate));
    for k in 1..=2 {
        mini_publish(&slot, &published, k);
        let _ = published.compare_exchange(desc(k), 0, Ordering::SeqCst, Ordering::SeqCst);
    }
    helper.join();
}

/// Model (b) companion: with the re-validation the helper never observes a
/// torn (old, new) pair, in any interleaving of the recycle.
#[test]
fn dcss_slot_reuse_revalidation_passes() {
    loom_shim::model(|| mini_reuse_run(true));
}

/// Witness for model (b): remove the re-validation and the checker finds
/// the schedule where the helper reads op 1's `old` and op 2's `new` — the
/// torn mix the seqno re-check in [`help_dcss`] exists to discard.
#[test]
fn dcss_slot_reuse_no_revalidation_witness() {
    assert!(
        loom_shim::model_fails(|| mini_reuse_run(false)),
        "checker failed to refute the unvalidated helper read"
    );
}
