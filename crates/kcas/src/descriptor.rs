//! The heap-allocated (legacy) KCAS / PathCAS descriptor and the status
//! constants shared with the pooled fast path.
//!
//! The default hot path publishes operations through reusable per-thread
//! descriptor slots ([`crate::pool`]) and never touches this type.  The
//! boxed descriptor remains for two purposes (DESIGN.md §3):
//!
//! * the **overflow fallback** — operations whose add-set or visited path
//!   exceeds a pooled slot's fixed capacity;
//! * the **benchmark baseline** — [`crate::execute_alloc`] lets the
//!   descriptor-reuse speedup be measured against the old
//!   allocate-and-epoch-retire scheme on identical workloads.
//!
//! A boxed descriptor carries everything a helper needs to finish an
//! in-flight operation: the set of `⟨addr, old, new⟩` *entries* to be
//! swapped, the set of `⟨node-version-address, observed-version⟩` *path*
//! pairs to be validated, and a status word that decides the outcome exactly
//! once.  Entries and path are immutable after publication, which is why —
//! unlike a pooled slot — reading them requires no seqno validation, only
//! epoch protection.

use crate::sync::{AtomicU64, Ordering};

use crate::word::CasWord;

/// Status: the operation has not been decided yet.
pub(crate) const UNDECIDED: u64 = 0;
/// Status: the operation succeeded; helpers write new values.
pub(crate) const SUCCEEDED: u64 = 1;
/// Status: the operation failed; helpers restore old values.
pub(crate) const FAILED: u64 = 2;

/// One `⟨addr, old, new⟩` triple of a KCAS.  Values are stored in their raw
/// (tagged) representation so that helpers can CAS them directly.
#[derive(Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) addr: *const CasWord,
    pub(crate) old_raw: u64,
    pub(crate) new_raw: u64,
}

/// One `⟨node, version⟩` pair of a PathCAS path (the read-set).
#[derive(Clone, Copy)]
pub(crate) struct PathEntry {
    pub(crate) ver_addr: *const CasWord,
    /// Raw (encoded) version value observed by `visit`.
    pub(crate) seen_raw: u64,
}

/// A published heap-allocated KCAS / PathCAS descriptor.
///
/// The `entries` and `path` slices are immutable after publication; only
/// `status` changes, and it changes exactly once (from `UNDECIDED` to
/// either `SUCCEEDED` or `FAILED`).
pub(crate) struct Descriptor {
    pub(crate) status: AtomicU64,
    pub(crate) entries: Box<[Entry]>,
    pub(crate) path: Box<[PathEntry]>,
}

// SAFETY: the raw pointers inside entries refer to epoch-protected memory;
// every thread dereferencing them holds an epoch guard pinned from before it
// could first observe this descriptor (see crate-level documentation).
unsafe impl Send for Descriptor {}
// SAFETY: see `Send` above.
unsafe impl Sync for Descriptor {}

impl Descriptor {
    pub(crate) fn new(entries: Box<[Entry]>, path: Box<[PathEntry]>) -> Self {
        Descriptor { status: AtomicU64::new(UNDECIDED), entries, path }
    }

    /// Current status of the operation.
    #[inline]
    pub(crate) fn status(&self) -> u64 {
        self.status.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_starts_undecided() {
        let d = Descriptor::new(Box::new([]), Box::new([]));
        assert_eq!(d.status(), UNDECIDED);
        assert!(d.entries.is_empty());
        assert!(d.path.is_empty());
    }

    #[test]
    fn status_transitions_once() {
        let d = Descriptor::new(Box::new([]), Box::new([]));
        assert!(d
            .status
            .compare_exchange(UNDECIDED, SUCCEEDED, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok());
        assert!(d
            .status
            .compare_exchange(UNDECIDED, FAILED, Ordering::SeqCst, Ordering::SeqCst)
            .is_err());
        assert_eq!(d.status(), SUCCEEDED);
    }
}
