//! # kcas — lock-free DCSS and multi-word CAS (KCAS)
//!
//! This crate is the synchronization substrate of the PathCAS reproduction.
//! It provides:
//!
//! * [`CasWord`] — a tagged 64-bit shared word (the paper's `casword<T>`),
//! * [`read`] — the paper's `KCASRead`: read a word, helping any in-flight
//!   multi-word operation it encounters,
//! * [`kcas`] / [`execute`] — the Harris–Fraser–Pratt multi-word CAS,
//!   optionally extended with a visited-node *path* that is validated before
//!   the operation is decided (the two "red lines" of Algorithm 1),
//! * [`validate_path`] — non-publishing validation used by read-only
//!   operations.
//!
//! ## Memory reclamation contract
//!
//! Descriptors are allocated per published operation and retired through
//! [`crossbeam_epoch`] after the owner's help routine returns; at that point
//! no shared word can point at them anymore (phase 2 removed every
//! installation and the decided status prevents re-installation), and any
//! helper that still holds a reference is pinned. Data-structure code built
//! on this crate must therefore hold an epoch [`Guard`](crossbeam_epoch::Guard)
//! across each entire operation — exactly the discipline the paper uses with
//! DEBRA guards (§4.3).
//!
//! The paper applies the Arbel-Raviv & Brown descriptor-reuse transformation
//! to avoid these allocations; we keep allocation + epoch retirement for
//! clarity (see DESIGN.md §3 for the rationale and the performance caveat).

#![warn(missing_docs)]

mod dcss;
mod descriptor;
mod engine;
pub mod word;

pub use descriptor::Descriptor;
pub use engine::{execute, kcas, read, validate_path, KcasArg, VisitArg};
pub use word::{CasWord, MAX_VALUE};

/// Mark bit helpers: the least-significant bit of a node's *logical* version
/// number indicates that the node has been deleted (§3.3).
pub mod mark {
    /// Returns `true` if the (decoded) version value carries the mark bit.
    #[inline]
    pub fn is_marked(version: u64) -> bool {
        version & 1 == 1
    }

    /// The version value after marking a node (sets the mark bit).
    #[inline]
    pub fn marked(version: u64) -> u64 {
        version | 1
    }

    /// The version value after an ordinary modification (adds two, preserving
    /// the mark bit).
    #[inline]
    pub fn bumped(version: u64) -> u64 {
        version + 2
    }
}

#[cfg(test)]
mod tests {
    use super::mark;

    #[test]
    fn mark_bit_helpers() {
        assert!(!mark::is_marked(0));
        assert!(!mark::is_marked(4));
        assert!(mark::is_marked(1));
        assert!(mark::is_marked(mark::marked(4)));
        assert_eq!(mark::bumped(4), 6);
        assert!(!mark::is_marked(mark::bumped(4)));
        assert!(mark::is_marked(mark::bumped(mark::marked(2))));
    }
}
