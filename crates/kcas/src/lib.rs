//! # kcas — lock-free DCSS and multi-word CAS (KCAS)
//!
//! This crate is the synchronization substrate of the PathCAS reproduction.
//! It provides:
//!
//! * [`CasWord`] — a tagged 64-bit shared word (the paper's `casword<T>`),
//! * [`read`] — the paper's `KCASRead`: read a word, helping any in-flight
//!   multi-word operation it encounters,
//! * [`kcas`] / [`execute`] — the Harris–Fraser–Pratt multi-word CAS,
//!   optionally extended with a visited-node *path* that is validated before
//!   the operation is decided (the two "red lines" of Algorithm 1),
//! * [`validate_path`] — non-publishing validation used by read-only
//!   operations,
//! * [`execute_raw`] / [`validate_path_raw`] — the same operations over
//!   pre-accumulated raw argument buffers (used by `pathcas`'s reusable
//!   per-thread builder so the hot path copies nothing),
//! * [`execute_alloc`] — the legacy allocating path, kept as the benchmark
//!   baseline for the descriptor-reuse speedup.
//!
//! ## Descriptor reuse (zero allocation on the hot path)
//!
//! Following the paper, this crate applies the Arbel-Raviv & Brown
//! descriptor-reuse transformation (DISC '17): every thread owns a small
//! fixed pool of KCAS and DCSS descriptor slots ([`pool`]) that it recycles
//! across operations.  Published descriptor words encode `(slot index,
//! sequence number)` instead of a pointer, and helpers validate the seqno
//! before and after every field read, so a recycled descriptor is detected
//! instead of mis-helped.  The success path of a KCAS therefore performs
//! **zero heap allocations** — the property the `bench_descriptor_reuse`
//! harness binary measures and the crate's `zero_alloc` integration test
//! asserts.  See DESIGN.md §3 for the full protocol and its invariants.
//!
//! Operations whose add-set or visited path exceeds a pooled slot's fixed
//! capacity ([`pool::SLOT_ENTRY_CAP`] / [`pool::SLOT_PATH_CAP`]) fall back
//! transparently to a heap-allocated descriptor retired through
//! [`crossbeam_epoch`]; both kinds interoperate freely on the same words.
//!
//! ## Memory reclamation contract
//!
//! Pooled descriptor slots live forever (allocated once per thread lifetime,
//! recycled via seqnos, adopted by later threads on thread exit), so they
//! need no reclamation.  Heap-allocated fallback descriptors are retired
//! through [`crossbeam_epoch`] after the owner's help routine returns, as
//! before.  Data-structure code built on this crate must hold an epoch
//! [`Guard`](crossbeam_epoch::Guard) across each entire operation — the
//! addresses inside a published operation must stay dereferenceable for
//! every potential helper, exactly the discipline the paper uses with DEBRA
//! guards (§4.3).

#![warn(missing_docs)]

mod dcss;
mod descriptor;
mod engine;
pub mod metrics;
#[cfg(all(test, pathcas_loom))]
mod models;
pub mod pool;
pub(crate) mod sync;
pub mod word;

pub use engine::{
    execute, execute_alloc, execute_raw, kcas, read, validate_path, validate_path_raw, KcasArg,
    RawEntry, RawVisit, VisitArg,
};
pub use pool::{local_pool_stats, PoolStats};
pub use word::{CasWord, MAX_VALUE};

/// Mark bit helpers: the least-significant bit of a node's *logical* version
/// number indicates that the node has been deleted (§3.3).
pub mod mark {
    /// Returns `true` if the (decoded) version value carries the mark bit.
    #[inline]
    pub fn is_marked(version: u64) -> bool {
        version & 1 == 1
    }

    /// The version value after marking a node (sets the mark bit).
    #[inline]
    pub fn marked(version: u64) -> u64 {
        version | 1
    }

    /// The version value after an ordinary modification (adds two, preserving
    /// the mark bit).
    #[inline]
    pub fn bumped(version: u64) -> u64 {
        version + 2
    }
}

#[cfg(test)]
mod tests {
    use super::mark;

    #[test]
    fn mark_bit_helpers() {
        assert!(!mark::is_marked(0));
        assert!(!mark::is_marked(4));
        assert!(mark::is_marked(1));
        assert!(mark::is_marked(mark::marked(4)));
        assert_eq!(mark::bumped(4), 6);
        assert!(!mark::is_marked(mark::bumped(4)));
        assert!(mark::is_marked(mark::bumped(mark::marked(2))));
    }
}
