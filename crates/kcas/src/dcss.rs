//! Double-compare single-swap (DCSS), the building block of the HFP KCAS
//! algorithm (Harris, Fraser and Pratt, DISC 2002).
//!
//! `DCSS(addr1, exp1, addr2, old2, new2)` atomically checks whether `*addr1
//! == exp1` and `*addr2 == old2`; if both hold it stores `new2` into `addr2`.
//! It returns the value it observed at `addr2`.  In KCAS, `addr1` is always
//! the descriptor's status word and `exp1` is the `(seqno, Undecided)`
//! packing, which prevents a slow helper from resurrecting a completed or
//! recycled KCAS (§3.1 of the paper, plus the seqno refinement of the
//! descriptor-reuse transformation — see [`crate::pool`]).
//!
//! The implementation is the standard lock-free one, with descriptor reuse:
//! the calling thread recycles a [`DcssSlot`](crate::pool) from its fixed
//! pool instead of heap-allocating, publishes it by CAS-ing the slot's
//! `(slot, seqno)` word into `addr2`, and *completes* it by reading `addr1`
//! and either committing `new2` or rolling back to `old2`.  Any thread that
//! encounters an installed DCSS descriptor word helps complete it, after
//! validating the seqno.

use crate::sync::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;

use crate::pool::{self, DcssSlot};
use crate::word::{is_dcss_desc, pack_pooled, pooled_seq, pooled_slot, CasWord, MAX_SEQ, TAG_DCSS};

/// Commit or roll back an installed DCSS: write `new2` into `target` if the
/// control word still holds `exp1`, otherwise restore `old2`.  Idempotent;
/// any number of helpers may race on the final CAS, and every CAS carries
/// the seqno-bearing `desc_word`, so a stale helper's attempt (after the
/// descriptor was recycled) can never succeed.
///
/// # Safety
/// `addr1` must point at a live control word (a pooled KCAS slot's `seqstat`
/// — static memory — or a boxed descriptor's status word protected by the
/// caller's epoch guard) and `target` at a live `CasWord`.  Callers obtain
/// both either from their own arguments (the installing thread) or from slot
/// fields validated against `desc_word`'s seqno after reading.
unsafe fn complete(addr1: *const AtomicU64, exp1: u64, target: *const CasWord, old2: u64, new2: u64, desc_word: u64) {
    // SAFETY: per the function contract.
    let control = unsafe { &*addr1 }.load(Ordering::SeqCst);
    let final_value = if control == exp1 { new2 } else { old2 };
    // SAFETY: per the function contract.
    let target = unsafe { &*target };
    let _ = target.cas_raw(desc_word, final_value);
}

/// Perform a DCSS. Returns the raw value observed at `addr2`:
/// the operation succeeded if and only if the returned value equals `old2`
/// *and* the control word held `exp1` at the linearization point (in the
/// latter case the caller — KCAS phase 1 — re-examines the descriptor status,
/// so it does not need to distinguish the two).
///
/// The returned raw value is never DCSS-tagged: conflicting DCSS operations
/// are helped to completion and the installation is retried.
///
/// The operation publishes no allocation: it recycles the calling thread's
/// next [`DcssSlot`] following the seqno protocol of [`crate::pool`] —
/// bump the seqno (invalidating stalled helpers of the slot's previous
/// operation), write the five fields, then install the `(slot, seqno)` word.
///
/// # Safety
/// The caller must hold `guard` (pinned before any of the involved shared
/// words were read) for the duration of the call, and `addr1`/`addr2` must
/// point to live shared memory (epoch-protected, or static in the case of a
/// pooled slot's status word).
pub(crate) unsafe fn dcss(
    addr1: *const AtomicU64,
    exp1: u64,
    addr2: *const CasWord,
    old2: u64,
    new2: u64,
    guard: &Guard,
) -> u64 {
    pool::with_dcss_slot(|idx, slot| {
        let seq = slot.seq.load(Ordering::SeqCst) + 1;
        debug_assert!(seq <= MAX_SEQ, "DCSS slot seqno overflow");
        // Invalidate stalled helpers of this slot's previous operation
        // *before* overwriting its fields (pool module docs, step 1).
        slot.seq.store(seq, Ordering::Release);
        slot.addr1.store(addr1 as usize, Ordering::Release);
        slot.exp1.store(exp1, Ordering::Release);
        slot.addr2.store(addr2 as usize, Ordering::Release);
        slot.old2.store(old2, Ordering::Release);
        slot.new2.store(new2, Ordering::Release);
        let desc_word = pack_pooled(TAG_DCSS, idx, seq);
        // SAFETY: `addr2` is live per the function contract.
        let target = unsafe { &*addr2 };
        loop {
            match target.cas_raw(old2, desc_word) {
                Ok(_) => {
                    // Installed: complete it ourselves (helpers may race).
                    // SAFETY: `addr1`/`addr2` are live per the contract.
                    unsafe { complete(addr1, exp1, addr2, old2, new2, desc_word) };
                    break old2;
                }
                Err(seen) if is_dcss_desc(seen) => {
                    // Another DCSS is in flight on this word: help it, retry.
                    help_dcss(seen, guard);
                    continue;
                }
                Err(seen) => break seen,
            }
        }
        // No retirement: after `complete` the descriptor word is permanently
        // gone from `addr2` (it was installed at most once and the final CAS
        // removed it), so the slot can be recycled by the next operation.
    })
}

/// Help an in-flight DCSS whose `(slot, seqno)` descriptor word was observed
/// in a shared word.  Safe to call from any thread holding an epoch guard
/// pinned before the word was loaded.
///
/// If the slot's seqno no longer matches the word, the operation is already
/// complete and its descriptor word removed from shared memory, so there is
/// nothing to do.
pub(crate) fn help_dcss(raw: u64, _guard: &Guard) {
    debug_assert!(is_dcss_desc(raw));
    let seq = pooled_seq(raw);
    let slot: &'static DcssSlot = pool::dcss_slot(pooled_slot(raw));
    if slot.seq.load(Ordering::SeqCst) != seq {
        return;
    }
    let addr1 = slot.addr1.load(Ordering::Acquire) as *const AtomicU64;
    let exp1 = slot.exp1.load(Ordering::Acquire);
    let addr2 = slot.addr2.load(Ordering::Acquire) as *const CasWord;
    let old2 = slot.old2.load(Ordering::Acquire);
    let new2 = slot.new2.load(Ordering::Acquire);
    if slot.seq.load(Ordering::SeqCst) != seq {
        // The slot was recycled while we read its fields; the mix we hold
        // may be torn, so it must not be acted upon.  The operation `raw`
        // referred to is complete.
        return;
    }
    // SAFETY: the seqno was re-validated after the field reads, so the five
    // values form the consistent field set of the operation `raw` was
    // published for.  `addr1` is either a pooled slot's seqstat (static) or
    // a boxed descriptor's status kept alive by our epoch guard (pinned
    // before `raw` was loaded); `addr2` is an epoch-protected CasWord.
    unsafe { complete(addr1, exp1, addr2, old2, new2, raw) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::encode;
    use crate::sync::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn dcss_succeeds_when_control_matches() {
        let control = AtomicU64::new(7);
        let target = CasWord::new(10);
        let guard = crossbeam_epoch::pin();
        // SAFETY: both words are stack-locals that outlive the pinned call.
        let seen = unsafe { dcss(&control, 7, &target, encode(10), encode(20), &guard) };
        assert_eq!(seen, encode(10));
        assert_eq!(target.load_quiescent(), 20);
    }

    #[test]
    fn dcss_rolls_back_when_control_differs() {
        let control = AtomicU64::new(8);
        let target = CasWord::new(10);
        let guard = crossbeam_epoch::pin();
        // SAFETY: both words are stack-locals that outlive the pinned call.
        let seen = unsafe { dcss(&control, 7, &target, encode(10), encode(20), &guard) };
        // Installation succeeded (target held old2) but the control word did
        // not match, so the value is rolled back.
        assert_eq!(seen, encode(10));
        assert_eq!(target.load_quiescent(), 10);
    }

    #[test]
    fn dcss_fails_when_target_differs() {
        let control = AtomicU64::new(7);
        let target = CasWord::new(11);
        let guard = crossbeam_epoch::pin();
        // SAFETY: both words are stack-locals that outlive the pinned call.
        let seen = unsafe { dcss(&control, 7, &target, encode(10), encode(20), &guard) };
        assert_eq!(seen, encode(11));
        assert_eq!(target.load_quiescent(), 11);
    }

    #[test]
    fn dcss_reuses_slots_without_allocating_descriptors() {
        let control = AtomicU64::new(1);
        let target = CasWord::new(0);
        let before = crate::pool::local_pool_stats();
        let ops = 100u64;
        for i in 0..ops {
            let guard = crossbeam_epoch::pin();
            // SAFETY: both words are stack-locals that outlive the call.
            let seen = unsafe { dcss(&control, 1, &target, encode(i), encode(i + 1), &guard) };
            assert_eq!(seen, encode(i));
        }
        let after = crate::pool::local_pool_stats();
        assert_eq!(before.dcss_slots, after.dcss_slots, "no new slots appear");
        let bumps: u64 = after.dcss_seqs.iter().sum::<u64>() - before.dcss_seqs.iter().sum::<u64>();
        assert_eq!(bumps, ops, "every DCSS recycles a pooled slot exactly once");
    }

    #[test]
    fn dcss_concurrent_counter() {
        // Many threads DCSS-increment a counter guarded by an always-matching
        // control word; every increment must be applied exactly once.
        let control = Arc::new(AtomicU64::new(1));
        let target = Arc::new(CasWord::new(0));
        let threads = 4;
        let per_thread = 2000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let control = Arc::clone(&control);
                let target = Arc::clone(&target);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        loop {
                            let guard = crossbeam_epoch::pin();
                            let cur = crate::read(&target, &guard);
                            // SAFETY: both words live in Arcs held by every
                            // participating thread for the whole test.
                            let seen = unsafe {
                                dcss(&*control as *const _, 1, &*target as *const _, encode(cur), encode(cur + 1), &guard)
                            };
                            if seen == encode(cur) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(target.load_quiescent(), threads * per_thread);
    }
}
