//! Double-compare single-swap (DCSS), the building block of the HFP KCAS
//! algorithm (Harris, Fraser and Pratt, DISC 2002).
//!
//! `DCSS(addr1, exp1, addr2, old2, new2)` atomically checks whether `*addr1
//! == exp1` and `*addr2 == old2`; if both hold it stores `new2` into `addr2`.
//! It returns the value it observed at `addr2`.  In KCAS, `addr1` is always
//! the descriptor's status word and `exp1` is `Undecided`, which prevents a
//! slow helper from resurrecting a completed KCAS (§3.1 of the paper).
//!
//! The implementation is the standard lock-free one: a small descriptor is
//! installed into `addr2` with a CAS, then the descriptor is *completed* by
//! reading `addr1` and either committing `new2` or rolling back to `old2`.
//! Any thread that encounters an installed DCSS descriptor helps complete it.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;

use crate::word::{is_dcss_desc, tag_dcss_ptr, untag_ptr, CasWord};

/// Descriptor for an in-flight DCSS operation.
///
/// All fields are immutable after publication; only the containing word is
/// mutated (installed / committed / rolled back) with CAS.
pub(crate) struct DcssDescriptor {
    /// Address of the control word (a KCAS descriptor's status field).
    addr1: *const AtomicU64,
    /// Expected value of the control word (KCAS `Undecided` state).
    exp1: u64,
    /// The target word being conditionally swapped.
    addr2: *const CasWord,
    /// Raw expected value of the target word.
    old2: u64,
    /// Raw new value written if the control word matches.
    new2: u64,
}

// SAFETY: the raw pointers refer to memory protected by the epoch guards held
// by every thread participating in the operation (see crate-level docs).
unsafe impl Send for DcssDescriptor {}
unsafe impl Sync for DcssDescriptor {}

impl DcssDescriptor {
    /// Complete an installed DCSS: commit `new2` if the control word still
    /// holds its expected value, otherwise roll back to `old2`.  Idempotent;
    /// any number of helpers may race on the final CAS.
    fn complete(&self, self_word: u64) {
        // SAFETY: `addr1` points at the status word of a KCAS descriptor that
        // is kept alive by the epoch guard held by the caller.
        let control = unsafe { &*self.addr1 }.load(Ordering::SeqCst);
        let final_value = if control == self.exp1 { self.new2 } else { self.old2 };
        // SAFETY: `addr2` points at a CasWord inside a node kept alive by the
        // caller's epoch guard.
        let target = unsafe { &*self.addr2 };
        let _ = target.cas_raw(self_word, final_value);
    }
}

/// Perform a DCSS. Returns the raw value observed at `addr2`:
/// the operation succeeded if and only if the returned value equals `old2`
/// *and* the control word held `exp1` at the linearization point (in the
/// latter case the caller — KCAS phase 1 — re-examines the descriptor status,
/// so it does not need to distinguish the two).
///
/// The returned raw value is never DCSS-tagged: conflicting DCSS operations
/// are helped to completion and the installation is retried.
///
/// # Safety
/// The caller must hold `guard` (pinned before any of the involved shared
/// words were read) for the duration of the call, and `addr1`/`addr2` must
/// point to live shared memory protected by epoch reclamation.
pub(crate) unsafe fn dcss(
    addr1: *const AtomicU64,
    exp1: u64,
    addr2: *const CasWord,
    old2: u64,
    new2: u64,
    guard: &Guard,
) -> u64 {
    let desc = crossbeam_epoch::Owned::new(DcssDescriptor { addr1, exp1, addr2, old2, new2 })
        .into_shared(guard);
    let desc_word = tag_dcss_ptr(desc.as_raw() as usize);
    let target = unsafe { &*addr2 };
    let result = loop {
        match target.cas_raw(old2, desc_word) {
            Ok(_) => {
                // Installed: complete it ourselves (helpers may race with us).
                unsafe { desc.deref() }.complete(desc_word);
                break old2;
            }
            Err(seen) if is_dcss_desc(seen) => {
                // Another DCSS is in flight on this word: help it, then retry.
                help_dcss(seen, guard);
                continue;
            }
            Err(seen) => break seen,
        }
    };
    // SAFETY: after `complete`, no address can point at `desc` again (the
    // only installer is this thread, above).  Helpers that already loaded the
    // pointer are pinned, so deferred destruction is safe.  If the descriptor
    // was never installed it is simply unreachable garbage.
    unsafe { guard.defer_destroy(desc) };
    result
}

/// Help an in-flight DCSS whose tagged descriptor word was observed in a
/// shared word.  Safe to call from any thread holding an epoch guard pinned
/// before the word was loaded.
pub(crate) fn help_dcss(raw: u64, _guard: &Guard) {
    debug_assert!(is_dcss_desc(raw));
    // SAFETY: the descriptor was observed in a shared word while our guard
    // was pinned; it cannot be freed until we unpin (see crate-level docs).
    let desc = unsafe { &*(untag_ptr(raw) as *const DcssDescriptor) };
    desc.complete(raw);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::encode;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn dcss_succeeds_when_control_matches() {
        let control = AtomicU64::new(7);
        let target = CasWord::new(10);
        let guard = crossbeam_epoch::pin();
        let seen = unsafe { dcss(&control, 7, &target, encode(10), encode(20), &guard) };
        assert_eq!(seen, encode(10));
        assert_eq!(target.load_quiescent(), 20);
    }

    #[test]
    fn dcss_rolls_back_when_control_differs() {
        let control = AtomicU64::new(8);
        let target = CasWord::new(10);
        let guard = crossbeam_epoch::pin();
        let seen = unsafe { dcss(&control, 7, &target, encode(10), encode(20), &guard) };
        // Installation succeeded (target held old2) but the control word did
        // not match, so the value is rolled back.
        assert_eq!(seen, encode(10));
        assert_eq!(target.load_quiescent(), 10);
    }

    #[test]
    fn dcss_fails_when_target_differs() {
        let control = AtomicU64::new(7);
        let target = CasWord::new(11);
        let guard = crossbeam_epoch::pin();
        let seen = unsafe { dcss(&control, 7, &target, encode(10), encode(20), &guard) };
        assert_eq!(seen, encode(11));
        assert_eq!(target.load_quiescent(), 11);
    }

    #[test]
    fn dcss_concurrent_counter() {
        // Many threads DCSS-increment a counter guarded by an always-matching
        // control word; every increment must be applied exactly once.
        let control = Arc::new(AtomicU64::new(1));
        let target = Arc::new(CasWord::new(0));
        let threads = 4;
        let per_thread = 2000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let control = Arc::clone(&control);
                let target = Arc::clone(&target);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        loop {
                            let guard = crossbeam_epoch::pin();
                            let cur = crate::read(&target, &guard);
                            let seen = unsafe {
                                dcss(&*control as *const _, 1, &*target as *const _, encode(cur), encode(cur + 1), &guard)
                            };
                            if seen == encode(cur) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(target.load_quiescent(), threads * per_thread);
    }
}
