//! Stress tests for descriptor recycling under contention (DESIGN.md §3).
//!
//! Each thread owns only [`kcas::pool::KCAS_SLOTS_PER_THREAD`] descriptor
//! slots, so under a contended workload every slot is recycled thousands of
//! times per second while other threads are actively helping operations
//! published through it — exactly the scenario the seqno validation
//! protocol must survive.  The assertions are effect-based: no KCAS effect
//! may be lost (a success whose writes vanished) or duplicated (a helper
//! re-applying a completed operation after its descriptor was recycled).

use std::sync::Arc;

use kcas::{CasWord, KcasArg};
use proptest::prelude::*;

/// Every success increments all `k` words of a single shared group, so the
/// final value of every word must equal the global success count exactly:
/// a lost update leaves it short, a resurrected descriptor overshoots it.
fn hammer_shared_group(threads: usize, ops_per_thread: usize, k: usize) {
    let words: Arc<Vec<CasWord>> = Arc::new((0..k).map(|_| CasWord::new(0)).collect());
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let words = Arc::clone(&words);
            std::thread::spawn(move || {
                let mut successes = 0u64;
                for _ in 0..ops_per_thread {
                    let guard = crossbeam_epoch::pin();
                    let olds: Vec<u64> = words.iter().map(|w| kcas::read(w, &guard)).collect();
                    let args: Vec<KcasArg> = words
                        .iter()
                        .zip(&olds)
                        .map(|(w, &o)| KcasArg { addr: w, old: o, new: o + 1 })
                        .collect();
                    if kcas::kcas(&args, &guard) {
                        successes += 1;
                    }
                }
                successes
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let guard = crossbeam_epoch::pin();
    for w in words.iter() {
        assert_eq!(
            kcas::read(w, &guard),
            total,
            "every word must reflect exactly the {total} successful operations"
        );
    }
}

#[test]
fn rapid_recycling_loses_and_duplicates_nothing() {
    // A single 2-word group shared by all threads maximizes both helping
    // (every conflict installs/helps descriptors) and recycling (every
    // attempt, failed or not, bumps a slot seqno).
    hammer_shared_group(8, 4000, 2);
}

#[test]
fn wide_operations_recycle_correctly() {
    hammer_shared_group(4, 1500, 8);
}

#[test]
fn recycling_advances_seqnos_not_slots() {
    // Direct evidence of reuse: a burst of operations advances the calling
    // thread's slot seqnos by exactly the operation count, and registers no
    // new slots.
    let w = CasWord::new(0);
    let guard = crossbeam_epoch::pin();
    let _ = kcas::kcas(&[KcasArg { addr: &w, old: 0, new: 1 }], &guard); // warm up
    let before = kcas::local_pool_stats();
    let ops = 500u64;
    let base = kcas::read(&w, &guard);
    for i in 0..ops {
        assert!(kcas::kcas(&[KcasArg { addr: &w, old: base + i, new: base + i + 1 }], &guard));
    }
    let after = kcas::local_pool_stats();
    assert_eq!(before.kcas_slots, after.kcas_slots);
    assert_eq!(
        after.kcas_seqs.iter().sum::<u64>() - before.kcas_seqs.iter().sum::<u64>(),
        ops
    );
    // Each 1-word KCAS performs exactly one DCSS in phase 1.
    assert_eq!(
        after.dcss_seqs.iter().sum::<u64>() - before.dcss_seqs.iter().sum::<u64>(),
        ops
    );
}

#[test]
fn pooled_and_alloc_descriptors_interoperate_under_contention() {
    // Half the threads publish through the pooled fast path, half through
    // the legacy boxed path, all against the same two accounts.  Helpers of
    // either kind must correctly complete operations of the other kind
    // (the tag distinguishes them in every shared word).
    const THREADS: usize = 8;
    const OPS: usize = 2500;
    let accounts: Arc<Vec<CasWord>> = Arc::new(vec![CasWord::new(10_000), CasWord::new(10_000)]);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    loop {
                        let guard = crossbeam_epoch::pin();
                        let a = kcas::read(&accounts[0], &guard);
                        let b = kcas::read(&accounts[1], &guard);
                        if a == 0 {
                            break;
                        }
                        let args = [
                            KcasArg { addr: &accounts[0], old: a, new: a - 1 },
                            KcasArg { addr: &accounts[1], old: b, new: b + 1 },
                        ];
                        let ok = if t % 2 == 0 {
                            kcas::kcas(&args, &guard)
                        } else {
                            kcas::execute_alloc(&args, &[], &guard)
                        };
                        if ok {
                            break;
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let guard = crossbeam_epoch::pin();
    let total = kcas::read(&accounts[0], &guard) + kcas::read(&accounts[1], &guard);
    assert_eq!(total, 20_000, "transfers must conserve the total");
}

#[test]
fn slots_survive_thread_turnover() {
    // Threads come and go; their slots return to the free list and are
    // adopted (seqnos intact) by successors.  Effects must still be exact.
    let words: Arc<Vec<CasWord>> = Arc::new((0..2).map(|_| CasWord::new(0)).collect());
    let mut total = 0u64;
    for _generation in 0..6 {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let words = Arc::clone(&words);
                std::thread::spawn(move || {
                    let mut successes = 0u64;
                    for _ in 0..300 {
                        let guard = crossbeam_epoch::pin();
                        let olds: Vec<u64> =
                            words.iter().map(|w| kcas::read(w, &guard)).collect();
                        let args: Vec<KcasArg> = words
                            .iter()
                            .zip(&olds)
                            .map(|(w, &o)| KcasArg { addr: w, old: o, new: o + 1 })
                            .collect();
                        if kcas::kcas(&args, &guard) {
                            successes += 1;
                        }
                    }
                    successes
                })
            })
            .collect();
        total += handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>();
    }
    let guard = crossbeam_epoch::pin();
    for w in words.iter() {
        assert_eq!(kcas::read(w, &guard), total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized recycling stress: arbitrary thread counts, group widths
    /// and op counts must never lose or duplicate a KCAS effect.
    #[test]
    fn prop_recycling_preserves_exact_effects(
        (threads, k, ops) in (2usize..5, 2usize..5, 200usize..800)
    ) {
        hammer_shared_group(threads, ops, k);
    }

    /// Randomized transfers between a small account set (pooled path only;
    /// the interop test above covers the mixed case) conserve the total.
    #[test]
    fn prop_transfers_conserve_total(
        (threads, accounts_n, ops, seed) in (2usize..5, 2usize..6, 100usize..600, any::<u64>())
    ) {
        let accounts: Arc<Vec<CasWord>> =
            Arc::new((0..accounts_n).map(|_| CasWord::new(1000)).collect());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let accounts = Arc::clone(&accounts);
                let mut state = seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                std::thread::spawn(move || {
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..ops {
                        let a = (next() % accounts.len() as u64) as usize;
                        let mut b = (next() % accounts.len() as u64) as usize;
                        if a == b {
                            b = (b + 1) % accounts.len();
                        }
                        loop {
                            let guard = crossbeam_epoch::pin();
                            let va = kcas::read(&accounts[a], &guard);
                            let vb = kcas::read(&accounts[b], &guard);
                            if va == 0 {
                                break;
                            }
                            let args = [
                                KcasArg { addr: &accounts[a], old: va, new: va - 1 },
                                KcasArg { addr: &accounts[b], old: vb, new: vb + 1 },
                            ];
                            if kcas::kcas(&args, &guard) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let guard = crossbeam_epoch::pin();
        let total: u64 = accounts.iter().map(|w| kcas::read(w, &guard)).sum();
        assert_eq!(total, accounts_n as u64 * 1000);
    }
}
