//! Asserts the headline property of the descriptor-reuse transformation
//! (DESIGN.md §3): once a thread's pools and scratch space are warm, the
//! success path of a KCAS / PathCAS publish performs **zero** heap
//! allocations — and the legacy baseline (`execute_alloc`) does not, which
//! keeps this test honest about what it is measuring.
//!
//! Since PR 8 the success window also proves the telemetry layer rides
//! along for free: the striped `kcas_ops_total` counter (always on) must
//! advance by exactly the measured op count while the allocation delta
//! stays zero — DESIGN.md §11's zero-overhead claim, enforced.
//!
//! Skipped under `--cfg pathcas_loom`: this is a performance contract of
//! the real build, and the model-checking cfg deliberately makes the kcas
//! metrics inert (see `kcas::metrics`), so the counter assertions below
//! cannot hold there.
#![cfg(not(pathcas_loom))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kcas::{CasWord, KcasArg, VisitArg};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: defers to `System` for every operation; only adds counting.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// The three phases run inside ONE #[test] so no sibling test (or libtest's
/// own result printing for one) can allocate concurrently with a measured
/// window — the counter is process-global.
#[test]
fn descriptor_reuse_allocation_contract() {
    // Let libtest's main thread finish parking in its result-channel
    // `recv`: that first blocking receive lazily allocates the thread's
    // park context (observed as a sporadic 2-allocation blip), and the
    // measured windows below must only ever see *this* thread's work.
    std::thread::sleep(std::time::Duration::from_millis(100));
    success_path_kcas_performs_zero_heap_allocations();
    traced_success_path_is_also_allocation_free();
    failure_path_is_also_allocation_free();
    alloc_baseline_does_allocate();
}

/// The span tracer wrapped around KCAS — sample, set the thread's current
/// trace, hold a `kcas` span guard across the operation — adds **zero**
/// allocations to the success path, while the sampler counter and span
/// rings demonstrably advance.  This is the server's per-op hot path in
/// miniature (`srv::execute` does exactly this dance).
fn traced_success_path_is_also_allocation_free() {
    telemetry::trace::register_metrics();
    let words: Vec<CasWord> = (0..4).map(|_| CasWord::new(0)).collect();

    // Warm up: thread pools, epoch record, the tracer's epoch clock and
    // this thread's span ring stripe.
    for i in 0..16u64 {
        let guard = crossbeam_epoch::pin();
        telemetry::trace::set_current(telemetry::trace::should_sample());
        let span = telemetry::trace::begin(telemetry::trace::PHASE_KCAS);
        let args: Vec<KcasArg> =
            words.iter().map(|w| KcasArg { addr: w, old: i, new: i + 1 }).collect();
        assert!(kcas::kcas(&args, &guard));
        drop(span);
        telemetry::trace::set_current(None);
    }

    telemetry::trace::set_sample_every(1);
    let base = words[0].load_quiescent();
    let sampled_before = telemetry::value("trace_sampled_total").expect("tracer registered");
    let spans_before = telemetry::value("trace_spans_recorded_total").unwrap();
    let before = allocations();
    for i in 0..1_000u64 {
        let guard = crossbeam_epoch::pin();
        telemetry::trace::set_current(telemetry::trace::should_sample());
        let span = telemetry::trace::begin(telemetry::trace::PHASE_KCAS);
        let args = [
            KcasArg { addr: &words[0], old: base + i, new: base + i + 1 },
            KcasArg { addr: &words[1], old: base + i, new: base + i + 1 },
            KcasArg { addr: &words[2], old: base + i, new: base + i + 1 },
            KcasArg { addr: &words[3], old: base + i, new: base + i + 1 },
        ];
        assert!(kcas::kcas(&args, &guard));
        drop(span);
        telemetry::trace::set_current(None);
    }
    let after = allocations();
    telemetry::trace::set_sample_every(telemetry::trace::DEFAULT_SAMPLE_EVERY);
    assert_eq!(
        after - before,
        0,
        "the traced KCAS success path must not allocate (got {} allocations over 1000 ops)",
        after - before
    );
    assert_eq!(
        telemetry::value("trace_sampled_total").unwrap() - sampled_before,
        1_000,
        "every op was 1-in-1 sampled"
    );
    assert_eq!(
        telemetry::value("trace_spans_recorded_total").unwrap() - spans_before,
        1_000,
        "every sampled op recorded its kcas span"
    );
}

fn success_path_kcas_performs_zero_heap_allocations() {
    let words: Vec<CasWord> = (0..8).map(|_| CasWord::new(0)).collect();
    let versions: Vec<CasWord> = (0..4).map(|_| CasWord::new(2)).collect();

    // Warm up: registers this thread's descriptor pool and the epoch
    // collector's participant record.
    for i in 0..16u64 {
        let guard = crossbeam_epoch::pin();
        let args: Vec<KcasArg> =
            words.iter().map(|w| KcasArg { addr: w, old: i, new: i + 1 }).collect();
        assert!(kcas::kcas(&args, &guard));
    }

    let base = words[0].load_quiescent();
    // Read the registry outside the measured window (rendering/lookup may
    // allocate); the in-window increments must not.
    let ops_before = telemetry::value("kcas_ops_total").expect("kcas metrics registered");
    let before = allocations();
    for i in 0..1_000u64 {
        let guard = crossbeam_epoch::pin();
        // A 4-word KCAS with a 4-node validated path, entirely on the stack.
        let args = [
            KcasArg { addr: &words[0], old: base + i, new: base + i + 1 },
            KcasArg { addr: &words[1], old: base + i, new: base + i + 1 },
            KcasArg { addr: &words[2], old: base + i, new: base + i + 1 },
            KcasArg { addr: &words[3], old: base + i, new: base + i + 1 },
        ];
        let path = [
            VisitArg { ver_addr: &versions[0], seen: 2 },
            VisitArg { ver_addr: &versions[1], seen: 2 },
            VisitArg { ver_addr: &versions[2], seen: 2 },
            VisitArg { ver_addr: &versions[3], seen: 2 },
        ];
        assert!(kcas::execute(&args, &path, &guard));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "the pooled KCAS success path must not allocate (got {} allocations over 1000 ops)",
        after - before
    );
    // The zero-alloc window was fully counted: telemetry is on, not off.
    assert_eq!(
        telemetry::value("kcas_ops_total").unwrap() - ops_before,
        1_000,
        "kcas_ops_total missed ops inside the zero-alloc window"
    );
}

fn failure_path_is_also_allocation_free() {
    let w = CasWord::new(7);
    // Warm up pools.
    for _ in 0..8 {
        let guard = crossbeam_epoch::pin();
        let _ = kcas::kcas(&[KcasArg { addr: &w, old: 0, new: 1 }], &guard);
    }
    let before = allocations();
    for _ in 0..500 {
        let guard = crossbeam_epoch::pin();
        // Wrong old value: fails in phase 1 and rolls back.
        assert!(!kcas::kcas(&[KcasArg { addr: &w, old: 0, new: 1 }], &guard));
    }
    assert_eq!(allocations() - before, 0, "failed pooled operations must not allocate either");
}

fn alloc_baseline_does_allocate() {
    // Sanity-check the counter: the legacy path must show the allocations
    // the pooled path eliminated, on the identical workload.
    let w = CasWord::new(0);
    for i in 0..8u64 {
        let guard = crossbeam_epoch::pin();
        assert!(kcas::execute_alloc(&[KcasArg { addr: &w, old: i, new: i + 1 }], &[], &guard));
    }
    let before = allocations();
    let ops = 100u64;
    let base = w.load_quiescent();
    for i in 0..ops {
        let guard = crossbeam_epoch::pin();
        let args = [KcasArg { addr: &w, old: base + i, new: base + i + 1 }];
        assert!(kcas::execute_alloc(&args, &[], &guard));
    }
    let delta = allocations() - before;
    assert!(
        delta >= ops,
        "the legacy baseline should allocate at least once per op (got {delta} over {ops} ops)"
    );
}
