//! # stm — transactional-memory baselines
//!
//! The PathCAS paper compares its trees against trees derived from sequential
//! code through transactional memory.  This crate provides the software TM
//! runtimes used in those comparisons and the transactional trees themselves:
//!
//! * [`norec::Norec`] — NOrec (Dalessandro et al., PPoPP 2010): a single
//!   global sequence lock with value-based validation of the read set,
//! * [`tl2::Tl2`] — a TL2-style STM (Dice, Shalev, Shavit, DISC 2006): a
//!   global version clock plus a striped table of versioned write locks,
//! * [`tle::Tle`] — transactional lock elision degraded to its fallback (a
//!   single global lock), because no HTM is available in this environment
//!   (see DESIGN.md §4),
//! * [`tree::TxBst`] / [`tree::TxAvl`] — a *sequential* internal BST / AVL
//!   tree whose every shared field access goes through the TM, generic over
//!   the runtime (`int-bst-norec`, `int-avl-norec`, `int-avl-tl2`, `tle`).
//!
//! The per-runtime abort counters stand in for the abort-rate plots of the
//! appendix TM figures.

#![warn(missing_docs)]

pub mod norec;
pub mod tl2;
pub mod tle;
pub mod tree;

pub use norec::Norec;
pub use tl2::Tl2;
pub use tle::Tle;
pub use tree::{TxAvl, TxBst};

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared 64-bit word managed by a TM runtime.  All fields of
/// transactional data structures are `TxWord`s.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct TxWord(AtomicU64);

impl TxWord {
    /// Create a word with an initial value (outside any transaction).
    pub fn new(v: u64) -> Self {
        TxWord(AtomicU64::new(v))
    }

    /// Non-transactional read, for quiescent inspection only.
    pub fn load_quiescent(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    #[inline]
    pub(crate) fn raw_load(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    #[inline]
    pub(crate) fn raw_store(&self, v: u64) {
        self.0.store(v, Ordering::SeqCst)
    }
}

/// Returned by transactional reads/writes when the transaction must abort and
/// be retried by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort;

/// The interface a running transaction exposes to the data structure code.
pub trait Transaction {
    /// Transactionally read a word.
    fn read(&mut self, word: &TxWord) -> Result<u64, Abort>;
    /// Transactionally write a word (buffered until commit for the STMs).
    fn write(&mut self, word: &TxWord, value: u64) -> Result<(), Abort>;
}

/// A transactional-memory runtime: repeatedly executes the closure until a
/// transaction commits, and returns its result.
pub trait Stm: Send + Sync + 'static {
    /// Human-readable runtime name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Run `body` as an atomic transaction.  The closure may be executed
    /// multiple times; it must not have side effects other than through the
    /// transaction (the usual STM contract).
    fn atomically<R>(&self, body: &mut dyn FnMut(&mut dyn Transaction) -> Result<R, Abort>) -> R;

    /// Number of aborted transaction attempts so far (a proxy for the abort
    /// rate reported in the paper's TM figures).
    fn aborts(&self) -> u64;

    /// Number of committed transactions so far.
    fn commits(&self) -> u64;
}

/// Shared abort/commit counters used by every runtime.
#[derive(Debug, Default)]
pub(crate) struct TxStats {
    pub(crate) aborts: AtomicU64,
    pub(crate) commits: AtomicU64,
}

impl TxStats {
    pub(crate) fn note_abort(&self) {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn note_commit(&self) {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.commits.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::sync::Arc;

    /// Concurrent counter-increment torture test shared by all runtimes.
    pub(crate) fn counter_torture<S: Stm>(stm: Arc<S>, counters: usize, threads: usize, per: u64) {
        let words: Arc<Vec<TxWord>> = Arc::new((0..counters).map(|_| TxWord::new(0)).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let stm = Arc::clone(&stm);
                let words = Arc::clone(&words);
                scope.spawn(move || {
                    for i in 0..per {
                        let idx = (i as usize) % words.len();
                        stm.atomically(&mut |tx| {
                            let v = tx.read(&words[idx])?;
                            tx.write(&words[idx], v + 1)?;
                            // Also touch a second word to create conflicts.
                            let j = (idx + 1) % words.len();
                            let w = tx.read(&words[j])?;
                            tx.write(&words[j], w)?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: u64 = words.iter().map(|w| w.load_quiescent()).sum();
        assert_eq!(total, threads as u64 * per);
        assert_eq!(stm.commits(), threads as u64 * per);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txword_basics() {
        let w = TxWord::new(9);
        assert_eq!(w.load_quiescent(), 9);
        w.raw_store(11);
        assert_eq!(w.raw_load(), 11);
    }
}
