//! Transactional internal BST / AVL trees: *sequential* tree code in which
//! every shared field access goes through a TM runtime.  Instantiated with
//! [`crate::Norec`], [`crate::Tl2`] or [`crate::Tle`] these are the paper's
//! `int-bst-norec`, `int-avl-norec`, `int-avl-tl2` and `tle` baselines.

use std::sync::atomic::{AtomicU64, Ordering};

use mapapi::{ConcurrentMap, Key, MapStats, Value};

use crate::{Abort, Stm, Transaction, TxWord};

const NIL: u64 = 0;

struct Node {
    key: TxWord,
    val: TxWord,
    left: TxWord,
    right: TxWord,
    height: TxWord,
}

impl Node {
    fn alloc(key: u64, val: u64) -> u64 {
        Box::into_raw(Box::new(Node {
            key: TxWord::new(key),
            val: TxWord::new(val),
            left: TxWord::new(NIL),
            right: TxWord::new(NIL),
            height: TxWord::new(1),
        })) as usize as u64
    }
}

#[inline]
fn node(word: u64) -> &'static Node {
    debug_assert_ne!(word, NIL);
    // SAFETY: nodes are only freed through epoch reclamation after being
    // unlinked, and every operation holds an epoch guard; the 'static
    // lifetime is never allowed to escape an operation.
    unsafe { &*(word as usize as *const Node) }
}

/// A sequential internal search tree executed under a TM runtime.
pub struct TxTree<S: Stm> {
    stm: S,
    root: TxWord,
    balanced: bool,
    retired: AtomicU64,
}

// SAFETY: nodes are heap-allocated and reachable only via TxWords; all
// shared access runs inside STM transactions under an epoch guard, so the
// tree may move between threads.
unsafe impl<S: Stm> Send for TxTree<S> {}
// SAFETY: see `Send` above — mutation is transactional and reclamation is
// epoch-deferred, so `&TxTree` is safe to share.
unsafe impl<S: Stm> Sync for TxTree<S> {}

/// An unbalanced transactional internal BST (e.g. `int-bst-norec`).
pub struct TxBst<S: Stm>(TxTree<S>);
/// A transactional internal AVL tree (e.g. `int-avl-norec`, `int-avl-tl2`).
pub struct TxAvl<S: Stm>(TxTree<S>);

impl<S: Stm> TxBst<S> {
    /// Create an empty unbalanced transactional BST over the given runtime.
    pub fn new(stm: S) -> Self {
        TxBst(TxTree { stm, root: TxWord::new(NIL), balanced: false, retired: AtomicU64::new(0) })
    }
    /// The underlying TM runtime (for abort statistics).
    pub fn stm(&self) -> &S {
        &self.0.stm
    }
}

impl<S: Stm> TxAvl<S> {
    /// Create an empty transactional AVL tree over the given runtime.
    pub fn new(stm: S) -> Self {
        TxAvl(TxTree { stm, root: TxWord::new(NIL), balanced: true, retired: AtomicU64::new(0) })
    }
    /// The underlying TM runtime (for abort statistics).
    pub fn stm(&self) -> &S {
        &self.0.stm
    }
    /// Actual height of the tree (quiescent).
    pub fn actual_height(&self) -> u64 {
        self.0.actual_height()
    }
}

impl<S: Stm> TxTree<S> {
    fn insert(&self, key: u64, val: u64) -> bool {
        let new_word = Node::alloc(key, val);
        let guard = crossbeam_epoch::pin();
        let inserted = self.stm.atomically(&mut |tx| {
            let mut path: Vec<u64> = Vec::new();
            let root = tx.read(&self.root)?;
            if root == NIL {
                tx.write(&self.root, new_word)?;
                return Ok(true);
            }
            let mut curr = root;
            loop {
                let n = node(curr);
                path.push(curr);
                let k = tx.read(&n.key)?;
                if k == key {
                    return Ok(false);
                }
                let child_word = if key < k { &n.left } else { &n.right };
                let child = tx.read(child_word)?;
                if child == NIL {
                    tx.write(child_word, new_word)?;
                    break;
                }
                curr = child;
            }
            if self.balanced {
                self.rebalance_path(tx, &path)?;
            }
            Ok(true)
        });
        if !inserted {
            // Never published by a committed transaction.
            // SAFETY: no transaction committed a pointer to `new_word`, so
            // this thread still solely owns the fresh Box.
            unsafe { drop(Box::from_raw(new_word as usize as *mut Node)) };
        }
        drop(guard);
        inserted
    }

    fn remove(&self, key: u64) -> bool {
        let guard = crossbeam_epoch::pin();
        let removed: Option<u64> = self.stm.atomically(&mut |tx| {
            let mut path: Vec<u64> = Vec::new();
            let mut curr = tx.read(&self.root)?;
            // Locate the node containing `key`.
            while curr != NIL {
                let n = node(curr);
                let k = tx.read(&n.key)?;
                if k == key {
                    break;
                }
                path.push(curr);
                curr = if key < k { tx.read(&n.left)? } else { tx.read(&n.right)? };
            }
            if curr == NIL {
                return Ok(None);
            }
            let target = node(curr);
            let left = tx.read(&target.left)?;
            let right = tx.read(&target.right)?;
            let removed_word;
            if left != NIL && right != NIL {
                // Two children: copy the successor's key/value into `curr`,
                // then splice the successor out.
                path.push(curr);
                let mut succ_parent = curr;
                let mut succ = right;
                loop {
                    let s = node(succ);
                    let l = tx.read(&s.left)?;
                    if l == NIL {
                        break;
                    }
                    path.push(succ);
                    succ_parent = succ;
                    succ = l;
                }
                let s = node(succ);
                let s_key = tx.read(&s.key)?;
                let s_val = tx.read(&s.val)?;
                tx.write(&target.key, s_key)?;
                tx.write(&target.val, s_val)?;
                let s_right = tx.read(&s.right)?;
                let sp = node(succ_parent);
                if tx.read(&sp.left)? == succ {
                    tx.write(&sp.left, s_right)?;
                } else {
                    tx.write(&sp.right, s_right)?;
                }
                removed_word = succ;
            } else {
                // Leaf or one child: splice `curr` out of its parent (or the
                // root).
                let child = if left != NIL { left } else { right };
                match path.last() {
                    None => tx.write(&self.root, child)?,
                    Some(&p) => {
                        let pn = node(p);
                        if tx.read(&pn.left)? == curr {
                            tx.write(&pn.left, child)?;
                        } else {
                            tx.write(&pn.right, child)?;
                        }
                    }
                }
                removed_word = curr;
            }
            if self.balanced {
                self.rebalance_path(tx, &path)?;
            }
            Ok(Some(removed_word))
        });
        match removed {
            Some(word) => {
                // ORDERING: Relaxed — diagnostic retirement counter only.
                self.retired.fetch_add(1, Ordering::Relaxed);
                // SAFETY: the committed transaction unlinked `word`, so only
                // this thread defers its reclamation; the drop runs after
                // every pinned reader's epoch has expired.
                unsafe {
                    guard.defer_unchecked(move || drop(Box::from_raw(word as usize as *mut Node)))
                };
                true
            }
            None => false,
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        let _guard = crossbeam_epoch::pin();
        self.stm.atomically(&mut |tx| {
            let mut curr = tx.read(&self.root)?;
            while curr != NIL {
                let n = node(curr);
                let k = tx.read(&n.key)?;
                if k == key {
                    return Ok(Some(tx.read(&n.val)?));
                }
                curr = if key < k { tx.read(&n.left)? } else { tx.read(&n.right)? };
            }
            Ok(None)
        })
    }

    /// Transactional in-order range scan: the traversal runs inside one
    /// transaction, so the committed result is a serializable snapshot —
    /// every returned pair was simultaneously present.  The read set grows
    /// with the traversed subrange, which is exactly the unbounded-read-set
    /// cost of TM that PathCAS's bounded path validation avoids (§3.8).
    fn scan(&self, start: u64, len: usize) -> Vec<(u64, u64)> {
        if len == 0 {
            return Vec::new();
        }
        let _guard = crossbeam_epoch::pin();
        self.stm.atomically(&mut |tx| {
            let mut out: Vec<(u64, u64)> = Vec::with_capacity(len.min(1024));
            // In-order traversal with subtree pruning below `start`.
            let mut stack: Vec<(u64, u64)> = Vec::new(); // (node word, key)
            let mut curr = tx.read(&self.root)?;
            loop {
                while curr != NIL {
                    let n = node(curr);
                    let k = tx.read(&n.key)?;
                    if k >= start {
                        stack.push((curr, k));
                        curr = tx.read(&n.left)?;
                    } else {
                        curr = tx.read(&n.right)?;
                    }
                }
                match stack.pop() {
                    None => break,
                    Some((word, k)) => {
                        let n = node(word);
                        out.push((k, tx.read(&n.val)?));
                        if out.len() == len {
                            break;
                        }
                        curr = tx.read(&n.right)?;
                    }
                }
            }
            Ok(out)
        })
    }

    // --- AVL rebalancing, executed inside the enclosing transaction -------

    fn height(&self, tx: &mut dyn Transaction, word: u64) -> Result<u64, Abort> {
        if word == NIL {
            Ok(0)
        } else {
            tx.read(&node(word).height)
        }
    }

    /// Fix the height / balance of a single node; returns the new root of the
    /// subtree (different from `word` if a rotation was performed).
    fn fix_node(&self, tx: &mut dyn Transaction, word: u64) -> Result<u64, Abort> {
        let n = node(word);
        let l = tx.read(&n.left)?;
        let r = tx.read(&n.right)?;
        let lh = self.height(tx, l)?;
        let rh = self.height(tx, r)?;
        let bf = lh as i64 - rh as i64;
        if bf > 1 {
            let ln = node(l);
            let ll = tx.read(&ln.left)?;
            let lr = tx.read(&ln.right)?;
            if self.height(tx, ll)? >= self.height(tx, lr)? {
                self.rotate_right(tx, word)
            } else {
                let new_l = self.rotate_left(tx, l)?;
                tx.write(&n.left, new_l)?;
                self.rotate_right(tx, word)
            }
        } else if bf < -1 {
            let rn = node(r);
            let rl = tx.read(&rn.left)?;
            let rr = tx.read(&rn.right)?;
            if self.height(tx, rr)? >= self.height(tx, rl)? {
                self.rotate_left(tx, word)
            } else {
                let new_r = self.rotate_right(tx, r)?;
                tx.write(&n.right, new_r)?;
                self.rotate_left(tx, word)
            }
        } else {
            tx.write(&n.height, 1 + lh.max(rh))?;
            Ok(word)
        }
    }

    fn rotate_right(&self, tx: &mut dyn Transaction, word: u64) -> Result<u64, Abort> {
        let n = node(word);
        let l = tx.read(&n.left)?;
        let ln = node(l);
        let lr = tx.read(&ln.right)?;
        tx.write(&n.left, lr)?;
        tx.write(&ln.right, word)?;
        let n_left = tx.read(&n.left)?;
        let n_right = tx.read(&n.right)?;
        let nh = 1 + self.height(tx, n_left)?.max(self.height(tx, n_right)?);
        tx.write(&n.height, nh)?;
        let l_left = tx.read(&ln.left)?;
        let lh = 1 + self.height(tx, l_left)?.max(nh);
        tx.write(&ln.height, lh)?;
        Ok(l)
    }

    fn rotate_left(&self, tx: &mut dyn Transaction, word: u64) -> Result<u64, Abort> {
        let n = node(word);
        let r = tx.read(&n.right)?;
        let rn = node(r);
        let rl = tx.read(&rn.left)?;
        tx.write(&n.right, rl)?;
        tx.write(&rn.left, word)?;
        let n_left = tx.read(&n.left)?;
        let n_right = tx.read(&n.right)?;
        let nh = 1 + self.height(tx, n_left)?.max(self.height(tx, n_right)?);
        tx.write(&n.height, nh)?;
        let r_right = tx.read(&rn.right)?;
        let rh = 1 + nh.max(self.height(tx, r_right)?);
        tx.write(&rn.height, rh)?;
        Ok(r)
    }

    /// Walk the recorded search path bottom-up, fixing heights and rotating
    /// where necessary (classic sequential AVL repair, inside the
    /// transaction).
    fn rebalance_path(&self, tx: &mut dyn Transaction, path: &[u64]) -> Result<(), Abort> {
        for i in (0..path.len()).rev() {
            let word = path[i];
            // Skip nodes that were spliced out of the tree by this very
            // transaction (possible for the last path entry of a delete).
            let reachable = if i == 0 {
                tx.read(&self.root)? == word
            } else {
                let p = node(path[i - 1]);
                tx.read(&p.left)? == word || tx.read(&p.right)? == word
            };
            if !reachable {
                continue;
            }
            let new_root = self.fix_node(tx, word)?;
            if new_root != word {
                if i == 0 {
                    tx.write(&self.root, new_root)?;
                } else {
                    let p = node(path[i - 1]);
                    if tx.read(&p.left)? == word {
                        tx.write(&p.left, new_root)?;
                    } else {
                        tx.write(&p.right, new_root)?;
                    }
                }
            }
        }
        Ok(())
    }

    // --- quiescent inspection ---------------------------------------------

    fn stats(&self) -> MapStats {
        let mut stats = MapStats::default();
        let root = self.root.load_quiescent();
        let mut stack: Vec<(u64, u64)> = Vec::new();
        if root != NIL {
            stack.push((root, 0));
        }
        while let Some((word, depth)) = stack.pop() {
            let n = node(word);
            stats.node_count += 1;
            stats.key_count += 1;
            stats.key_sum += n.key.load_quiescent() as u128;
            stats.key_depth_sum += depth;
            stats.approx_bytes += std::mem::size_of::<Node>() as u64;
            let l = n.left.load_quiescent();
            let r = n.right.load_quiescent();
            if l != NIL {
                stack.push((l, depth + 1));
            }
            if r != NIL {
                stack.push((r, depth + 1));
            }
        }
        stats
    }

    fn actual_height(&self) -> u64 {
        let mut max_depth = 0;
        let root = self.root.load_quiescent();
        let mut stack: Vec<(u64, u64)> = Vec::new();
        if root != NIL {
            stack.push((root, 1));
        }
        while let Some((word, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            let n = node(word);
            let l = n.left.load_quiescent();
            let r = n.right.load_quiescent();
            if l != NIL {
                stack.push((l, depth + 1));
            }
            if r != NIL {
                stack.push((r, depth + 1));
            }
        }
        max_depth
    }
}

impl<S: Stm> Drop for TxTree<S> {
    fn drop(&mut self) {
        let mut work = vec![self.root.load_quiescent()];
        while let Some(word) = work.pop() {
            if word == NIL {
                continue;
            }
            let n = node(word);
            work.push(n.left.load_quiescent());
            work.push(n.right.load_quiescent());
            // SAFETY: `&mut self` (Drop) proves exclusive access; every word
            // is a live `Box::into_raw` pointer freed exactly once.
            unsafe { drop(Box::from_raw(word as usize as *mut Node)) };
        }
    }
}

macro_rules! impl_map {
    ($ty:ident, $bst_prefix:expr) => {
        impl<S: Stm> ConcurrentMap for $ty<S> {
            fn name(&self) -> &'static str {
                match (self.0.balanced, self.0.stm.name()) {
                    (false, "norec") => "int-bst-norec",
                    (false, "tl2") => "int-bst-tl2",
                    (false, "tle") => "int-bst-tle",
                    (true, "norec") => "int-avl-norec",
                    (true, "tl2") => "int-avl-tl2",
                    (true, "tle") => "int-avl-tle",
                    (false, _) => "int-bst-stm",
                    (true, _) => "int-avl-stm",
                }
            }
            fn insert(&self, key: Key, value: Value) -> bool {
                self.0.insert(key, value)
            }
            fn remove(&self, key: Key) -> bool {
                self.0.remove(key)
            }
            fn contains(&self, key: Key) -> bool {
                self.0.get(key).is_some()
            }
            fn get(&self, key: Key) -> Option<Value> {
                self.0.get(key)
            }
            fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
                self.0.scan(start, len)
            }
            fn stats(&self) -> MapStats {
                self.0.stats()
            }
        }
    };
}

impl_map!(TxBst, "int-bst");
impl_map!(TxAvl, "int-avl");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Norec, Tl2, Tle};
    use mapapi::stress::{prefill, stress_disjoint_stripes, stress_keysum};
    use mapapi::suites::*;
    use std::time::Duration;

    #[test]
    fn bst_norec_semantics() {
        let t = TxBst::new(Norec::new());
        check_basic_semantics(&t);
        check_ordered_patterns(&TxBst::new(Norec::new()));
    }

    #[test]
    fn bst_norec_vs_oracle() {
        let t = TxBst::new(Norec::new());
        check_random_against_oracle(&t, 4000, 128, 2);
        check_stats_consistency(&t, 128);
    }

    #[test]
    fn avl_norec_vs_oracle_and_balanced() {
        let t = TxAvl::new(Norec::new());
        check_random_against_oracle(&t, 4000, 256, 3);
        let t = TxAvl::new(Norec::new());
        for k in 1..=1024u64 {
            t.insert(k, k);
        }
        assert!(t.actual_height() <= 14, "height {}", t.actual_height());
    }

    #[test]
    fn avl_tl2_vs_oracle() {
        let t = TxAvl::new(Tl2::new());
        check_random_against_oracle(&t, 4000, 128, 4);
        check_stats_consistency(&t, 128);
    }

    #[test]
    fn avl_tle_vs_oracle() {
        let t = TxAvl::new(Tle::new());
        check_random_against_oracle(&t, 4000, 128, 5);
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(TxBst::new(Norec::new()).name(), "int-bst-norec");
        assert_eq!(TxAvl::new(Norec::new()).name(), "int-avl-norec");
        assert_eq!(TxAvl::new(Tl2::new()).name(), "int-avl-tl2");
        assert_eq!(TxAvl::new(Tle::new()).name(), "int-avl-tle");
    }

    #[test]
    fn avl_norec_stress() {
        let t = TxAvl::new(Norec::new());
        prefill(&t, 256, 128, 1);
        stress_keysum(&t, 4, 256, 50, Duration::from_millis(250), 17);
    }

    #[test]
    fn avl_tl2_stress() {
        let t = TxAvl::new(Tl2::new());
        prefill(&t, 256, 128, 1);
        stress_keysum(&t, 4, 256, 50, Duration::from_millis(250), 19);
    }

    #[test]
    fn bst_tle_stripes() {
        let t = TxBst::new(Tle::new());
        stress_disjoint_stripes(&t, 4, 200);
    }

    #[test]
    fn scan_semantics_all_runtimes() {
        check_scan_semantics(&TxBst::new(Norec::new()));
        check_scan_semantics(&TxAvl::new(Norec::new()));
        check_scan_semantics(&TxAvl::new(Tl2::new()));
        check_scan_semantics(&TxAvl::new(Tle::new()));
    }

    #[test]
    fn scan_vs_oracle() {
        check_scan_against_oracle(&TxBst::new(Norec::new()), 128, 0x51);
        check_scan_against_oracle(&TxAvl::new(Tl2::new()), 128, 0x52);
    }

    #[test]
    fn abort_counters_move_under_contention() {
        let t = std::sync::Arc::new(TxAvl::new(Norec::new()));
        prefill(&*t, 64, 32, 1);
        stress_keysum(&*t, 4, 64, 100, Duration::from_millis(200), 23);
        assert!(t.stm().commits() > 0);
        // Aborts are likely but not guaranteed on a single-core box, so only
        // check the counter is readable.
        let _ = t.stm().aborts();
    }
}
