//! NOrec (Dalessandro, Spear & Scott, PPoPP 2010): a software TM with no
//! ownership records — a single global sequence lock serializes writers, and
//! readers validate their read set *by value* whenever the global clock
//! changes.  This is the `norec` baseline of the paper (and the STM half of
//! the hybrid NOrec variants, which require HTM and are therefore not
//! reproduced — see DESIGN.md §4).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Abort, Stm, Transaction, TxStats, TxWord};

/// The NOrec runtime.
#[derive(Debug, Default)]
pub struct Norec {
    /// Global sequence lock: odd while a writer is committing.
    clock: AtomicU64,
    stats: TxStats,
}

impl Norec {
    /// Create a new runtime.
    pub fn new() -> Self {
        Self::default()
    }
}

struct NorecTx<'a> {
    runtime: &'a Norec,
    snapshot: u64,
    read_set: Vec<(*const TxWord, u64)>,
    write_set: Vec<(*const TxWord, u64)>,
}

impl<'a> NorecTx<'a> {
    fn begin(runtime: &'a Norec) -> Self {
        let snapshot = loop {
            let c = runtime.clock.load(Ordering::SeqCst);
            if c & 1 == 0 {
                break c;
            }
            std::hint::spin_loop();
        };
        NorecTx { runtime, snapshot, read_set: Vec::new(), write_set: Vec::new() }
    }

    /// Value-based validation: re-read every word in the read set and compare
    /// with the recorded value; on success, move the snapshot forward.
    fn validate(&mut self) -> Result<(), Abort> {
        loop {
            let time = self.runtime.clock.load(Ordering::SeqCst);
            if time & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            for &(addr, val) in &self.read_set {
                // SAFETY: read-set addresses point into the `TVar` array the
                // transaction borrowed, which outlives the transaction.
                let current = unsafe { &*addr }.raw_load();
                if current != val {
                    return Err(Abort);
                }
            }
            if self.runtime.clock.load(Ordering::SeqCst) == time {
                self.snapshot = time;
                return Ok(());
            }
        }
    }

    fn commit(mut self) -> Result<(), Abort> {
        if self.write_set.is_empty() {
            self.runtime.stats.note_commit();
            return Ok(());
        }
        // Acquire the global sequence lock, re-validating whenever another
        // writer slipped in first.
        while self
            .runtime
            .clock
            .compare_exchange(self.snapshot, self.snapshot + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.validate()?;
        }
        for &(addr, val) in &self.write_set {
            // SAFETY: write-set addresses point into the live `TVar` array;
            // the held sequence lock excludes every other writer.
            unsafe { &*addr }.raw_store(val);
        }
        self.runtime.clock.store(self.snapshot + 2, Ordering::SeqCst);
        self.runtime.stats.note_commit();
        Ok(())
    }
}

impl Transaction for NorecTx<'_> {
    fn read(&mut self, word: &TxWord) -> Result<u64, Abort> {
        let addr = word as *const TxWord;
        if let Some(&(_, v)) = self.write_set.iter().rev().find(|(a, _)| *a == addr) {
            return Ok(v);
        }
        let mut value = word.raw_load();
        while self.runtime.clock.load(Ordering::SeqCst) != self.snapshot {
            self.validate()?;
            value = word.raw_load();
        }
        self.read_set.push((addr, value));
        Ok(value)
    }

    fn write(&mut self, word: &TxWord, value: u64) -> Result<(), Abort> {
        let addr = word as *const TxWord;
        if let Some(entry) = self.write_set.iter_mut().find(|(a, _)| *a == addr) {
            entry.1 = value;
        } else {
            self.write_set.push((addr, value));
        }
        Ok(())
    }
}

impl Stm for Norec {
    fn name(&self) -> &'static str {
        "norec"
    }

    fn atomically<R>(&self, body: &mut dyn FnMut(&mut dyn Transaction) -> Result<R, Abort>) -> R {
        let mut backoff = 0u32;
        loop {
            let mut tx = NorecTx::begin(self);
            if let Ok(result) = body(&mut tx) {
                if tx.commit().is_ok() {
                    return result;
                }
            }
            self.stats.note_abort();
            // Bounded exponential backoff to reduce livelock under contention.
            backoff = (backoff + 1).min(10);
            for _ in 0..(1u32 << backoff) {
                std::hint::spin_loop();
            }
        }
    }

    fn aborts(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.stats.aborts.load(Ordering::Relaxed)
    }

    fn commits(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.stats.commits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_read_write() {
        let stm = Norec::new();
        let a = TxWord::new(1);
        let b = TxWord::new(2);
        let sum = stm.atomically(&mut |tx| {
            let x = tx.read(&a)?;
            let y = tx.read(&b)?;
            tx.write(&a, x + 10)?;
            Ok(x + y)
        });
        assert_eq!(sum, 3);
        assert_eq!(a.load_quiescent(), 11);
        assert_eq!(stm.commits(), 1);
        assert_eq!(stm.aborts(), 0);
    }

    #[test]
    fn read_own_writes() {
        let stm = Norec::new();
        let a = TxWord::new(5);
        let v = stm.atomically(&mut |tx| {
            tx.write(&a, 42)?;
            tx.read(&a)
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn counter_torture() {
        crate::testutil::counter_torture(Arc::new(Norec::new()), 4, 4, 3000);
    }
}
