//! Transactional lock elision (`tle`).  On the paper's Intel machine this is
//! an HTM fast path with a global-lock fallback; this environment has no HTM,
//! so the runtime *is* its fallback: a single global lock (see DESIGN.md §4).
//! It still provides a meaningful baseline — it is exactly the coarse-grained
//! locking performance floor the paper's Figure 1 discussion refers to when
//! it notes that TLE's "global locking fallback code path degrades
//! performance dramatically in workloads with more updates".

use std::sync::atomic::Ordering;

use parking_lot::Mutex;

use crate::{Abort, Stm, Transaction, TxStats, TxWord};

/// The TLE runtime: a global lock executing transactions directly in place.
#[derive(Default)]
pub struct Tle {
    lock: Mutex<()>,
    stats: TxStats,
}

impl Tle {
    /// Create a new runtime.
    pub fn new() -> Self {
        Self::default()
    }
}

struct TleTx;

impl Transaction for TleTx {
    fn read(&mut self, word: &TxWord) -> Result<u64, Abort> {
        Ok(word.raw_load())
    }
    fn write(&mut self, word: &TxWord, value: u64) -> Result<(), Abort> {
        word.raw_store(value);
        Ok(())
    }
}

impl Stm for Tle {
    fn name(&self) -> &'static str {
        "tle"
    }

    fn atomically<R>(&self, body: &mut dyn FnMut(&mut dyn Transaction) -> Result<R, Abort>) -> R {
        loop {
            let _g = self.lock.lock();
            match body(&mut TleTx) {
                Ok(r) => {
                    self.stats.note_commit();
                    return r;
                }
                Err(Abort) => {
                    // Under a global lock an explicit abort can only mean the
                    // data structure asked for a retry (it never does today,
                    // but the contract allows it).
                    self.stats.note_abort();
                }
            }
        }
    }

    fn aborts(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.stats.aborts.load(Ordering::Relaxed)
    }

    fn commits(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.stats.commits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn writes_are_immediate() {
        let stm = Tle::new();
        let a = TxWord::new(3);
        let v = stm.atomically(&mut |tx| {
            let x = tx.read(&a)?;
            tx.write(&a, x * 2)?;
            tx.read(&a)
        });
        assert_eq!(v, 6);
        assert_eq!(stm.commits(), 1);
    }

    #[test]
    fn counter_torture() {
        crate::testutil::counter_torture(Arc::new(Tle::new()), 4, 4, 3000);
    }
}
