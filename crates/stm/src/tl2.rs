//! A TL2-style STM (Dice, Shalev & Shavit, DISC 2006): a global version clock
//! and a striped table of versioned write-locks.  This is the `tl2` baseline
//! of the paper.  Unlike NOrec it validates read locations by version, so
//! read-set validation does not re-read values, but every shared word maps to
//! a lock stripe that writers must acquire at commit time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Abort, Stm, Transaction, TxStats, TxWord};

/// Number of lock stripes (a power of two).
const STRIPES: usize = 1 << 16;

/// The TL2-style runtime.
pub struct Tl2 {
    clock: AtomicU64,
    /// Versioned write locks: even = version of the last commit touching the
    /// stripe, odd = locked.
    locks: Box<[AtomicU64]>,
    stats: TxStats,
}

impl Default for Tl2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Tl2 {
    /// Create a new runtime.
    pub fn new() -> Self {
        Tl2 {
            clock: AtomicU64::new(0),
            locks: (0..STRIPES).map(|_| AtomicU64::new(0)).collect(),
            stats: TxStats::default(),
        }
    }

    #[inline]
    fn stripe(&self, addr: *const TxWord) -> &AtomicU64 {
        let h = (addr as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        &self.locks[h & (STRIPES - 1)]
    }
}

struct Tl2Tx<'a> {
    runtime: &'a Tl2,
    read_version: u64,
    read_set: Vec<*const TxWord>,
    write_set: Vec<(*const TxWord, u64)>,
}

impl<'a> Tl2Tx<'a> {
    fn begin(runtime: &'a Tl2) -> Self {
        Tl2Tx {
            runtime,
            read_version: runtime.clock.load(Ordering::SeqCst),
            read_set: Vec::new(),
            write_set: Vec::new(),
        }
    }

    fn commit(self) -> Result<(), Abort> {
        if self.write_set.is_empty() {
            self.runtime.stats.note_commit();
            return Ok(());
        }
        // Acquire the (deduplicated, ordered) stripe locks for the write set.
        let mut stripes: Vec<&AtomicU64> =
            self.write_set.iter().map(|&(addr, _)| self.runtime.stripe(addr)).collect();
        stripes.sort_by_key(|s| *s as *const AtomicU64 as usize);
        stripes.dedup_by_key(|s| *s as *const AtomicU64 as usize);
        let mut acquired: Vec<(&AtomicU64, u64)> = Vec::with_capacity(stripes.len());
        for stripe in &stripes {
            let mut ok = false;
            for _ in 0..64 {
                let v = stripe.load(Ordering::SeqCst);
                if v & 1 == 0
                    && v <= self.read_version
                    && stripe.compare_exchange(v, v | 1, Ordering::SeqCst, Ordering::SeqCst).is_ok()
                {
                    acquired.push((stripe, v));
                    ok = true;
                    break;
                }
                if v & 1 == 0 && v > self.read_version {
                    break;
                }
                std::hint::spin_loop();
            }
            if !ok {
                for (s, old) in acquired {
                    s.store(old, Ordering::SeqCst);
                }
                return Err(Abort);
            }
        }
        // Advance the global clock and pick the write version.
        let write_version = self.runtime.clock.fetch_add(2, Ordering::SeqCst) + 2;
        // Validate the read set: every read stripe must be unlocked (or owned
        // by us) and not newer than our read version.
        if write_version != self.read_version + 2 {
            for &addr in &self.read_set {
                let stripe = self.runtime.stripe(addr);
                let v = stripe.load(Ordering::SeqCst);
                let owned = acquired.iter().any(|(s, _)| std::ptr::eq(*s, stripe));
                if (v & 1 == 1 && !owned) || (v & !1) > self.read_version {
                    for (s, old) in acquired {
                        s.store(old, Ordering::SeqCst);
                    }
                    return Err(Abort);
                }
            }
        }
        // Write back and release the stripes at the new version.
        for &(addr, val) in &self.write_set {
            // SAFETY: write-set addresses point into the live `TVar` array;
            // the acquired stripe locks exclude every conflicting writer.
            unsafe { &*addr }.raw_store(val);
        }
        for (s, _) in acquired {
            s.store(write_version, Ordering::SeqCst);
        }
        self.runtime.stats.note_commit();
        Ok(())
    }
}

impl Transaction for Tl2Tx<'_> {
    fn read(&mut self, word: &TxWord) -> Result<u64, Abort> {
        let addr = word as *const TxWord;
        if let Some(&(_, v)) = self.write_set.iter().rev().find(|(a, _)| *a == addr) {
            return Ok(v);
        }
        let stripe = self.runtime.stripe(addr);
        let pre = stripe.load(Ordering::SeqCst);
        let value = word.raw_load();
        let post = stripe.load(Ordering::SeqCst);
        if pre != post || pre & 1 == 1 || pre > self.read_version {
            return Err(Abort);
        }
        self.read_set.push(addr);
        Ok(value)
    }

    fn write(&mut self, word: &TxWord, value: u64) -> Result<(), Abort> {
        let addr = word as *const TxWord;
        if let Some(entry) = self.write_set.iter_mut().find(|(a, _)| *a == addr) {
            entry.1 = value;
        } else {
            self.write_set.push((addr, value));
        }
        Ok(())
    }
}

impl Stm for Tl2 {
    fn name(&self) -> &'static str {
        "tl2"
    }

    fn atomically<R>(&self, body: &mut dyn FnMut(&mut dyn Transaction) -> Result<R, Abort>) -> R {
        let mut backoff = 0u32;
        loop {
            let mut tx = Tl2Tx::begin(self);
            if let Ok(result) = body(&mut tx) {
                if tx.commit().is_ok() {
                    return result;
                }
            }
            self.stats.note_abort();
            backoff = (backoff + 1).min(10);
            for _ in 0..(1u32 << backoff) {
                std::hint::spin_loop();
            }
        }
    }

    fn aborts(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.stats.aborts.load(Ordering::Relaxed)
    }

    fn commits(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic counter; no synchronization implied.
        self.stats.commits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_read_write() {
        let stm = Tl2::new();
        let a = TxWord::new(1);
        let v = stm.atomically(&mut |tx| {
            let x = tx.read(&a)?;
            tx.write(&a, x + 1)?;
            tx.read(&a)
        });
        assert_eq!(v, 2);
        assert_eq!(a.load_quiescent(), 2);
    }

    #[test]
    fn counter_torture() {
        crate::testutil::counter_torture(Arc::new(Tl2::new()), 4, 4, 3000);
    }
}
