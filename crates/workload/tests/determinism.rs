//! Property tests for the samplers and the op generator: everything is
//! deterministic from its seed (the contract behind `PATHCAS_SEED`), and the
//! Zipfian generator actually produces rank-ordered frequencies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::{scenario, DistKind, OpGen, Sampler, SharedState, Zipfian, ZIPFIAN_THETA};

fn all_dist_kinds() -> Vec<DistKind> {
    vec![
        DistKind::Uniform,
        DistKind::Zipfian { theta: ZIPFIAN_THETA },
        DistKind::Zipfian { theta: 0.6 },
        DistKind::Hotspot { hot_keys: 64, hot_permille: 990 },
        DistKind::Latest { theta: ZIPFIAN_THETA },
    ]
}

fn sample_sequence(kind: DistKind, key_range: u64, seed: u64, n: usize) -> Vec<u64> {
    let sampler = Sampler::new(kind, key_range);
    let shared = SharedState::new(key_range);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| sampler.next_key(&mut rng, &shared)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed ⇒ same key sequence, for every distribution kind.
    #[test]
    fn same_seed_same_sequence(input in (any::<u64>(), 2u64..100_000)) {
        let (seed, key_range) = input;
        for kind in all_dist_kinds() {
            let a = sample_sequence(kind, key_range, seed, 200);
            let b = sample_sequence(kind, key_range, seed, 200);
            assert_eq!(a, b, "{kind:?} diverged for seed {seed}");
        }
    }

    /// Samplers never leave `1..=key_range` (with a static frontier).
    #[test]
    fn samples_stay_in_range(input in (any::<u64>(), 2u64..10_000)) {
        let (seed, key_range) = input;
        for kind in all_dist_kinds() {
            for k in sample_sequence(kind, key_range, seed, 200) {
                assert!((1..=key_range).contains(&k), "{kind:?} produced {k}");
            }
        }
    }

    /// Same seed ⇒ same operation sequence, for every scenario.
    #[test]
    fn same_seed_same_ops(seed in any::<u64>()) {
        for name in ["ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f",
                     "txn-transfer", "contended-hot-set"] {
            let sc = scenario(name);
            let key_range = 4096u64;
            let run = |seed| {
                let shared = SharedState::new(key_range);
                let mut g = OpGen::new(&sc, key_range, seed);
                (0..300).map(|_| g.next_op(&shared)).collect::<Vec<_>>()
            };
            assert_eq!(run(seed), run(seed), "{name} diverged for seed {seed}");
        }
    }
}

/// Zipfian sanity: rank frequencies must decrease with rank, and the
/// hottest rank's frequency must match the closed-form 1/zeta(n, theta).
#[test]
fn zipfian_frequencies_are_rank_ordered() {
    let n = 1_000u64;
    let z = Zipfian::new(n, ZIPFIAN_THETA);
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let draws = 300_000usize;
    let mut counts = vec![0u64; n as usize];
    for _ in 0..draws {
        counts[z.next_rank(&mut rng) as usize] += 1;
    }
    // Strictly ordered at decade spacing (adjacent ranks are too close to
    // distinguish with finite samples; decades are unambiguous).
    assert!(counts[0] > counts[9], "rank 0 ({}) <= rank 9 ({})", counts[0], counts[9]);
    assert!(counts[9] > counts[99], "rank 9 ({}) <= rank 99 ({})", counts[9], counts[99]);
    assert!(counts[99] > counts[999], "rank 99 ({}) <= rank 999 ({})", counts[99], counts[999]);
    // Head frequency matches theory within sampling noise.
    let observed = counts[0] as f64 / draws as f64;
    let expected = z.p_rank0();
    assert!(
        (observed - expected).abs() < 0.01,
        "rank-0 frequency {observed:.4} vs theoretical {expected:.4}"
    );
    // The head is genuinely heavy: top-10 ranks take a large share.
    let head: u64 = counts[..10].iter().sum();
    assert!(head as f64 / draws as f64 > 0.3, "top-10 share too small: {head}/{draws}");
}
