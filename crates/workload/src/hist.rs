//! Log-bucketed (HDR-style) latency histograms.
//!
//! Values (nanoseconds) below [`SUBBUCKETS`] are recorded exactly; above
//! that, each power-of-two octave is split into [`SUBBUCKETS`] linear
//! sub-buckets, so the relative quantization error is bounded by
//! `1 / SUBBUCKETS` (≈ 3.1%) at every magnitude — the same trade Gil Tene's
//! HdrHistogram makes.  Recording is O(1) (a shift and a mask, no floating
//! point), merging is element-wise addition, and a histogram is ~15 KiB, so
//! every worker thread records into a private histogram that the executor
//! merges after the trial — no synchronization on the hot path.

// The bucket layout lives in `telemetry::buckets` so the wire-exposed atomic
// histograms and these per-thread bench histograms quantize identically;
// re-exported here because this module's public API predates the split.
pub use telemetry::buckets::{SUBBUCKETS, TRACKABLE_MAX};

use telemetry::buckets::{bucket_index, bucket_upper, NBUCKETS};

/// A fixed-size log-bucketed histogram of `u64` values (nanoseconds).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    saturated: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; NBUCKETS], count: 0, sum: 0, max: 0, saturated: 0 }
    }

    /// Record one value.  Values above [`TRACKABLE_MAX`] are clamped to it
    /// (landing in the top bucket) and counted separately — see
    /// [`Self::saturated_count`] — so overflow-long stalls cannot silently
    /// skew the tail percentiles.  `max`, `mean` and the percentiles all
    /// operate on the clamped value; the saturation count is the signal
    /// that clamping happened.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let v = if v > TRACKABLE_MAX {
            self.saturated += 1;
            TRACKABLE_MAX
        } else {
            v
        };
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value after clamping (exact, not bucketed; at most
    /// [`TRACKABLE_MAX`]).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of recorded values that exceeded [`TRACKABLE_MAX`] and were
    /// clamped.  Surfaced per row in `BENCH_workloads.json` so a non-zero
    /// count flags that the reported tail is a floor, not an exact value.
    pub fn saturated_count(&self) -> u64 {
        self.saturated
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Add every count of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.saturated += other.saturated;
    }

    /// The value at quantile `q` in `[0, 1]`: the smallest bucket upper
    /// bound such that at least `ceil(q * count)` samples are ≤ it.
    /// Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report beyond the true maximum.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: (p50, p90, p99, p99.9) in one call.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            p999: self.value_at_quantile(0.999),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

/// The standard percentile set reported per (scenario, structure, threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median, nanoseconds.
    pub p50: u64,
    /// 90th percentile, nanoseconds.
    pub p90: u64,
    /// 99th percentile, nanoseconds.
    pub p99: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_bounds_error() {
        // Every value's bucket upper bound is >= the value and within
        // 1/SUBBUCKETS relative error.
        for v in (0..2000u64).chain([4_000, 65_537, 1 << 20, (1 << 40) + 12345, u64::MAX >> 1]) {
            let up = bucket_upper(bucket_index(v));
            assert!(up >= v, "upper {up} < value {v}");
            assert!(
                (up - v) as f64 <= (v as f64 / SUBBUCKETS as f64) + 1.0,
                "bucket error too large for {v}: upper {up}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            prev = i;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p = h.percentiles();
        // Each percentile may over-report by at most one bucket (~3.1%).
        for (got, exact) in [(p.p50, 5_000.0), (p.p90, 9_000.0), (p.p99, 9_900.0), (p.p999, 9_990.0)]
        {
            assert!(got as f64 >= exact, "percentile under-reported: {got} < {exact}");
            assert!(got as f64 <= exact * 1.04 + 1.0, "percentile {got} too far above {exact}");
        }
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut u = LatencyHistogram::new();
        for v in 0..5_000u64 {
            if v % 2 == 0 { a.record(v * 7) } else { b.record(v * 7) }
            u.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        assert_eq!(a.max(), u.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.value_at_quantile(q), u.value_at_quantile(q));
        }
    }

    #[test]
    fn oversized_values_are_clamped_and_counted() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        h.record(u64::MAX); // e.g. a timer glitch
        h.record(TRACKABLE_MAX + 1);
        assert_eq!(h.saturated_count(), 2);
        assert_eq!(h.count(), 1002);
        assert_eq!(h.max(), TRACKABLE_MAX);
        // The tail reports the trackable ceiling, not u64::MAX.
        assert!(h.value_at_quantile(1.0) <= TRACKABLE_MAX);
        // p50 is unaffected by the two clamped outliers.
        assert!(h.value_at_quantile(0.5) <= 520);
        // Recording exactly TRACKABLE_MAX is not a saturation.
        let mut g = LatencyHistogram::new();
        g.record(TRACKABLE_MAX);
        assert_eq!(g.saturated_count(), 0);
    }

    #[test]
    fn merge_carries_saturation_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX - 1);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.saturated_count(), 2);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUBBUCKETS {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), SUBBUCKETS - 1);
    }
}
