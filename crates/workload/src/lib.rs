//! # workload — YCSB-style scenario engine
//!
//! The measurement subsystem that opens the *scenario* axis of the
//! evaluation: where the `fig*` harness binaries sweep uniformly random
//! single-key mixes (the paper's §5 methodology), this crate runs
//! **declarative scenarios** — the YCSB core workloads A–F (Cooper et al.,
//! SoCC '10) plus two PathCAS-specific ones — against any
//! [`mapapi::ConcurrentMap`], and reports latency percentiles, not just
//! throughput.  See DESIGN.md §6 for the math and the design rationale.
//!
//! The pieces, each in its own module:
//!
//! * [`dist`] — deterministic key-distribution samplers: uniform, Zipfian
//!   (precomputed-zeta, rejection-free O(1) sampling, FNV rank scrambling),
//!   hotspot, and `latest`;
//! * [`spec`] — the scenario table ([`all_scenarios`]): YCSB A–F (E runs
//!   genuine validated range scans through
//!   [`mapapi::ConcurrentMap::scan`]), `txn-transfer` (atomic 2-key
//!   read-modify-write: `mapapi::get` + two-word [`kcas::execute`],
//!   conserved-sum checked), `contended-hot-set` (99% of ops on 64 keys),
//!   and `scan-heavy` (80% scans with a tunable [`ScanLen`] distribution);
//! * [`exec`] — the phased executor (**load → warmup → timed run**) with
//!   per-thread op generation, latency recording (scans also into their own
//!   histogram), and quiescent stats collected only after every worker has
//!   joined; [`run_scenario_batched`] is the **service mode** variant that
//!   hands whole op batches to a [`BatchApply`] backend (the KV service's
//!   pipelined client pool, or the in-process [`LoopBatch`] reference) and
//!   charges every op its batch's round-trip;
//! * [`hist`] — log-bucketed (HDR-style) latency histograms with ≤3.1%
//!   relative quantization error, O(1) recording, and saturation counting
//!   above [`TRACKABLE_MAX`];
//! * [`report`] — `BENCH_workloads.json` / CSV emission, including
//!   per-scenario scan-latency percentiles.
//!
//! The harness binary `bench_workloads` wires this crate to the algorithm
//! registry so every registered structure runs every scenario; the
//! `workloads` Criterion target measures single-threaded per-op cost of the
//! same scenarios.  Everything is reproducible from the `PATHCAS_SEED` knob.

#![warn(missing_docs)]

pub mod dist;
pub mod exec;
pub mod hist;
pub mod report;
pub mod spec;

pub use dist::{DistKind, Sampler, SharedState, Zipfian, ZIPFIAN_THETA};
pub use exec::{
    apply, run_ops, run_scenario, run_scenario_batched, BankCheck, BatchApply, LoopBatch, Op,
    OpGen, Outcome, RunParams,
};
pub use hist::{LatencyHistogram, Percentiles, TRACKABLE_MAX};
pub use report::{to_csv, to_json, Meta, Row};
pub use spec::{all_scenarios, scenario, InsertKind, Mix, ScanLen, Scenario, INITIAL_BALANCE};
