//! Result rows and JSON/CSV emission, following the repository's
//! `BENCH_*.json` convention (hand-built JSON, no serde — the build is
//! offline and the schema is flat).

use crate::hist::Percentiles;

/// One (scenario, structure, threads) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scenario name (e.g. `ycsb-a`).
    pub scenario: String,
    /// Structure name from the harness registry (e.g. `int-avl-pathcas`).
    pub structure: String,
    /// Worker thread count.
    pub threads: usize,
    /// Throughput, millions of operations per second.
    pub mops: f64,
    /// Operations completed in the recorded window (across trials).
    pub total_ops: u64,
    /// Mean per-op latency, nanoseconds.
    pub mean_ns: f64,
    /// p50/p90/p99/p99.9 latency, nanoseconds.
    pub percentiles: Percentiles,
    /// Largest observed per-op latency, nanoseconds.
    pub max_ns: u64,
    /// Samples clamped at the histogram's trackable maximum (see
    /// [`crate::hist::TRACKABLE_MAX`]); non-zero means the reported tail is
    /// a floor.
    pub saturated: u64,
    /// Scan operations recorded (0 for scenarios without a scan component).
    pub scan_ops: u64,
    /// p50/p90/p99/p99.9 latency of the scan operations alone, nanoseconds
    /// (all zero when `scan_ops == 0`).
    pub scan_percentiles: Percentiles,
    /// Follower-staleness samples recorded during the run (each one is
    /// `primary seqno − follower applied seqno` at a sampling instant).
    /// Zero for non-replicated rows, whose staleness columns are all zero.
    pub staleness_samples: u64,
    /// p50/p90/p99/p99.9 of the staleness samples, in **sequence numbers**
    /// (events behind the primary), not nanoseconds.
    pub staleness_percentiles: Percentiles,
    /// How the structure was reached: `inproc` for in-process benchmarks,
    /// or the serving backend (`threads`, `reactor`) for service mode.
    pub backend: String,
    /// Telemetry delta over the trial: server-side `read` syscalls
    /// (reactor rows; 0 for `inproc` and the threaded backend, which does
    /// not count them).
    pub wire_read_syscalls: u64,
    /// Telemetry delta over the trial: server-side `write` syscalls (same
    /// caveats as `wire_read_syscalls`).
    pub wire_write_syscalls: u64,
    /// Telemetry delta over the trial: reactor `epoll_wait` wakeups that
    /// delivered events (0 off the reactor backend).
    pub reactor_wakeups: u64,
    /// Telemetry delta over the trial: KCAS retries (helping-induced
    /// re-attempts inside the structure; 0 for non-KCAS structures).
    pub kcas_retries: u64,
    /// Shard load imbalance: max over shards of per-shard point ops,
    /// divided by the mean (1.0 = perfectly even; 0.0 when the structure
    /// doesn't track per-shard loads).
    pub shard_imbalance: f64,
    /// Mean nanoseconds a sampled op spent waiting for request bytes
    /// (threads: the blocking frame read; reactor: its amortized share of
    /// `epoll_wait`).  All `attr_*` columns are per-sampled-op means from
    /// the span tracer's phase sums — 0.0 for `inproc` rows and whenever
    /// tracing is disabled.
    pub attr_ready_ns: f64,
    /// Mean nanoseconds a sampled op spent in frame decode.
    pub attr_decode_ns: f64,
    /// Mean nanoseconds a sampled op spent in shard routing.
    pub attr_shard_ns: f64,
    /// Mean nanoseconds a sampled op spent executing on the structure (the
    /// KCAS/map phase; retries and helping ride along as span events).
    pub attr_kcas_ns: f64,
    /// Mean nanoseconds a sampled op spent in the replication commit
    /// (change-log append; 0.0 when the map is not replicated).
    pub attr_commit_ns: f64,
    /// Mean nanoseconds a sampled op spent encoding its response.
    pub attr_resp_ns: f64,
    /// Mean nanoseconds a sampled op spent in the batched flush (its
    /// burst's socket write, charged to the burst's last sampled op).
    pub attr_flush_ns: f64,
}

/// Run-wide metadata recorded at the top of the JSON report.
#[derive(Debug, Clone)]
pub struct Meta {
    /// Timed window per trial, milliseconds.
    pub duration_ms: u64,
    /// Warmup per trial, milliseconds.
    pub warmup_ms: u64,
    /// Trials per configuration.
    pub trials: usize,
    /// Key range the non-bank scenarios sampled from.
    pub key_range: u64,
    /// The base seed (`PATHCAS_SEED`).
    pub seed: u64,
}

/// Render the full report as JSON (`BENCH_workloads.json`).
pub fn to_json(meta: &Meta, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"workloads\",\n");
    s.push_str(&format!("  \"duration_ms\": {},\n", meta.duration_ms));
    s.push_str(&format!("  \"warmup_ms\": {},\n", meta.warmup_ms));
    s.push_str(&format!("  \"trials\": {},\n", meta.trials));
    s.push_str(&format!("  \"key_range\": {},\n", meta.key_range));
    s.push_str(&format!("  \"seed\": {},\n", meta.seed));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"structure\": \"{}\", \"threads\": {}, \
             \"mops\": {:.4}, \"total_ops\": {}, \"mean_ns\": {:.1}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"max_ns\": {}, \"saturated\": {}, \"scan_ops\": {}, \
             \"scan_p50_ns\": {}, \"scan_p90_ns\": {}, \"scan_p99_ns\": {}, \
             \"scan_p999_ns\": {}, \"staleness_samples\": {}, \
             \"staleness_p50\": {}, \"staleness_p90\": {}, \"staleness_p99\": {}, \
             \"staleness_p999\": {}, \"backend\": \"{}\", \
             \"wire_read_syscalls\": {}, \"wire_write_syscalls\": {}, \
             \"reactor_wakeups\": {}, \"kcas_retries\": {}, \
             \"shard_imbalance\": {:.3}, \
             \"attr_ready_ns\": {:.1}, \"attr_decode_ns\": {:.1}, \
             \"attr_shard_ns\": {:.1}, \"attr_kcas_ns\": {:.1}, \
             \"attr_commit_ns\": {:.1}, \"attr_resp_ns\": {:.1}, \
             \"attr_flush_ns\": {:.1}}}{}\n",
            r.scenario,
            r.structure,
            r.threads,
            r.mops,
            r.total_ops,
            r.mean_ns,
            r.percentiles.p50,
            r.percentiles.p90,
            r.percentiles.p99,
            r.percentiles.p999,
            r.max_ns,
            r.saturated,
            r.scan_ops,
            r.scan_percentiles.p50,
            r.scan_percentiles.p90,
            r.scan_percentiles.p99,
            r.scan_percentiles.p999,
            r.staleness_samples,
            r.staleness_percentiles.p50,
            r.staleness_percentiles.p90,
            r.staleness_percentiles.p99,
            r.staleness_percentiles.p999,
            r.backend,
            r.wire_read_syscalls,
            r.wire_write_syscalls,
            r.reactor_wakeups,
            r.kcas_retries,
            r.shard_imbalance,
            r.attr_ready_ns,
            r.attr_decode_ns,
            r.attr_shard_ns,
            r.attr_kcas_ns,
            r.attr_commit_ns,
            r.attr_resp_ns,
            r.attr_flush_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Render the rows as CSV with a header line (`BENCH_workloads.csv`).
pub fn to_csv(rows: &[Row]) -> String {
    // New columns (staleness, then backend, then the PR 8 telemetry
    // deltas, then the PR 10 trace attribution means) are appended after
    // the existing ones, so consumers indexing by header name (or by the
    // old column positions) keep working.
    let mut s = String::from(
        "scenario,structure,threads,mops,total_ops,mean_ns,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,\
         saturated,scan_ops,scan_p50_ns,scan_p90_ns,scan_p99_ns,scan_p999_ns,\
         staleness_samples,staleness_p50,staleness_p90,staleness_p99,staleness_p999,backend,\
         wire_read_syscalls,wire_write_syscalls,reactor_wakeups,kcas_retries,shard_imbalance,\
         attr_ready_ns,attr_decode_ns,attr_shard_ns,attr_kcas_ns,attr_commit_ns,attr_resp_ns,\
         attr_flush_ns\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{},{},{},{:.4},{},{:.1},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
            r.scenario,
            r.structure,
            r.threads,
            r.mops,
            r.total_ops,
            r.mean_ns,
            r.percentiles.p50,
            r.percentiles.p90,
            r.percentiles.p99,
            r.percentiles.p999,
            r.max_ns,
            r.saturated,
            r.scan_ops,
            r.scan_percentiles.p50,
            r.scan_percentiles.p90,
            r.scan_percentiles.p99,
            r.scan_percentiles.p999,
            r.staleness_samples,
            r.staleness_percentiles.p50,
            r.staleness_percentiles.p90,
            r.staleness_percentiles.p99,
            r.staleness_percentiles.p999,
            r.backend,
            r.wire_read_syscalls,
            r.wire_write_syscalls,
            r.reactor_wakeups,
            r.kcas_retries,
            r.shard_imbalance,
            r.attr_ready_ns,
            r.attr_decode_ns,
            r.attr_shard_ns,
            r.attr_kcas_ns,
            r.attr_commit_ns,
            r.attr_resp_ns,
            r.attr_flush_ns
        ));
    }
    s
}

/// Format nanoseconds for human-readable tables (`1.23µs`, `456ns`, …).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Row> {
        vec![
            Row {
                scenario: "ycsb-a".into(),
                structure: "int-avl-pathcas".into(),
                threads: 2,
                mops: 1.5,
                total_ops: 1000,
                mean_ns: 450.0,
                percentiles: Percentiles { p50: 400, p90: 700, p99: 1200, p999: 5000 },
                max_ns: 9000,
                saturated: 0,
                scan_ops: 0,
                scan_percentiles: Percentiles::default(),
                staleness_samples: 0,
                staleness_percentiles: Percentiles::default(),
                backend: "inproc".into(),
                wire_read_syscalls: 0,
                wire_write_syscalls: 0,
                reactor_wakeups: 0,
                kcas_retries: 42,
                shard_imbalance: 0.0,
                attr_ready_ns: 0.0,
                attr_decode_ns: 0.0,
                attr_shard_ns: 0.0,
                attr_kcas_ns: 0.0,
                attr_commit_ns: 0.0,
                attr_resp_ns: 0.0,
                attr_flush_ns: 0.0,
            },
            Row {
                scenario: "scan-heavy".into(),
                structure: "int-bst-pathcas".into(),
                threads: 4,
                mops: 3.25,
                total_ops: 2000,
                mean_ns: 300.0,
                percentiles: Percentiles { p50: 250, p90: 500, p99: 900, p999: 2000 },
                max_ns: 4000,
                saturated: 1,
                scan_ops: 1600,
                scan_percentiles: Percentiles { p50: 800, p90: 1500, p99: 2500, p999: 3500 },
                staleness_samples: 900,
                staleness_percentiles: Percentiles { p50: 2, p90: 10, p99: 40, p999: 80 },
                backend: "reactor".into(),
                wire_read_syscalls: 5000,
                wire_write_syscalls: 1234,
                reactor_wakeups: 321,
                kcas_retries: 0,
                shard_imbalance: 1.25,
                attr_ready_ns: 120.5,
                attr_decode_ns: 35.0,
                attr_shard_ns: 12.25,
                attr_kcas_ns: 210.0,
                attr_commit_ns: 18.0,
                attr_resp_ns: 44.0,
                attr_flush_ns: 95.75,
            },
        ]
    }

    #[test]
    fn json_is_balanced_and_has_every_row() {
        let meta = Meta { duration_ms: 500, warmup_ms: 100, trials: 2, key_range: 1000, seed: 7 };
        let j = to_json(&meta, &sample_rows());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"bench\": \"workloads\""));
        assert!(j.contains("\"scenario\": \"ycsb-a\""));
        assert!(j.contains("\"p999_ns\": 2000"));
        assert!(j.contains("\"seed\": 7"));
        assert!(j.contains("\"saturated\": 1"));
        assert!(j.contains("\"scan_ops\": 1600"));
        assert!(j.contains("\"scan_p999_ns\": 3500"));
        assert!(j.contains("\"staleness_samples\": 900"));
        assert!(j.contains("\"staleness_p99\": 40"));
        assert!(j.contains("\"staleness_samples\": 0"));
        assert!(j.contains("\"backend\": \"inproc\""));
        assert!(j.contains("\"backend\": \"reactor\""));
        assert!(j.contains("\"wire_read_syscalls\": 5000"));
        assert!(j.contains("\"reactor_wakeups\": 321"));
        assert!(j.contains("\"kcas_retries\": 42"));
        assert!(j.contains("\"shard_imbalance\": 1.250"));
        assert!(j.contains("\"shard_imbalance\": 0.000"));
        assert!(j.contains("\"attr_ready_ns\": 120.5"));
        assert!(j.contains("\"attr_kcas_ns\": 210.0"));
        assert!(j.contains("\"attr_flush_ns\": 95.8"));
        assert!(j.contains("\"attr_flush_ns\": 0.0"));
        // No trailing comma before the closing bracket.
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn csv_has_header_plus_one_line_per_row() {
        let c = to_csv(&sample_rows());
        assert_eq!(c.lines().count(), 3);
        assert!(c.starts_with("scenario,structure,threads"));
        assert!(c.lines().next().unwrap().ends_with(
            "kcas_retries,shard_imbalance,attr_ready_ns,attr_decode_ns,attr_shard_ns,\
             attr_kcas_ns,attr_commit_ns,attr_resp_ns,attr_flush_ns"
        ));
        assert!(c.contains("scan-heavy,int-bst-pathcas,4,3.2500"));
        assert!(c.contains(
            ",1,1600,800,1500,2500,3500,900,2,10,40,80,reactor,5000,1234,321,0,1.250,\
             120.5,35.0,12.2,210.0,18.0,44.0,95.8\n"
        ));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(750), "750ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
