//! The phased scenario executor: **load → warmup → timed run**, with per-op
//! latency recorded into per-thread [`LatencyHistogram`]s that are merged
//! after the trial.
//!
//! The executor drives any [`mapapi::ConcurrentMap`], so every structure in
//! the harness registry runs every scenario with zero per-structure glue.
//! Scenarios with a `transfer` component additionally own a bank of
//! [`kcas::CasWord`] accounts: a transfer is a `mapapi::get` metadata lookup
//! composed with a two-word [`kcas::execute`], so the sum over all accounts
//! is conserved iff the KCAS substrate is linearizable — the invariant the
//! `txn_transfer` integration test asserts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use kcas::{CasWord, KcasArg};
use mapapi::{ConcurrentMap, Key, MapStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::{Sampler, SharedState};
use crate::hist::LatencyHistogram;
use crate::spec::{InsertKind, ScanLen, Scenario, INITIAL_BALANCE};

/// One generated operation, ready to apply to a map (and bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Read(Key),
    /// Insert-if-absent (`key` doubles as the value, as elsewhere in the
    /// workspace).
    Insert(Key),
    /// Delete.
    Remove(Key),
    /// YCSB-F read-modify-write (increment the stored value).
    Rmw(Key),
    /// Forward scan of `len` successive keys starting at the key.
    Scan(Key, u64),
    /// Atomic transfer of `amount` between two distinct bank accounts.
    Transfer {
        /// Source account index.
        from: u64,
        /// Destination account index.
        to: u64,
        /// Units moved.
        amount: u64,
    },
}

/// A deterministic per-thread operation generator for one scenario.
///
/// Two `OpGen`s with the same scenario, key range and seed yield the same
/// operation sequence (given the same [`SharedState`] observations), which
/// is what the determinism proptests pin down.
pub struct OpGen {
    rng: StdRng,
    sampler: Sampler,
    // Cumulative per-mille thresholds, in mix order.
    t_read: u32,
    t_insert: u32,
    t_remove: u32,
    t_rmw: u32,
    t_scan: u32,
    insert_kind: InsertKind,
    scan_len: Option<ScanLen>,
    accounts: u64,
}

impl OpGen {
    /// Build a generator for `sc` over `1..=key_range`, seeded with `seed`.
    pub fn new(sc: &Scenario, key_range: Key, seed: u64) -> Self {
        assert!(sc.mix.is_valid(), "{}: op mix must sum to 1000", sc.name);
        let m = &sc.mix;
        OpGen {
            rng: StdRng::seed_from_u64(seed),
            sampler: Sampler::new(sc.dist, key_range),
            t_read: m.read,
            t_insert: m.read + m.insert,
            t_remove: m.read + m.insert + m.remove,
            t_rmw: m.read + m.insert + m.remove + m.rmw,
            t_scan: m.read + m.insert + m.remove + m.rmw + m.scan,
            insert_kind: sc.insert_kind,
            scan_len: sc.scan_len,
            accounts: sc.accounts,
        }
    }

    /// Generate the next operation.
    pub fn next_op(&mut self, shared: &SharedState) -> Op {
        let roll = self.rng.gen_range(0..1000u32);
        if roll < self.t_read {
            Op::Read(self.sampler.next_key(&mut self.rng, shared))
        } else if roll < self.t_insert {
            let key = match self.insert_kind {
                InsertKind::Sampled => self.sampler.next_key(&mut self.rng, shared),
                InsertKind::Fresh => shared.claim_insert_key(),
            };
            Op::Insert(key)
        } else if roll < self.t_remove {
            Op::Remove(self.sampler.next_key(&mut self.rng, shared))
        } else if roll < self.t_rmw {
            Op::Rmw(self.sampler.next_key(&mut self.rng, shared))
        } else if roll < self.t_scan {
            let len = match self.scan_len.expect("scan op without a scan_len") {
                ScanLen::Fixed(n) => n,
                ScanLen::Uniform { min, max } => self.rng.gen_range(min..=max),
            };
            Op::Scan(self.sampler.next_key(&mut self.rng, shared), len)
        } else {
            let from = self.rng.gen_range(0..self.accounts);
            let mut to = self.rng.gen_range(0..self.accounts - 1);
            if to >= from {
                to += 1; // uniform over accounts != from
            }
            Op::Transfer { from, to, amount: self.rng.gen_range(1..=3u64) }
        }
    }
}

/// Apply one operation. Returns `true` if the operation "succeeded" (hit an
/// existing key, inserted/removed successfully, or committed a transfer).
pub fn apply<M: ConcurrentMap + ?Sized>(map: &M, bank: Option<&[CasWord]>, op: Op) -> bool {
    match op {
        Op::Read(k) => map.get(k).is_some(),
        Op::Insert(k) => map.insert(k, k),
        Op::Remove(k) => map.remove(k),
        Op::Rmw(k) => map.rmw(k, &mut |v| v.map_or(1, |x| (x + 1) & mapapi::MAX_KEY)),
        // A real validated range query — the structure's native ordered
        // iteration, not a loop of point lookups.
        Op::Scan(k, len) => !map.scan(k, len as usize).is_empty(),
        Op::Transfer { from, to, amount } => {
            let bank = bank.expect("transfer op without a bank");
            transfer(map, bank, from, to, amount)
        }
    }
}

/// One atomic 2-key transfer: look up the source account's metadata through
/// the map (`mapapi::get`), then move `amount` between the two balance words
/// with a single two-word [`kcas::execute`].  Fails (returns `false`)
/// without retry if the account is unknown, the balance is insufficient, or
/// the KCAS loses a race — the caller counts attempts and successes.
pub fn transfer<M: ConcurrentMap + ?Sized>(
    map: &M,
    bank: &[CasWord],
    from: u64,
    to: u64,
    amount: u64,
) -> bool {
    debug_assert_ne!(from, to);
    // Metadata lookup: account keys are 1-based (key 0 is reserved).
    if map.get(from + 1).is_none() {
        return false;
    }
    let guard = crossbeam_epoch::pin();
    let bal_from = kcas::read(&bank[from as usize], &guard);
    let bal_to = kcas::read(&bank[to as usize], &guard);
    if bal_from < amount {
        return false;
    }
    let args = [
        KcasArg { addr: &bank[from as usize], old: bal_from, new: bal_from - amount },
        KcasArg { addr: &bank[to as usize], old: bal_to, new: bal_to + amount },
    ];
    kcas::execute(&args, &[], &guard)
}

/// Load the account bank: metadata keys `1..=accounts` into the map (in
/// FNV-scrambled order — sequential insertion would degenerate the
/// unbalanced trees into lists and charge every transfer for it, the same
/// reason YCSB hashes its load order) and one balance word per account.
fn load_bank<M: ConcurrentMap + ?Sized>(map: &M, accounts: u64) -> Vec<CasWord> {
    let mut order: Vec<u64> = (0..accounts).collect();
    order.sort_by_key(|&i| (crate::dist::fnv1a(i), i));
    for i in order {
        let _ = map.insert(i + 1, INITIAL_BALANCE);
    }
    (0..accounts).map(|_| CasWord::new(INITIAL_BALANCE)).collect()
}

/// Parameters of one scenario run (one point of the sweep).
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Worker thread count.
    pub threads: usize,
    /// Keys are drawn from `1..=key_range`.
    pub key_range: Key,
    /// Keys loaded before the timer starts (ignored by bank scenarios,
    /// which load exactly their accounts).
    pub prefill: u64,
    /// Untimed warmup before recording starts.
    pub warmup: Duration,
    /// Timed, recorded window.
    pub duration: Duration,
    /// Base seed; per-thread RNGs derive from it, so the whole run is
    /// reproducible (the `PATHCAS_SEED` knob).
    pub seed: u64,
}

impl RunParams {
    /// Standard parameters: prefill to half the key range, warmup = 1/5 of
    /// the timed duration.
    pub fn standard(threads: usize, key_range: Key, duration: Duration, seed: u64) -> Self {
        RunParams {
            threads,
            key_range,
            prefill: key_range / 2,
            warmup: duration / 5,
            duration,
            seed,
        }
    }
}

/// Derive worker `t`'s RNG seed from the run's base seed — shared by the
/// point and batched executors so both generate identical op streams for
/// a given `(seed, thread)` pair.
fn thread_seed(seed: u64, t: usize) -> u64 {
    seed ^ ((t as u64 + 1) << 17)
}

/// The phase scaffolding shared by [`run_scenario`] and
/// [`run_scenario_batched`]: spawn `threads` workers, release them through
/// one barrier, sleep the untimed warmup, raise `recording`, time
/// `duration`, raise `stop`, and join.  Returns each worker's result (in
/// thread order) plus the measured length of the recorded window.  Keeping
/// this in one place keeps the two executors' phase semantics identical by
/// construction.
fn drive_phases<T, F>(
    threads: usize,
    warmup: Duration,
    duration: Duration,
    worker: F,
) -> (Vec<T>, Duration)
where
    T: Send,
    F: Fn(usize, &AtomicBool, &AtomicBool) -> T + Sync,
{
    let recording = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let (worker, recording, stop, barrier) = (&worker, &recording, &stop, &barrier);
            handles.push(s.spawn(move || {
                barrier.wait();
                worker(t, recording, stop)
            }));
        }
        barrier.wait();
        std::thread::sleep(warmup);
        // ORDERING: Relaxed — phase flags polled by the workers in a loop; a
        // few ops attributed to the wrong phase are harmless, and the final
        // thread join synchronizes all per-thread results.
        recording.store(true, Ordering::Relaxed);
        let start = Instant::now();
        std::thread::sleep(duration);
        // ORDERING: Relaxed — see `recording` above.
        stop.store(true, Ordering::Relaxed);
        let elapsed = start.elapsed();
        let per_thread: Vec<T> =
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        (per_thread, elapsed)
    })
}

/// The conserved-sum check of a bank scenario.
#[derive(Debug, Clone, Copy)]
pub struct BankCheck {
    /// `accounts * INITIAL_BALANCE`.
    pub expected_sum: u128,
    /// Sum over all account words after the run.
    pub actual_sum: u128,
    /// Number of transfers that committed (warmup window included — those
    /// move money too).
    pub committed: u64,
}

impl BankCheck {
    /// True iff money was neither created nor destroyed.
    pub fn conserved(&self) -> bool {
        self.expected_sum == self.actual_sum
    }
}

/// The measured outcome of one scenario run.
#[derive(Debug)]
pub struct Outcome {
    /// Operations completed inside the recorded window.
    pub total_ops: u64,
    /// Operations that "succeeded" (see [`apply`]).
    pub ok_ops: u64,
    /// Wall-clock length of the recorded window.
    pub elapsed: Duration,
    /// Merged per-op latency histogram (nanoseconds), all operation kinds.
    pub hist: LatencyHistogram,
    /// Merged latency histogram of the `Op::Scan` operations alone
    /// (nanoseconds; empty when the scenario has no scan component) — scans
    /// are orders of magnitude longer than point ops, so their tail is
    /// invisible in the combined histogram.
    pub scan_hist: LatencyHistogram,
    /// Present iff the scenario uses the KCAS account bank.
    pub bank: Option<BankCheck>,
    /// Quiescent structural statistics, collected in the executor's
    /// teardown **after every worker thread has been joined** — `MapStats`
    /// is documented quiescent-only, so the executor owns the
    /// join-then-collect ordering as part of its contract (one extra
    /// traversal per trial, dwarfed by the per-trial prefill).
    pub final_stats: MapStats,
}

impl Outcome {
    /// Throughput in millions of operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Run one scenario against `map`: load the structure, warm up untimed,
/// then measure for `params.duration`, recording every operation's latency.
pub fn run_scenario<M: ConcurrentMap + ?Sized>(
    map: &M,
    sc: &Scenario,
    params: &RunParams,
) -> Outcome {
    // Load phase.
    let bank: Option<Vec<CasWord>> = if sc.uses_bank() {
        // Account metadata in the map, balances in the CasWord bank.
        Some(load_bank(map, sc.accounts))
    } else {
        mapapi::stress::prefill(
            map,
            params.key_range,
            params.prefill,
            mapapi::stress::prefill_seed(params.seed),
        );
        None
    };
    let key_range = if sc.uses_bank() { sc.accounts } else { params.key_range };
    let shared = SharedState::new(key_range);

    let (per_thread, elapsed) =
        drive_phases(params.threads, params.warmup, params.duration, |t, recording, stop| {
            let mut gen = OpGen::new(sc, key_range, thread_seed(params.seed, t));
            let bank = bank.as_deref();
            let mut hist = LatencyHistogram::new();
            let mut scan_hist = LatencyHistogram::new();
            let mut ops = 0u64;
            let mut ok = 0u64;
            let mut committed = 0u64;
            // ORDERING: Relaxed — stop/recording are phase flags polled in a
            // loop; thread join is the real synchronization point, and a few
            // stale iterations only blur the phase boundary, never the data.
            while !stop.load(Ordering::Relaxed) {
                let op = gen.next_op(&shared);
                let success;
                if recording.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    success = apply(map, bank, op);
                    let ns = t0.elapsed().as_nanos() as u64;
                    hist.record(ns);
                    if matches!(op, Op::Scan(..)) {
                        scan_hist.record(ns);
                    }
                    ops += 1;
                    ok += success as u64;
                } else {
                    success = apply(map, bank, op);
                }
                // Committed transfers are counted in the warmup window
                // too: they move money, so the conserved-sum check spans
                // every commit, not just the recorded ones.
                committed += (success && matches!(op, Op::Transfer { .. })) as u64;
            }
            (hist, scan_hist, ops, ok, committed)
        });
    // drive_phases joined every worker: from here on the map is quiescent,
    // which `stats()` requires.

    let mut hist = LatencyHistogram::new();
    let mut scan_hist = LatencyHistogram::new();
    let mut total_ops = 0u64;
    let mut ok_ops = 0u64;
    let mut committed = 0u64;
    for (h, sh, ops, ok, c) in &per_thread {
        hist.merge(h);
        scan_hist.merge(sh);
        total_ops += ops;
        ok_ops += ok;
        committed += c;
    }
    let bank_check = bank.map(|bank| {
        let guard = crossbeam_epoch::pin();
        BankCheck {
            expected_sum: sc.accounts as u128 * INITIAL_BALANCE as u128,
            actual_sum: bank.iter().map(|w| kcas::read(w, &guard) as u128).sum(),
            committed,
        }
    });
    let final_stats = map.stats();
    Outcome { total_ops, ok_ops, elapsed, hist, scan_hist, bank: bank_check, final_stats }
}

/// A backend that can apply a whole batch of operations at once — the
/// **service mode** hook.  The canonical implementation is the KV service's
/// client pool (`server::ServiceMap`), which encodes the batch as one
/// pipelined burst of request frames, flushes once, and reads the batched
/// responses; [`LoopBatch`] is the in-process reference that applies the
/// same batch as a plain loop, so the batched executor can be compared
/// against the point-op path on identical op streams.
pub trait BatchApply {
    /// Apply `ops` in order as one batch; returns how many succeeded (same
    /// success notion as [`apply`]).  Batches never contain
    /// [`Op::Transfer`] — the batched executor rejects bank scenarios.
    fn apply_batch(&self, ops: &[Op]) -> u64;
}

/// Reference [`BatchApply`] backend: a plain loop of point ops over any
/// map.  No pipelining — this is the baseline a wire-pipelined backend is
/// measured against.
pub struct LoopBatch<'a, M: ConcurrentMap + ?Sized>(pub &'a M);

impl<M: ConcurrentMap + ?Sized> BatchApply for LoopBatch<'_, M> {
    fn apply_batch(&self, ops: &[Op]) -> u64 {
        ops.iter().map(|&op| apply(self.0, None, op) as u64).sum()
    }
}

/// Run one scenario in **batched (service) mode**: identical phases to
/// [`run_scenario`] — load through `map`, warmup, timed run — but each
/// worker generates `depth` operations at a time and hands them to
/// `backend` as one batch.
///
/// Latency accounting follows the client's view of a pipelined request:
/// every operation in a batch is charged the **whole batch round-trip**
/// (an op's latency includes the time its batch spent queued and in
/// flight), so deeper pipelines trade per-op latency for throughput — the
/// exact curve `bench_service` sweeps.  Scan ops are additionally recorded
/// into the scan histogram, as in the point-op executor.
///
/// # Panics
/// Panics if `sc` uses the KCAS account bank (transfers are in-process by
/// construction and cannot be batched over a wire backend) or if
/// `depth == 0`.
pub fn run_scenario_batched<M, B>(
    map: &M,
    backend: &B,
    sc: &Scenario,
    params: &RunParams,
    depth: usize,
) -> Outcome
where
    M: ConcurrentMap + ?Sized,
    B: BatchApply + Sync + ?Sized,
{
    assert!(!sc.uses_bank(), "{}: bank scenarios cannot run batched", sc.name);
    assert!(depth >= 1, "batch depth must be at least 1");
    mapapi::stress::prefill(
        map,
        params.key_range,
        params.prefill,
        mapapi::stress::prefill_seed(params.seed),
    );
    let shared = SharedState::new(params.key_range);

    let (per_thread, elapsed) =
        drive_phases(params.threads, params.warmup, params.duration, |t, recording, stop| {
            let mut gen = OpGen::new(sc, params.key_range, thread_seed(params.seed, t));
            let mut hist = LatencyHistogram::new();
            let mut scan_hist = LatencyHistogram::new();
            let mut ops = 0u64;
            let mut ok = 0u64;
            let mut batch = Vec::with_capacity(depth);
            // ORDERING: Relaxed — phase flags polled in a loop (see above);
            // join synchronizes, stale iterations only blur phase boundaries.
            while !stop.load(Ordering::Relaxed) {
                batch.clear();
                for _ in 0..depth {
                    batch.push(gen.next_op(&shared));
                }
                if recording.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    ok += backend.apply_batch(&batch);
                    let ns = t0.elapsed().as_nanos() as u64;
                    for op in &batch {
                        hist.record(ns);
                        if matches!(op, Op::Scan(..)) {
                            scan_hist.record(ns);
                        }
                    }
                    ops += depth as u64;
                } else {
                    backend.apply_batch(&batch);
                }
            }
            (hist, scan_hist, ops, ok)
        });

    let mut hist = LatencyHistogram::new();
    let mut scan_hist = LatencyHistogram::new();
    let mut total_ops = 0u64;
    let mut ok_ops = 0u64;
    for (h, sh, ops, ok) in &per_thread {
        hist.merge(h);
        scan_hist.merge(sh);
        total_ops += ops;
        ok_ops += ok;
    }
    // Workers are joined: the map is quiescent for `stats()` (over a wire
    // backend this still holds — the server executes batches synchronously,
    // so no request is in flight once every client worker has returned).
    let final_stats = map.stats();
    Outcome { total_ops, ok_ops, elapsed, hist, scan_hist, bank: None, final_stats }
}

/// Apply `ops` operations of `sc` to `map` single-threadedly (no timing, no
/// phases) and return the number of successful operations.  This is the
/// Criterion-friendly entry point: fixed work instead of fixed duration.
/// Loading the map is the caller's responsibility (bank scenarios excepted:
/// the account metadata is inserted here because the bank is created here).
pub fn run_ops<M: ConcurrentMap + ?Sized>(
    map: &M,
    sc: &Scenario,
    key_range: Key,
    ops: u64,
    seed: u64,
) -> u64 {
    let key_range = if sc.uses_bank() { sc.accounts } else { key_range };
    let shared = SharedState::new(key_range);
    let bank: Option<Vec<CasWord>> = sc.uses_bank().then(|| load_bank(map, sc.accounts));
    let mut gen = OpGen::new(sc, key_range, seed);
    let mut ok = 0u64;
    for _ in 0..ops {
        ok += apply(map, bank.as_deref(), gen.next_op(&shared)) as u64;
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{all_scenarios, scenario};
    use mapapi::reference::LockedBTreeMap;

    #[test]
    fn opgen_respects_the_mix() {
        let sc = scenario("ycsb-b");
        let shared = SharedState::new(10_000);
        let mut gen = OpGen::new(&sc, 10_000, 1);
        let mut reads = 0u64;
        let n = 20_000;
        for _ in 0..n {
            if matches!(gen.next_op(&shared), Op::Read(_)) {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn transfer_ops_pick_distinct_accounts() {
        let sc = scenario("txn-transfer");
        let shared = SharedState::new(sc.accounts);
        let mut gen = OpGen::new(&sc, sc.accounts, 3);
        for _ in 0..5_000 {
            match gen.next_op(&shared) {
                Op::Transfer { from, to, amount } => {
                    assert_ne!(from, to);
                    assert!(from < sc.accounts && to < sc.accounts);
                    assert!((1..=3).contains(&amount));
                }
                other => panic!("txn-transfer generated {other:?}"),
            }
        }
    }

    #[test]
    fn every_scenario_runs_on_the_oracle() {
        for sc in all_scenarios() {
            let map = LockedBTreeMap::new();
            // run_ops leaves loading to the caller (Criterion setup does the
            // same through `bench::prefilled`).
            mapapi::stress::prefill(&map, 512, 256, 7);
            let ok = run_ops(&map, &sc, 512, 2_000, 7);
            assert!(ok > 0, "{}: no operation succeeded", sc.name);
        }
    }

    #[test]
    fn short_timed_run_produces_latencies() {
        let sc = scenario("ycsb-a");
        let map = LockedBTreeMap::new();
        let params = RunParams::standard(2, 512, Duration::from_millis(40), 0xABCD);
        let out = run_scenario(&map, &sc, &params);
        assert!(out.total_ops > 0);
        assert_eq!(out.hist.count(), out.total_ops);
        assert!(out.mops() > 0.0);
        let p = out.hist.percentiles();
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
    }

    #[test]
    fn scan_heavy_records_scan_latencies_and_quiescent_stats() {
        let sc = scenario("scan-heavy");
        let map = LockedBTreeMap::new();
        let params = RunParams::standard(2, 512, Duration::from_millis(40), 0xE5);
        let out = run_scenario(&map, &sc, &params);
        assert!(out.scan_hist.count() > 0, "no scans recorded");
        assert!(out.scan_hist.count() < out.total_ops, "scan hist should be a strict subset");
        let p = out.scan_hist.percentiles();
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
        // final_stats was collected after every worker joined, so it must
        // agree with a fresh quiescent traversal now.
        let now = map.stats();
        assert_eq!(out.final_stats.key_count, now.key_count);
        assert_eq!(out.final_stats.key_sum, now.key_sum);
    }

    #[test]
    fn point_scenarios_record_no_scan_latencies() {
        let sc = scenario("ycsb-a");
        let map = LockedBTreeMap::new();
        let params = RunParams::standard(1, 256, Duration::from_millis(25), 3);
        let out = run_scenario(&map, &sc, &params);
        assert_eq!(out.scan_hist.count(), 0);
    }

    #[test]
    fn scan_lengths_follow_the_scenario_distribution() {
        let sc = scenario("scan-heavy");
        let (min, max) = match sc.scan_len {
            Some(crate::spec::ScanLen::Uniform { min, max }) => (min, max),
            other => panic!("scan-heavy should draw uniform lengths, got {other:?}"),
        };
        let shared = SharedState::new(10_000);
        let mut gen = OpGen::new(&sc, 10_000, 9);
        let mut seen_min = false;
        let mut seen_max = false;
        for _ in 0..20_000 {
            if let Op::Scan(_, len) = gen.next_op(&shared) {
                assert!((min..=max).contains(&len), "scan length {len} outside [{min},{max}]");
                seen_min |= len == min;
                seen_max |= len == max;
            }
        }
        assert!(seen_min && seen_max, "uniform draw never hit an endpoint");
    }

    #[test]
    fn batched_runs_match_batch_accounting() {
        let sc = scenario("service-mixed");
        let map = LockedBTreeMap::new();
        let params = RunParams::standard(2, 512, Duration::from_millis(40), 0xBA7C);
        let out = run_scenario_batched(&map, &LoopBatch(&map), &sc, &params, 8);
        assert!(out.total_ops > 0);
        assert_eq!(out.total_ops % 8, 0, "ops are counted in whole batches");
        assert_eq!(out.hist.count(), out.total_ops);
        assert!(out.scan_hist.count() > 0, "service-mixed must record scan latencies");
        assert!(out.ok_ops <= out.total_ops);
        assert!(out.bank.is_none());
        // Quiescent stats collected after the join must match a fresh read.
        assert_eq!(out.final_stats.key_count, map.stats().key_count);
    }

    #[test]
    fn batch_depth_one_equals_point_mode_semantics() {
        let sc = scenario("ycsb-b");
        let map = LockedBTreeMap::new();
        let params = RunParams::standard(1, 256, Duration::from_millis(25), 0xD1);
        let out = run_scenario_batched(&map, &LoopBatch(&map), &sc, &params, 1);
        assert!(out.total_ops > 0);
        assert_eq!(out.hist.count(), out.total_ops);
    }

    #[test]
    fn loop_batch_counts_successes_like_apply() {
        let map = LockedBTreeMap::new();
        map.insert(1, 1);
        let ops = [Op::Read(1), Op::Read(2), Op::Insert(3), Op::Remove(9), Op::Scan(1, 4)];
        // read(1) hits, read(2) misses, insert(3) succeeds, remove(9)
        // fails, scan sees keys 1 and 3 => 3 successes.
        assert_eq!(LoopBatch(&map).apply_batch(&ops), 3);
    }

    #[test]
    #[should_panic(expected = "bank scenarios cannot run batched")]
    fn batched_executor_rejects_bank_scenarios() {
        let sc = scenario("txn-transfer");
        let map = LockedBTreeMap::new();
        let params = RunParams::standard(1, 64, Duration::from_millis(5), 1);
        let _ = run_scenario_batched(&map, &LoopBatch(&map), &sc, &params, 4);
    }

    #[test]
    fn transfer_conserves_the_bank_sum_single_threaded() {
        let sc = scenario("txn-transfer");
        let map = LockedBTreeMap::new();
        let params = RunParams::standard(1, 512, Duration::from_millis(30), 1);
        let out = run_scenario(&map, &sc, &params);
        let bank = out.bank.expect("txn-transfer must report a bank check");
        assert!(bank.conserved(), "sum {} != expected {}", bank.actual_sum, bank.expected_sum);
        assert!(bank.committed > 0);
    }
}
