//! Key-distribution samplers.
//!
//! Every sampler is deterministic from the `StdRng` it is given: the same
//! seed produces the same key sequence, which is what makes workload runs
//! reproducible under the `PATHCAS_SEED` knob (and what the determinism
//! proptests assert).  All samplers emit keys in `1..=key_range` except
//! [`Sampler::Latest`], which follows a monotonically growing insertion
//! frontier exactly like YCSB's `latest` distribution.
//!
//! The Zipfian sampler is the rejection-free O(1)-per-sample generator of
//! Gray et al. ("Quickly generating billion-record synthetic databases",
//! SIGMOD '94) as popularized by YCSB's `ZipfianGenerator`: the zeta
//! normalization constants are precomputed once in `O(n)`, after which each
//! sample is a single uniform draw pushed through a closed-form inverse.
//! Ranks are then *scrambled* over the key space with an FNV-1a hash (again
//! following YCSB) so the hottest keys are spread across the structure
//! instead of clustered at its left edge.

use std::sync::atomic::{AtomicU64, Ordering};

use mapapi::Key;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Default Zipfian skew; the YCSB constant.
pub const ZIPFIAN_THETA: f64 = 0.99;

/// A precomputed Zipfian rank generator over `0..n` with skew `theta`.
///
/// Sampling is rejection-free: one uniform draw, no loops (Gray et al.).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Precompute the zeta constants for `n` items with skew `theta`
    /// (`0 < theta < 1`; YCSB uses 0.99).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "Zipfian needs at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta }
    }

    /// `zeta(n, theta) = sum_{i=1..=n} 1 / i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Probability of the hottest rank (rank 0), `1 / zeta(n, theta)`.
    pub fn p_rank0(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Draw a rank in `0..n`; rank 0 is the most frequent.
    pub fn next_rank(&self, rng: &mut StdRng) -> u64 {
        // One uniform draw in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// FNV-1a over the 8 little-endian bytes of `x`; used to scramble Zipfian
/// ranks across the key space (the YCSB `FNVhash64` trick).
#[inline]
pub fn fnv1a(x: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The declarative distribution choices a [`crate::Scenario`] can name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistKind {
    /// Uniform over the whole key range.
    Uniform,
    /// Zipfian with the given skew, rank-scrambled over the key range.
    Zipfian {
        /// Skew parameter in `(0, 1)`; YCSB uses [`ZIPFIAN_THETA`].
        theta: f64,
    },
    /// A fraction of operations hits a small hot set at the front of the key
    /// range; the rest are uniform over the remaining (cold) keys.
    Hotspot {
        /// Size of the hot set (keys `1..=hot_keys`).
        hot_keys: u64,
        /// Per-mille of operations that target the hot set (990 = 99%).
        hot_permille: u32,
    },
    /// YCSB's `latest`: recency-skewed around a growing insertion frontier
    /// (newly inserted keys are the most popular).
    Latest {
        /// Skew of the recency Zipfian.
        theta: f64,
    },
}

/// Executor-owned state shared by every worker thread of one scenario run.
///
/// Currently this is the insertion frontier that the `latest` distribution
/// chases and that YCSB-D-style inserts advance.
#[derive(Debug)]
pub struct SharedState {
    /// The next key an insert operation will claim; `latest` reads sample
    /// backwards from (roughly) this frontier.
    pub insert_frontier: AtomicU64,
}

impl SharedState {
    /// A frontier starting just past the pre-filled key range.
    pub fn new(key_range: Key) -> Self {
        SharedState { insert_frontier: AtomicU64::new(key_range + 1) }
    }

    /// Claim a fresh key for an insert (monotone, never reused).
    pub fn claim_insert_key(&self) -> Key {
        // ORDERING: Relaxed — the RMW itself guarantees uniqueness of claimed
        // keys; no cross-key ordering is needed for a workload generator.
        self.insert_frontier.fetch_add(1, Ordering::Relaxed).min(mapapi::MAX_KEY)
    }

    /// The most recently claimed key (approximate under concurrency, exactly
    /// like YCSB's shared counter).
    pub fn latest_key(&self) -> Key {
        // ORDERING: Relaxed — an intentionally approximate read, matching
        // YCSB's shared-counter semantics.
        (self.insert_frontier.load(Ordering::Relaxed) - 1).max(1)
    }
}

/// A concrete sampler: a [`DistKind`] instantiated for one key range.
#[derive(Debug, Clone)]
pub enum Sampler {
    /// See [`DistKind::Uniform`].
    Uniform {
        /// Keys are drawn from `1..=key_range`.
        key_range: Key,
    },
    /// See [`DistKind::Zipfian`]; ranks are FNV-scrambled onto the range.
    Zipfian {
        /// The precomputed rank generator.
        zipf: Zipfian,
        /// Keys land in `1..=key_range`.
        key_range: Key,
    },
    /// See [`DistKind::Hotspot`].
    Hotspot {
        /// Keys `1..=hot_keys` form the hot set.
        hot_keys: u64,
        /// Per-mille of draws that hit the hot set.
        hot_permille: u32,
        /// Cold draws are uniform over `hot_keys+1..=key_range`.
        key_range: Key,
    },
    /// See [`DistKind::Latest`]; offsets from the shared frontier.
    Latest {
        /// Recency rank generator (rank 0 = newest key).
        zipf: Zipfian,
    },
}

impl Sampler {
    /// Instantiate `kind` for `key_range` (`key_range >= 2`).
    pub fn new(kind: DistKind, key_range: Key) -> Self {
        assert!(key_range >= 2, "need at least two keys");
        match kind {
            DistKind::Uniform => Sampler::Uniform { key_range },
            DistKind::Zipfian { theta } => {
                Sampler::Zipfian { zipf: Zipfian::new(key_range, theta), key_range }
            }
            DistKind::Hotspot { hot_keys, hot_permille } => {
                let hot_keys = hot_keys.min(key_range - 1);
                Sampler::Hotspot { hot_keys, hot_permille, key_range }
            }
            DistKind::Latest { theta } => {
                Sampler::Latest { zipf: Zipfian::new(key_range, theta) }
            }
        }
    }

    /// Draw the next key. `shared` supplies the insertion frontier for the
    /// `latest` distribution (ignored by the stationary distributions).
    pub fn next_key(&self, rng: &mut StdRng, shared: &SharedState) -> Key {
        match self {
            Sampler::Uniform { key_range } => rng.gen_range(1..=*key_range),
            Sampler::Zipfian { zipf, key_range } => {
                let rank = zipf.next_rank(rng);
                1 + fnv1a(rank) % *key_range
            }
            Sampler::Hotspot { hot_keys, hot_permille, key_range } => {
                if rng.gen_range(0..1000u32) < *hot_permille {
                    rng.gen_range(1..=*hot_keys)
                } else {
                    rng.gen_range(hot_keys + 1..=*key_range)
                }
            }
            Sampler::Latest { zipf } => {
                let newest = shared.latest_key();
                let back = zipf.next_rank(rng);
                newest.saturating_sub(back).max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample_n(s: &Sampler, seed: u64, n: usize) -> Vec<Key> {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = SharedState::new(1000);
        (0..n).map(|_| s.next_key(&mut rng, &shared)).collect()
    }

    #[test]
    fn samplers_stay_in_range() {
        for kind in [
            DistKind::Uniform,
            DistKind::Zipfian { theta: ZIPFIAN_THETA },
            DistKind::Hotspot { hot_keys: 64, hot_permille: 990 },
        ] {
            let s = Sampler::new(kind, 1000);
            for k in sample_n(&s, 7, 5000) {
                assert!((1..=1000).contains(&k), "{kind:?} produced {k}");
            }
        }
        // Latest never exceeds the frontier and never goes below 1.
        let s = Sampler::new(DistKind::Latest { theta: ZIPFIAN_THETA }, 1000);
        for k in sample_n(&s, 7, 5000) {
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn zipfian_rank0_probability_matches_theory() {
        let z = Zipfian::new(1000, ZIPFIAN_THETA);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let hits = (0..n).filter(|_| z.next_rank(&mut rng) == 0).count();
        let observed = hits as f64 / n as f64;
        let expected = z.p_rank0();
        assert!(
            (observed - expected).abs() < 0.015,
            "rank-0 frequency {observed:.4} vs theoretical {expected:.4}"
        );
    }

    #[test]
    fn hotspot_hits_hot_set_at_configured_rate() {
        let s = Sampler::new(DistKind::Hotspot { hot_keys: 64, hot_permille: 990 }, 100_000);
        let keys = sample_n(&s, 99, 50_000);
        let hot = keys.iter().filter(|&&k| k <= 64).count() as f64 / keys.len() as f64;
        assert!((hot - 0.99).abs() < 0.01, "hot fraction {hot}");
    }

    #[test]
    fn latest_tracks_the_frontier() {
        let s = Sampler::new(DistKind::Latest { theta: ZIPFIAN_THETA }, 1000);
        let shared = SharedState::new(1000);
        for _ in 0..100 {
            shared.claim_insert_key();
        }
        let mut rng = StdRng::seed_from_u64(5);
        let newest = shared.latest_key();
        assert_eq!(newest, 1100);
        let mut saw_near_frontier = false;
        for _ in 0..1000 {
            let k = s.next_key(&mut rng, &shared);
            assert!(k <= newest);
            if k > newest - 10 {
                saw_near_frontier = true;
            }
        }
        assert!(saw_near_frontier, "latest should favour recent keys");
    }
}
