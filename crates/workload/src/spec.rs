//! Declarative scenario specifications, modeled on the YCSB core workloads
//! (Cooper et al., SoCC '10) plus two PathCAS-specific scenarios.
//!
//! A [`Scenario`] names a key distribution and an operation mix in
//! per-mille weights.  "Update" follows the Setbench convention used by the
//! rest of this repository: an update is an insert-if-absent or a delete
//! with equal probability, which keeps the structure near its pre-filled
//! size.  "RMW" (YCSB-F) goes through [`mapapi::ConcurrentMap::rmw`] (the
//! PathCAS structures commit it atomically; the composed default is the
//! non-atomic read-then-write-back YCSB itself performs).  "Scan" calls the
//! native [`mapapi::ConcurrentMap::scan`] — a validated ordered range query,
//! with per-scan lengths drawn from the scenario's [`ScanLen`] distribution
//! (DESIGN.md §7).
//!
//! The four extra scenarios exercise exactly the axes where PathCAS's
//! validate-then-KCAS design should differentiate:
//!
//! * `txn-transfer` — atomic two-key read-modify-writes: a metadata lookup
//!   through `mapapi::get` composed with a 2-word [`kcas::execute`] over a
//!   shared account bank, with a conserved-sum linearizability check;
//! * `contended-hot-set` — 99% of operations on 64 keys, the hot-key regime
//!   where descriptor reuse and path validation are stress-tested;
//! * `scan-heavy` — 80% validated range scans with a tunable length
//!   distribution, the composite-read regime where scans must repeatedly
//!   re-validate against concurrent updates;
//! * `service-mixed` — every operation kind at once (reads, both update
//!   flavours, RMW, and short scans), sized for the **service mode**: over
//!   the wire, mixing fixed-size point responses with variable-size scan
//!   responses inside one pipeline is what stresses batching depth (see
//!   [`crate::exec::run_scenario_batched`] and DESIGN.md §8).

use crate::dist::{DistKind, ZIPFIAN_THETA};

/// Operation-mix weights in per-mille (the six weights sum to 1000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// `get`/`contains` lookups.
    pub read: u32,
    /// Insert-if-absent of a sampled key.
    pub insert: u32,
    /// Delete of a sampled key.
    pub remove: u32,
    /// YCSB-F read-modify-write via [`mapapi::ConcurrentMap::rmw`].
    pub rmw: u32,
    /// Native validated range scan ([`mapapi::ConcurrentMap::scan`]) whose
    /// length is drawn from the scenario's [`ScanLen`] distribution.
    pub scan: u32,
    /// Atomic 2-key KCAS transfer over the account bank.
    pub transfer: u32,
}

impl Mix {
    /// Check the per-mille weights sum to 1000.
    pub fn is_valid(&self) -> bool {
        self.read + self.insert + self.remove + self.rmw + self.scan + self.transfer == 1000
    }
}

/// Per-scan length distribution for scenarios with a scan component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanLen {
    /// Every scan touches exactly this many keys (YCSB-E's fixed short
    /// scan).
    Fixed(u64),
    /// Lengths drawn uniformly from `min..=max` per scan (YCSB's
    /// `maxscanlength` with the uniform `scanlengthdistribution`).
    Uniform {
        /// Smallest scan length (≥ 1).
        min: u64,
        /// Largest scan length (≥ `min`).
        max: u64,
    },
}

impl ScanLen {
    /// True iff every drawable length is at least 1.
    pub fn is_valid(&self) -> bool {
        match *self {
            ScanLen::Fixed(n) => n >= 1,
            ScanLen::Uniform { min, max } => min >= 1 && max >= min,
        }
    }

    /// Parse `"16"` as a fixed length or `"8:64"` as a uniform range — the
    /// format of the `PATHCAS_SCAN_LEN` knob.
    pub fn parse(s: &str) -> Option<ScanLen> {
        let sl = match s.split_once(':') {
            Some((lo, hi)) => ScanLen::Uniform { min: lo.trim().parse().ok()?, max: hi.trim().parse().ok()? },
            None => ScanLen::Fixed(s.trim().parse().ok()?),
        };
        sl.is_valid().then_some(sl)
    }
}

/// How inserts pick their keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertKind {
    /// Insert a key drawn from the scenario's distribution (paired with
    /// removes, this keeps the structure near its pre-filled size).
    Sampled,
    /// Claim a fresh monotonically increasing key (YCSB-D/E ingest), which
    /// also advances the frontier the `latest` distribution chases.
    Fresh,
}

/// One benchmark scenario: a name, a distribution, and an operation mix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable identifier used in tables and `BENCH_workloads.json`.
    pub name: &'static str,
    /// One-line description for docs and `--list` style output.
    pub summary: &'static str,
    /// Key distribution for reads/updates/rmw/scan-starts.
    pub dist: DistKind,
    /// Operation mix (per-mille).
    pub mix: Mix,
    /// Key selection policy for inserts.
    pub insert_kind: InsertKind,
    /// Scan-length distribution (`None` iff `mix.scan == 0`).
    pub scan_len: Option<ScanLen>,
    /// Number of accounts in the KCAS bank (only used when
    /// `mix.transfer > 0`).
    pub accounts: u64,
}

impl Scenario {
    /// True if any operation of this scenario uses the KCAS account bank.
    pub fn uses_bank(&self) -> bool {
        self.mix.transfer > 0
    }

    /// Replace the scan-length distribution (builder style) — the
    /// `PATHCAS_SCAN_LEN` knob rewrites `scan-heavy` through this.
    pub fn with_scan_len(mut self, scan_len: ScanLen) -> Self {
        assert!(scan_len.is_valid(), "{}: invalid scan length", self.name);
        self.scan_len = Some(scan_len);
        self
    }
}

/// Initial balance of every account in the `txn-transfer` bank; the
/// conserved quantity the linearizability check sums.
pub const INITIAL_BALANCE: u64 = 1_000;

/// The full scenario suite: YCSB A–F plus the two PathCAS-specific
/// scenarios. Order matches the README table.
pub fn all_scenarios() -> Vec<Scenario> {
    let zipf = DistKind::Zipfian { theta: ZIPFIAN_THETA };
    let none = Mix { read: 0, insert: 0, remove: 0, rmw: 0, scan: 0, transfer: 0 };
    vec![
        Scenario {
            name: "ycsb-a",
            summary: "update heavy: 50% read / 50% update, zipfian",
            dist: zipf,
            mix: Mix { read: 500, insert: 250, remove: 250, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: None,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-b",
            summary: "read mostly: 95% read / 5% update, zipfian",
            dist: zipf,
            mix: Mix { read: 950, insert: 25, remove: 25, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: None,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-c",
            summary: "read only: 100% read, zipfian",
            dist: zipf,
            mix: Mix { read: 1000, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: None,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-d",
            summary: "read latest: 95% read / 5% fresh insert, latest",
            dist: DistKind::Latest { theta: ZIPFIAN_THETA },
            mix: Mix { read: 950, insert: 50, ..none },
            insert_kind: InsertKind::Fresh,
            scan_len: None,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-e",
            summary: "short scans: 95% scan(16) / 5% fresh insert, zipfian",
            dist: zipf,
            mix: Mix { scan: 950, insert: 50, ..none },
            insert_kind: InsertKind::Fresh,
            scan_len: Some(ScanLen::Fixed(16)),
            accounts: 0,
        },
        Scenario {
            name: "ycsb-f",
            summary: "read-modify-write: 50% read / 50% rmw, zipfian",
            dist: zipf,
            mix: Mix { read: 500, rmw: 500, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: None,
            accounts: 0,
        },
        Scenario {
            name: "txn-transfer",
            summary: "atomic 2-key transfers: mapapi::get + 2-word kcas::execute",
            dist: DistKind::Uniform,
            mix: Mix { transfer: 1000, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: None,
            accounts: 1024,
        },
        Scenario {
            name: "contended-hot-set",
            summary: "99% of ops on 64 keys: 50% read / 50% update",
            dist: DistKind::Hotspot { hot_keys: 64, hot_permille: 990 },
            mix: Mix { read: 500, insert: 250, remove: 250, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: None,
            accounts: 0,
        },
        Scenario {
            name: "scan-heavy",
            summary: "range heavy: 80% scan(len~U[8,64]) / 10% read / 10% update, zipfian",
            dist: zipf,
            mix: Mix { read: 100, insert: 50, remove: 50, scan: 800, ..none },
            // Sampled updates keep the structure near its pre-filled size, so
            // scans repeatedly collide with in-place churn — the regime that
            // stresses per-path validation and retry.
            insert_kind: InsertKind::Sampled,
            scan_len: Some(ScanLen::Uniform { min: 8, max: 64 }),
            accounts: 0,
        },
        Scenario {
            name: "service-mixed",
            summary: "service pipeline stress: 60% read / 20% update / 10% rmw / 10% scan(8), zipfian",
            dist: zipf,
            // Every op kind in one mix: a pipelined batch interleaves
            // fixed-size point responses with variable-size scan responses,
            // which is precisely what exercises response batching.
            mix: Mix { read: 600, insert: 100, remove: 100, rmw: 100, scan: 100, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: Some(ScanLen::Fixed(8)),
            accounts: 0,
        },
        Scenario {
            name: "read-replica",
            summary: "replicated service: 92% read / 4% update / 4% scan(16) — reads fan out to followers, writes go to the primary",
            dist: zipf,
            // Read-dominated on purpose: the read side is what followers
            // scale, while the write side funnels through the primary and
            // its change stream.  No RMW — over a replica set the workload's
            // read-back check would race follower staleness by design.
            mix: Mix { read: 920, insert: 20, remove: 20, scan: 40, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: Some(ScanLen::Fixed(16)),
            accounts: 0,
        },
    ]
}

/// Look up one scenario by name.
///
/// # Panics
/// Panics if the name is unknown ([`all_scenarios`] lists the valid names).
pub fn scenario(name: &str) -> Scenario {
    all_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown scenario '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_valid() {
        let all = all_scenarios();
        let names: Vec<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f", "txn-transfer",
             "contended-hot-set", "scan-heavy", "service-mixed", "read-replica"]
        );
        for s in &all {
            assert!(s.mix.is_valid(), "{}: mix must sum to 1000", s.name);
            assert_eq!(s.scan_len.is_some(), s.mix.scan > 0, "{}: scan_len iff scans", s.name);
            if let Some(sl) = s.scan_len {
                assert!(sl.is_valid(), "{}: scan lengths must be >= 1", s.name);
            }
            if s.uses_bank() {
                assert!(s.accounts >= 2, "{}: transfers need two accounts", s.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(scenario("ycsb-f").mix.rmw, 500);
    }

    #[test]
    fn scan_len_parses_and_validates() {
        assert_eq!(ScanLen::parse("16"), Some(ScanLen::Fixed(16)));
        assert_eq!(ScanLen::parse("8:64"), Some(ScanLen::Uniform { min: 8, max: 64 }));
        assert_eq!(ScanLen::parse("0"), None);
        assert_eq!(ScanLen::parse("9:4"), None);
        assert_eq!(ScanLen::parse("abc"), None);
        let sc = scenario("scan-heavy").with_scan_len(ScanLen::Fixed(100));
        assert_eq!(sc.scan_len, Some(ScanLen::Fixed(100)));
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics() {
        let _ = scenario("ycsb-z");
    }
}
