//! Declarative scenario specifications, modeled on the YCSB core workloads
//! (Cooper et al., SoCC '10) plus two PathCAS-specific scenarios.
//!
//! A [`Scenario`] names a key distribution and an operation mix in
//! per-mille weights.  "Update" follows the Setbench convention used by the
//! rest of this repository: an update is an insert-if-absent or a delete
//! with equal probability, which keeps the structure near its pre-filled
//! size.  "RMW" (YCSB-F) is the non-atomic read-then-write-back composition
//! YCSB itself performs, exposed through [`mapapi::ConcurrentMap::rmw`].
//! "Scan" is approximated by `scan_len` successive point lookups because
//! [`mapapi::ConcurrentMap`] has no ordered iteration (DESIGN.md §6).
//!
//! The two extra scenarios exercise exactly the axes where PathCAS's
//! validate-then-KCAS design should differentiate:
//!
//! * `txn-transfer` — atomic two-key read-modify-writes: a metadata lookup
//!   through `mapapi::get` composed with a 2-word [`kcas::execute`] over a
//!   shared account bank, with a conserved-sum linearizability check;
//! * `contended-hot-set` — 99% of operations on 64 keys, the hot-key regime
//!   where descriptor reuse and path validation are stress-tested.

use crate::dist::{DistKind, ZIPFIAN_THETA};

/// Operation-mix weights in per-mille (the six weights sum to 1000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// `get`/`contains` lookups.
    pub read: u32,
    /// Insert-if-absent of a sampled key.
    pub insert: u32,
    /// Delete of a sampled key.
    pub remove: u32,
    /// YCSB-F read-modify-write via [`mapapi::ConcurrentMap::rmw`].
    pub rmw: u32,
    /// Short forward scan of `scan_len` keys (successive lookups).
    pub scan: u32,
    /// Atomic 2-key KCAS transfer over the account bank.
    pub transfer: u32,
}

impl Mix {
    /// Check the per-mille weights sum to 1000.
    pub fn is_valid(&self) -> bool {
        self.read + self.insert + self.remove + self.rmw + self.scan + self.transfer == 1000
    }
}

/// How inserts pick their keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertKind {
    /// Insert a key drawn from the scenario's distribution (paired with
    /// removes, this keeps the structure near its pre-filled size).
    Sampled,
    /// Claim a fresh monotonically increasing key (YCSB-D/E ingest), which
    /// also advances the frontier the `latest` distribution chases.
    Fresh,
}

/// One benchmark scenario: a name, a distribution, and an operation mix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable identifier used in tables and `BENCH_workloads.json`.
    pub name: &'static str,
    /// One-line description for docs and `--list` style output.
    pub summary: &'static str,
    /// Key distribution for reads/updates/rmw/scan-starts.
    pub dist: DistKind,
    /// Operation mix (per-mille).
    pub mix: Mix,
    /// Key selection policy for inserts.
    pub insert_kind: InsertKind,
    /// Number of successive keys a scan touches.
    pub scan_len: u64,
    /// Number of accounts in the KCAS bank (only used when
    /// `mix.transfer > 0`).
    pub accounts: u64,
}

impl Scenario {
    /// True if any operation of this scenario uses the KCAS account bank.
    pub fn uses_bank(&self) -> bool {
        self.mix.transfer > 0
    }
}

/// Initial balance of every account in the `txn-transfer` bank; the
/// conserved quantity the linearizability check sums.
pub const INITIAL_BALANCE: u64 = 1_000;

/// The full scenario suite: YCSB A–F plus the two PathCAS-specific
/// scenarios. Order matches the README table.
pub fn all_scenarios() -> Vec<Scenario> {
    let zipf = DistKind::Zipfian { theta: ZIPFIAN_THETA };
    let none = Mix { read: 0, insert: 0, remove: 0, rmw: 0, scan: 0, transfer: 0 };
    vec![
        Scenario {
            name: "ycsb-a",
            summary: "update heavy: 50% read / 50% update, zipfian",
            dist: zipf,
            mix: Mix { read: 500, insert: 250, remove: 250, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: 0,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-b",
            summary: "read mostly: 95% read / 5% update, zipfian",
            dist: zipf,
            mix: Mix { read: 950, insert: 25, remove: 25, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: 0,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-c",
            summary: "read only: 100% read, zipfian",
            dist: zipf,
            mix: Mix { read: 1000, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: 0,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-d",
            summary: "read latest: 95% read / 5% fresh insert, latest",
            dist: DistKind::Latest { theta: ZIPFIAN_THETA },
            mix: Mix { read: 950, insert: 50, ..none },
            insert_kind: InsertKind::Fresh,
            scan_len: 0,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-e",
            summary: "short scans: 95% scan(16) / 5% fresh insert, zipfian",
            dist: zipf,
            mix: Mix { scan: 950, insert: 50, ..none },
            insert_kind: InsertKind::Fresh,
            scan_len: 16,
            accounts: 0,
        },
        Scenario {
            name: "ycsb-f",
            summary: "read-modify-write: 50% read / 50% rmw, zipfian",
            dist: zipf,
            mix: Mix { read: 500, rmw: 500, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: 0,
            accounts: 0,
        },
        Scenario {
            name: "txn-transfer",
            summary: "atomic 2-key transfers: mapapi::get + 2-word kcas::execute",
            dist: DistKind::Uniform,
            mix: Mix { transfer: 1000, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: 0,
            accounts: 1024,
        },
        Scenario {
            name: "contended-hot-set",
            summary: "99% of ops on 64 keys: 50% read / 50% update",
            dist: DistKind::Hotspot { hot_keys: 64, hot_permille: 990 },
            mix: Mix { read: 500, insert: 250, remove: 250, ..none },
            insert_kind: InsertKind::Sampled,
            scan_len: 0,
            accounts: 0,
        },
    ]
}

/// Look up one scenario by name.
///
/// # Panics
/// Panics if the name is unknown ([`all_scenarios`] lists the valid names).
pub fn scenario(name: &str) -> Scenario {
    all_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown scenario '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_valid() {
        let all = all_scenarios();
        let names: Vec<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f", "txn-transfer",
             "contended-hot-set"]
        );
        for s in &all {
            assert!(s.mix.is_valid(), "{}: mix must sum to 1000", s.name);
            if s.mix.scan > 0 {
                assert!(s.scan_len > 0, "{}: scans need a length", s.name);
            }
            if s.uses_bank() {
                assert!(s.accounts >= 2, "{}: transfers need two accounts", s.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(scenario("ycsb-f").mix.rmw, 500);
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics() {
        let _ = scenario("ycsb-z");
    }
}
