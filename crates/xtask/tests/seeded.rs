//! End-to-end acceptance for the analysis pass: a scratch workspace seeded
//! with one violation of each rule yields exactly those findings, and a
//! clean seeded tree yields none — so a zero exit on the real tree means
//! the rules actually ran.

use std::fs;
use std::path::Path;

use xtask::{analyze, Rule};

fn write(root: &Path, rel: &str, content: &str) {
    let p = root.join(rel);
    fs::create_dir_all(p.parent().unwrap()).unwrap();
    fs::write(p, content).unwrap();
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-seeded-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn seeded_violations_are_each_reported() {
    let root = scratch("dirty");
    write(
        &root,
        "crates/kcas/src/lib.rs",
        "use std::sync::atomic::AtomicU64;\n\nfn f() {\n    unsafe { g() }\n}\n",
    );
    write(
        &root,
        "crates/telemetry/src/lib.rs",
        "fn f(a: &A) {\n    a.load(Ordering::Relaxed);\n}\n",
    );
    write(&root, "crates/server/src/lib.rs", "fn f() {\n    x.unwrap();\n}\n");
    write(
        &root,
        "crates/server/src/reactor.rs",
        "fn g(w: &mut W) {\n    let span = telemetry::trace::begin(PHASE_FLUSH);\n    let _ = w.flush();\n    drop(span);\n}\n",
    );

    let vs = analyze(&root).unwrap();
    let count = |r: Rule| vs.iter().filter(|v| v.rule == r).count();
    assert_eq!(count(Rule::Facade), 1, "all findings: {vs:#?}");
    assert_eq!(count(Rule::Safety), 1, "all findings: {vs:#?}");
    assert_eq!(count(Rule::Ordering), 1, "all findings: {vs:#?}");
    assert_eq!(count(Rule::Unwrap), 1, "all findings: {vs:#?}");
    assert_eq!(count(Rule::SpanGuard), 1, "all findings: {vs:#?}");
    assert_eq!(vs.len(), 5, "all findings: {vs:#?}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn clean_seeded_tree_reports_nothing() {
    let root = scratch("clean");
    write(
        &root,
        "crates/kcas/src/lib.rs",
        concat!(
            "use crate::sync::AtomicU64;\n\n",
            "fn f() {\n",
            "    // SAFETY: g is called under the conditions its contract names.\n",
            "    unsafe { g() }\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() {\n        unsafe { g() }\n    }\n",
            "}\n",
        ),
    );
    write(
        &root,
        "crates/kcas/src/sync.rs",
        "pub(crate) use std::sync::atomic::AtomicU64;\n",
    );
    write(
        &root,
        "crates/telemetry/src/lib.rs",
        "fn f(a: &A) {\n    // ORDERING: Relaxed — diagnostic counter only.\n    a.load(Ordering::Relaxed);\n}\n",
    );
    write(
        &root,
        "crates/server/src/lib.rs",
        "fn f() {\n    x.unwrap_or_default();\n    y.lock().unwrap_or_else(|e| e.into_inner());\n}\n",
    );
    write(
        &root,
        "crates/server/src/reactor.rs",
        concat!(
            "fn g(w: &mut W) {\n",
            "    {\n",
            "        let _decode_span = telemetry::trace::begin(PHASE_DECODE);\n",
            "        decode(p);\n",
            "    }\n",
            "    let span = telemetry::trace::begin(PHASE_RESP);\n",
            "    encode(&mut buf);\n",
            "    drop(span);\n",
            "    let _ = w.flush();\n",
            "}\n",
        ),
    );

    let vs = analyze(&root).unwrap();
    assert!(vs.is_empty(), "unexpected findings: {vs:#?}");
    let _ = fs::remove_dir_all(&root);
}

/// The shipped tree itself is clean — the same check CI runs via
/// `cargo xtask analyze`, kept here so plain `cargo test` covers it too.
#[test]
fn shipped_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let vs = analyze(&root).unwrap();
    assert!(vs.is_empty(), "xtask analyze findings in the shipped tree:\n{}",
        vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n"));
}
