//! `cargo xtask <task>` — repo-local developer tasks (see `xtask` lib docs).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask analyze [--root <workspace-root>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(task) = args.next() else {
        return usage();
    };
    if task != "analyze" {
        eprintln!("xtask: unknown task `{task}`");
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            _ => return usage(),
        }
    }
    // cargo runs the binary from the workspace root by default; --root
    // exists for the seeded-violation tests and CI sandboxes.
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match xtask::analyze(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask analyze: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask analyze: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            ExitCode::from(2)
        }
    }
}
