//! The `cargo xtask analyze` concurrency lint pass (DESIGN.md §12).
//!
//! Four repo-specific rules that `rustc`/`clippy` cannot express, enforced
//! over every workspace crate's `src/` tree (`crates/*/src/**/*.rs` —
//! vendored third-party code under `vendor/` is out of scope):
//!
//! 1. **`unsafe` needs `// SAFETY:`** — every `unsafe` block, fn, or impl
//!    must carry a `SAFETY` justification (a `// SAFETY:` comment or a
//!    `# Safety` doc section) on the same line, in the contiguous
//!    comment/attribute block above it, or within the preceding
//!    [`CONTEXT_LINES`] lines (multi-line statements put the comment above
//!    the statement head, not the `unsafe` token).
//! 2. **`Ordering::Relaxed` needs `// ORDERING:`** — every relaxed atomic
//!    access must carry an `ORDERING` comment in the same window. The
//!    per-crate `sync.rs` facades are exempt (they only re-export names).
//! 3. **No `.unwrap()` / `.expect(` in `crates/server`** — the long-running
//!    server must degrade, not abort; non-test server code may not use
//!    either. (`unwrap_or*` is fine and not matched.)
//! 4. **No `std::sync::atomic` outside the facade** — in facade-covered
//!    crates ([`FACADE_CRATES`]) only `sync.rs` may name `std::sync::atomic`;
//!    everything else must import through `crate::sync` so the loom-shim
//!    build checks the production code (DESIGN.md §12).
//! 5. **No span guard across a blocking call** — a live
//!    `telemetry::trace::begin` guard binding (tracked from its `let` until
//!    an explicit `drop(<name>)` or its enclosing block closes) may not
//!    coexist on a line with a blocking-shaped call
//!    ([`BLOCKING_TOKENS`]: socket/file reads and writes, flushes, lock
//!    acquisition, waits, joins, channel receives, accepts, sleeps).  A
//!    span's drop stamps its end time, so a guard held across a block
//!    measures the kernel, not the phase — blocking phases must use
//!    explicit timestamps + `record_span` instead (DESIGN.md §13).
//!
//! Test code is skipped: `#[cfg(test)]`-gated modules (brace-tracked),
//! files under `tests/`, and the `models.rs` model suites (compiled only
//! under `cfg(all(test, pathcas_loom))`). A finding can be waived on a
//! specific line with `// xtask: allow(<rule>)` where `<rule>` is one of
//! `safety`, `ordering`, `unwrap`, `facade`, `spanguard`.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// How far above a flagged line a justification comment may sit (in
/// addition to the contiguous comment/attribute block directly above).
pub const CONTEXT_LINES: usize = 12;

/// Crates whose atomics must go through their `sync.rs` facade so the
/// `pathcas_loom` build model-checks the production source.
pub const FACADE_CRATES: &[&str] = &["kcas", "telemetry", "replica"];

/// Crates where `.unwrap()` / `.expect(` are forbidden outside tests.
pub const NO_UNWRAP_CRATES: &[&str] = &["server"];

/// Call shapes that can block the calling thread; a live span guard on the
/// same line is a latency-attribution bug (rule 5).  Substring-matched
/// against comment-stripped code, so `.write_all(` does not also fire the
/// `.write(` token.
pub const BLOCKING_TOKENS: &[&str] = &[
    ".read(",
    ".read_exact(",
    ".read_to_end(",
    ".write(",
    ".write_all(",
    ".flush(",
    ".lock(",
    ".wait(",
    ".join(",
    ".recv(",
    ".accept(",
    "sleep(",
];

/// One finding of the analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    Safety,
    Ordering,
    Unwrap,
    Facade,
    SpanGuard,
}

impl Rule {
    fn allow_token(self) -> &'static str {
        match self {
            Rule::Safety => "safety",
            Rule::Ordering => "ordering",
            Rule::Unwrap => "unwrap",
            Rule::Facade => "facade",
            Rule::SpanGuard => "spanguard",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.allow_token(),
            self.message
        )
    }
}

/// Analyze every `crates/*/src` tree under `root` (the workspace root).
/// Returns all findings, stable-ordered by path then line.
pub fn analyze(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let krate = entry?.path();
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let crate_name = crate_of(root, f);
        let text = fs::read_to_string(f)?;
        analyze_file(f, &crate_name, &text, &mut out);
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn crate_of(root: &Path, file: &Path) -> String {
    file.strip_prefix(root.join("crates"))
        .ok()
        .and_then(|rel| rel.components().next())
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn file_name(p: &Path) -> &str {
    p.file_name().and_then(|n| n.to_str()).unwrap_or("")
}

/// Strip `//` comments and (crudely) string literals from a line so rule
/// matching never fires on text inside either. Good enough for this
/// codebase's style; raw strings spanning lines are not handled (none of
/// the rules' tokens appear in any).
fn code_of(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '\'' => {
                // A char literal (possibly escaped); lifetimes ('a) have no
                // closing quote and fall through harmlessly.
                out.push('\'');
                if let Some(&n) = chars.peek() {
                    if n == '\\' {
                        chars.next();
                        chars.next();
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                        }
                    } else if chars.clone().nth(1) == Some('\'') {
                        chars.next();
                        chars.next();
                    }
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn is_comment_or_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
}

/// True if `marker` (case-insensitive) appears in *comment text* on the
/// flagged line, in the contiguous comment/attribute block above it, or
/// within the preceding [`CONTEXT_LINES`] lines. Only the part of a line
/// from its first `//` counts, so code like `Ordering::Relaxed` can never
/// justify itself.
fn justified(lines: &[&str], idx: usize, marker: &str) -> bool {
    let has = |s: &str| {
        s.find("//")
            .is_some_and(|i| s[i..].to_ascii_lowercase().contains(marker))
    };
    if has(lines[idx]) {
        return true;
    }
    let mut j = idx;
    while j > 0 && is_comment_or_attr(lines[j - 1]) {
        j -= 1;
        if has(lines[j]) {
            return true;
        }
    }
    lines[idx.saturating_sub(CONTEXT_LINES)..idx].iter().any(|l| has(l))
}

fn allowed(line: &str, rule: Rule) -> bool {
    line.contains("xtask: allow(") && line.contains(rule.allow_token())
}

/// Tracks `#[cfg(test)] mod … { … }` regions so they can be skipped.
struct TestModTracker {
    /// Brace depth at which the innermost test module closes, if inside one.
    close_depth: Option<usize>,
    depth: usize,
    /// A `#[cfg(test)]`-ish attribute was seen and we are waiting for the
    /// `mod` item it gates.
    pending_cfg: bool,
}

impl TestModTracker {
    fn new() -> Self {
        TestModTracker { close_depth: None, depth: 0, pending_cfg: false }
    }

    /// Feed one (comment-stripped) line; returns true if the line is inside
    /// (or opens) a test-gated module.
    fn feed(&mut self, code: &str) -> bool {
        let trimmed = code.trim_start();
        if trimmed.starts_with("#[cfg(") && trimmed.contains("test") && !trimmed.contains("not(test") {
            self.pending_cfg = true;
            return true;
        }
        let mut in_test = self.close_depth.is_some();
        if self.pending_cfg && trimmed.starts_with("mod ") {
            if self.close_depth.is_none() && code.contains('{') {
                self.close_depth = Some(self.depth);
            }
            self.pending_cfg = false;
            in_test = true;
        } else if self.pending_cfg && !trimmed.is_empty() && !is_comment_or_attr(trimmed) {
            // The cfg gated something other than a module (an import, a
            // function, an expression attr) — treat just that item line as
            // test-gated, then resume.
            self.pending_cfg = false;
            in_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => self.depth += 1,
                '}' => {
                    self.depth = self.depth.saturating_sub(1);
                    if self.close_depth == Some(self.depth) {
                        self.close_depth = None;
                    }
                }
                _ => {}
            }
        }
        in_test
    }
}

fn analyze_file(path: &Path, krate: &str, text: &str, out: &mut Vec<Violation>) {
    let fname = file_name(path);
    // The model suites are compiled only under cfg(all(test, pathcas_loom));
    // the per-crate facades re-export std::sync::atomic by design.
    if fname == "models.rs" {
        return;
    }
    let is_facade_file = fname == "sync.rs";
    let lines: Vec<&str> = text.lines().collect();
    let codes: Vec<String> = lines.iter().map(|l| code_of(l)).collect();
    let mut tracker = TestModTracker::new();
    let facade_crate = FACADE_CRATES.contains(&krate);
    let no_unwrap_crate = NO_UNWRAP_CRATES.contains(&krate);
    // Rule 5 state: live span-guard bindings as (name, declaring brace
    // depth).  A guard dies at an explicit `drop(<name>)` or when its
    // enclosing block closes.  The depth counter feeds on every line —
    // test code included — so brace bookkeeping never desynchronizes;
    // the *checks* are still gated on `!in_test` below.
    let mut guard_depth = 0usize;
    let mut guards: Vec<(String, usize)> = Vec::new();

    for (i, code) in codes.iter().enumerate() {
        let in_test = tracker.feed(code);
        let raw = lines[i];
        let lineno = i + 1;

        guards.retain(|g| !code.contains(&format!("drop({})", g.0)));
        if !in_test && !guards.is_empty() && !allowed(raw, Rule::SpanGuard) {
            if let Some(tok) = BLOCKING_TOKENS.iter().copied().find(|t| code.contains(t)) {
                let name = guards.last().map(|g| g.0.as_str()).unwrap_or("?");
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: lineno,
                    rule: Rule::SpanGuard,
                    message: format!(
                        "span guard `{name}` held across blocking call `{tok}` (blocking phases must use explicit timestamps + `record_span`)"
                    ),
                });
            }
        }
        if !in_test && code.contains("trace::begin(") {
            if let Some(name) = span_guard_binding(code) {
                guards.push((name, guard_depth));
            }
        }
        for c in code.chars() {
            match c {
                '{' => guard_depth += 1,
                '}' => {
                    guard_depth = guard_depth.saturating_sub(1);
                    guards.retain(|g| g.1 <= guard_depth);
                }
                _ => {}
            }
        }

        if in_test {
            continue;
        }

        if contains_unsafe_item(code)
            && !justified(&lines, i, "safety:")
            && !justified(&lines, i, "# safety")
            && !allowed(raw, Rule::Safety)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::Safety,
                message: "`unsafe` without a `// SAFETY:` justification".into(),
            });
        }

        if !is_facade_file
            && code.contains("Ordering::Relaxed")
            && !justified(&lines, i, "ordering:")
            && !allowed(raw, Rule::Ordering)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::Ordering,
                message: "`Ordering::Relaxed` without a `// ORDERING:` justification".into(),
            });
        }

        if no_unwrap_crate
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(raw, Rule::Unwrap)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::Unwrap,
                message: "`.unwrap()`/`.expect()` in server code (must degrade, not abort)".into(),
            });
        }

        if facade_crate
            && !is_facade_file
            && code.contains("std::sync::atomic")
            && !allowed(raw, Rule::Facade)
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: lineno,
                rule: Rule::Facade,
                message: format!(
                    "direct `std::sync::atomic` use in facade-covered crate `{krate}` (import through `crate::sync` so the pathcas_loom build checks this code)"
                ),
            });
        }
    }
}

/// The binding name a `let <name> = …trace::begin(…)` line introduces, if
/// any.  A `let _ = …` (or a non-`let` use) makes the guard a temporary
/// dropped at the end of its statement — nothing to track.
fn span_guard_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("if let ").or_else(|| t.strip_prefix("let "))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("Some(").unwrap_or(rest).trim_start();
    let name: String =
        rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// Does this (comment- and string-stripped) line introduce an unsafe block,
/// fn, impl, or trait? Matches the `unsafe` keyword as a standalone token.
fn contains_unsafe_item(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = !after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(krate: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        analyze_file(Path::new("lib.rs"), krate, src, &mut out);
        out
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_safety_comment_clears_it() {
        let bad = "fn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(run("kcas", bad).len(), 1);
        let good = "fn f() {\n    // SAFETY: g upholds its contract here.\n    unsafe { g() }\n}\n";
        assert!(run("kcas", good).is_empty());
    }

    #[test]
    fn doc_safety_section_clears_unsafe_fn() {
        let good = "/// Does things.\n///\n/// # Safety\n/// Caller must not.\npub unsafe fn f() {}\n";
        assert!(run("kcas", good).is_empty());
    }

    #[test]
    fn relaxed_needs_ordering_comment() {
        let bad = "fn f(a: &AtomicU64) {\n    a.load(Ordering::Relaxed);\n}\n";
        assert_eq!(run("telemetry", bad).len(), 1);
        let good = "fn f(a: &AtomicU64) {\n    // ORDERING: Relaxed - diagnostic only.\n    a.load(Ordering::Relaxed);\n}\n";
        assert!(run("telemetry", good).is_empty());
    }

    #[test]
    fn ordering_comment_may_sit_above_a_multiline_statement() {
        let good = "fn f(a: &AtomicU64) {\n    // ORDERING: Relaxed claim CAS; atomicity only.\n    if x\n        || a\n            .compare_exchange(c, o, Ordering::Relaxed, Ordering::Relaxed)\n            .is_err()\n    {}\n}\n";
        assert!(run("telemetry", good).is_empty());
    }

    #[test]
    fn unwrap_forbidden_in_server_only() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"nope\");\n    z.unwrap_or_default();\n}\n";
        assert_eq!(run("server", src).len(), 2);
        assert!(run("kcas", src).is_empty());
    }

    #[test]
    fn facade_bypass_flagged_in_facade_crates_only() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(run("kcas", src).len(), 1);
        assert!(run("shard", src).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n    fn f() {\n        unsafe { g() }\n        x.load(Ordering::Relaxed);\n    }\n}\n";
        assert!(run("kcas", src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_still_checked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\nfn f() {\n    unsafe { g() }\n}\n";
        assert_eq!(run("kcas", src).len(), 1);
    }

    #[test]
    fn inline_allow_waives_a_finding() {
        let src = "fn f() {\n    unsafe { g() } // xtask: allow(safety) - justified elsewhere\n}\n";
        assert!(run("kcas", src).is_empty());
    }

    #[test]
    fn tokens_in_comments_and_strings_do_not_fire() {
        let src = "fn f() {\n    // this mentions unsafe and Ordering::Relaxed and .unwrap()\n    let s = \"unsafe Ordering::Relaxed .unwrap() std::sync::atomic\";\n    let _ = s;\n}\n";
        assert!(run("server", src).is_empty());
        assert!(run("kcas", src).is_empty());
    }

    #[test]
    fn unsafe_as_identifier_fragment_does_not_fire() {
        let src = "fn f() {\n    let not_unsafe_here = 1;\n    let _ = not_unsafe_here;\n}\n";
        assert!(run("kcas", src).is_empty());
    }

    #[test]
    fn span_guard_across_blocking_call_is_flagged() {
        let bad = "fn f(w: &mut W) {\n    let span = telemetry::trace::begin(PHASE_FLUSH);\n    w.flush().ok();\n    drop(span);\n}\n";
        let vs = run("server", bad);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, Rule::SpanGuard);
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].message.contains("`span`") && vs[0].message.contains(".flush("));
    }

    #[test]
    fn dropping_the_guard_before_blocking_is_clean() {
        let good = "fn f(w: &mut W) {\n    let span = telemetry::trace::begin(PHASE_DECODE);\n    decode(p);\n    drop(span);\n    w.flush().ok();\n}\n";
        assert!(run("server", good).is_empty());
    }

    #[test]
    fn block_scope_ends_a_span_guard() {
        let good = "fn f(w: &mut W) {\n    {\n        let _decode_span = telemetry::trace::begin(PHASE_DECODE);\n        decode(p);\n    }\n    w.flush().ok();\n}\n";
        assert!(run("server", good).is_empty());
    }

    #[test]
    fn untracked_guard_temporary_does_not_arm_the_rule() {
        // `let _ = …` drops at end of statement; so does a bare call.
        let good = "fn f(w: &mut W) {\n    let _ = telemetry::trace::begin(PHASE_DECODE);\n    w.flush().ok();\n}\n";
        assert!(run("server", good).is_empty());
    }

    #[test]
    fn span_guard_waiver_clears_the_finding() {
        let src = "fn f(w: &mut W) {\n    let span = telemetry::trace::begin(PHASE_FLUSH);\n    w.flush().ok(); // xtask: allow(spanguard) - flush cost measured on purpose\n    drop(span);\n}\n";
        assert!(run("server", src).is_empty());
    }
}
