//! The PathCAS operation builder: `start`, `read`, `add`, `visit`,
//! `validate`, `exec`, `vexec` and the strong (lock-free) `vexec` slow path.

use crossbeam_epoch::Guard;
use kcas::{CasWord, RawEntry, RawVisit};

use crate::stats::OpStats;
use crate::{DEFAULT_MAX_ENTRIES, DEFAULT_MAX_PATH, DEFAULT_STRONG_RETRIES};

/// Per-thread, reusable argument accumulation buffers for PathCAS operations.
///
/// A builder owns no shared state: it is purely the scratch space described
/// in §3.3 ("a simple array for our visited nodes").  All buffers retain
/// their capacity across operations, so in steady state an operation issued
/// through a reused builder performs **no heap allocation** — together with
/// the descriptor pools in `kcas` this makes the whole update hot path
/// allocation-free.  Read-only operations (a validated `contains`) never
/// publish a descriptor at all.
pub struct OpBuilder {
    entries: Vec<RawEntry>,
    path: Vec<RawVisit>,
    /// `vexec` scratch: the visited path minus nodes that are also added.
    path_scratch: Vec<RawVisit>,
    /// `vexec_strong` slow-path scratch: entries plus compare-only entries.
    slow_scratch: Vec<RawEntry>,
    /// Set when the same address is added twice with conflicting values —
    /// proof that the caller observed inconsistent (concurrently modified)
    /// state, so the operation is doomed and must fail; see [`PathCasOp::add`].
    poisoned: bool,
    max_entries: usize,
    max_path: usize,
    strong_retries: usize,
    stats: OpStats,
}

impl Default for OpBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl OpBuilder {
    /// Create a builder with the default capacity bounds.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_ENTRIES, DEFAULT_MAX_PATH)
    }

    /// Create a builder with explicit bounds on the add-set and the read-set
    /// (the visited path).  Exceeding either bound panics, mirroring the
    /// assertion in the paper's implementation.
    pub fn with_capacity(max_entries: usize, max_path: usize) -> Self {
        OpBuilder {
            entries: Vec::with_capacity(max_entries.min(256)),
            path: Vec::with_capacity(max_path.min(1024)),
            path_scratch: Vec::with_capacity(max_path.min(1024)),
            slow_scratch: Vec::with_capacity(max_entries.min(256)),
            poisoned: false,
            max_entries,
            max_path,
            strong_retries: DEFAULT_STRONG_RETRIES,
            stats: OpStats::default(),
        }
    }

    /// Configure how many optimistic retries `vexec_strong` performs before
    /// switching to the slow path.
    pub fn set_strong_retries(&mut self, retries: usize) {
        self.strong_retries = retries;
    }

    /// Begin gathering arguments for a new PathCAS operation (the paper's
    /// `start()`), clearing the add-set and the visited path.
    ///
    /// The returned [`PathCasOp`] borrows both the builder and the epoch
    /// guard; every address passed to it must remain valid for at least as
    /// long as the guard is pinned, which the borrow checker enforces through
    /// the `'g` lifetime.
    pub fn start<'g>(&'g mut self, guard: &'g Guard) -> PathCasOp<'g> {
        self.entries.clear();
        self.path.clear();
        self.poisoned = false;
        PathCasOp { builder: self, guard }
    }

    /// Statistics accumulated by operations issued through this builder.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Reset accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = OpStats::default();
    }
}

/// An in-progress PathCAS operation (between `start` and `exec`/`vexec`).
pub struct PathCasOp<'g> {
    builder: &'g mut OpBuilder,
    guard: &'g Guard,
}

impl<'g> PathCasOp<'g> {
    /// Read an address that might be modified by PathCAS (the paper's
    /// `read`): if a descriptor is encountered, the corresponding operation
    /// is helped to completion first.
    #[inline]
    pub fn read(&self, word: &CasWord) -> u64 {
        kcas::read(word, self.guard)
    }

    /// The epoch guard this operation runs under.
    #[inline]
    pub fn guard(&self) -> &'g Guard {
        self.guard
    }

    /// Add an address to be changed atomically from `old` to `new`.
    ///
    /// Re-adding the same address with identical values is a no-op.
    /// Re-adding it with *conflicting* values poisons the operation: under
    /// concurrency it proves the caller derived its arguments from two
    /// inconsistent reads of the structure (some other operation committed
    /// in between), so the operation is doomed and `exec`/`vexec` will
    /// deterministically return `false` — the standard fail-and-retry
    /// outcome, instead of the undefined behaviour the paper's §3.2 permits
    /// here.
    ///
    /// # Panics
    /// Panics if the add-set bound is exceeded (the paper's assertion).
    #[inline]
    pub fn add(&mut self, word: &'g CasWord, old: u64, new: u64) {
        let addr = word as *const CasWord;
        if let Some(existing) = self.builder.entries.iter().find(|e| e.addr == addr) {
            if existing.old != old || existing.new != new {
                self.builder.poisoned = true;
            }
            return;
        }
        assert!(
            self.builder.entries.len() < self.builder.max_entries,
            "PathCAS add-set bound ({}) exceeded",
            self.builder.max_entries
        );
        self.builder.entries.push(RawEntry { addr, old, new });
    }

    /// Visit a node: read its version word (helping if necessary), record it
    /// in the path, and return the observed version (the mark bit is the
    /// least-significant bit of the returned value).
    ///
    /// # Panics
    /// Panics if the read-set bound is exceeded (the paper's assertion).
    #[inline]
    pub fn visit(&mut self, version_word: &'g CasWord) -> u64 {
        let seen = kcas::read(version_word, self.guard);
        assert!(
            self.builder.path.len() < self.builder.max_path,
            "PathCAS read-set bound ({}) exceeded",
            self.builder.max_path
        );
        self.builder.path.push(RawVisit { ver_addr: version_word as *const CasWord, seen });
        seen
    }

    /// Number of visited nodes so far.
    pub fn path_len(&self) -> usize {
        self.builder.path.len()
    }

    /// Number of added addresses so far.
    pub fn entry_len(&self) -> usize {
        self.builder.entries.len()
    }

    /// Check whether any visited node has changed (or been marked) since it
    /// was visited.  This is the read-only validation used by `contains`:
    /// unlike the validation inside `vexec` it never fails spuriously,
    /// because it helps any operation it encounters before comparing.
    pub fn validate(&mut self) -> bool {
        // SAFETY: every address in `path` was registered through a
        // `&'g CasWord` in `visit`, so it is valid for 'g (covering this
        // call, which runs under the same epoch guard).
        let ok = unsafe { kcas::validate_path_raw(&self.builder.path, self.guard) };
        if !ok {
            self.builder.stats.note_validate_failure();
        }
        ok
    }

    /// Perform the accumulated changes as a plain KCAS, ignoring the visited
    /// path (the paper's `exec`).
    pub fn exec(&mut self) -> bool {
        if self.builder.poisoned {
            self.builder.stats.note_exec(false);
            return false;
        }
        // SAFETY: every address in `entries` was registered through a
        // `&'g CasWord` in `add` (see `validate`).
        let ok = unsafe { kcas::execute_raw(&self.builder.entries, &[], self.guard) };
        self.builder.stats.note_exec(ok);
        ok
    }

    /// Perform the accumulated changes only if no visited node has changed
    /// since it was visited (the paper's `vexec`).  May fail spuriously if a
    /// visited node is "locked" by another in-flight operation.
    pub fn vexec(&mut self) -> bool {
        if self.builder.poisoned {
            self.builder.stats.note_vexec(false);
            return false;
        }
        self.builder.refill_path_scratch();
        // SAFETY: all addresses were registered through `&'g CasWord`s.
        let ok = unsafe {
            kcas::execute_raw(&self.builder.entries, &self.builder.path_scratch, self.guard)
        };
        self.builder.stats.note_vexec(ok);
        ok
    }

    /// The strong `vexec` of §3.5: retry the optimistic `vexec` a bounded
    /// number of times, then fall back to the lock-free slow path that
    /// converts every visited `⟨node, version⟩` pair into a compare-only
    /// `⟨node.ver, v, v⟩` entry and executes one large (sorted) KCAS.
    ///
    /// With this variant, a failure implies some added address or visited
    /// version genuinely changed (property P1), so data structures built on
    /// it are lock-free.
    pub fn vexec_strong(&mut self) -> bool {
        if self.builder.poisoned {
            self.builder.stats.note_vexec(false);
            return false;
        }
        for _ in 0..self.builder.strong_retries {
            self.builder.refill_path_scratch();
            // SAFETY: all addresses were registered through `&'g CasWord`s.
            let ok = unsafe {
                kcas::execute_raw(&self.builder.entries, &self.builder.path_scratch, self.guard)
            };
            if ok {
                self.builder.stats.note_vexec(true);
                return true;
            }
            self.builder.stats.note_vexec(false);
            // Re-check quickly whether the failure is definitely genuine: if
            // some added address no longer holds its old value, retrying (or
            // taking the slow path) cannot help.
            if self.some_added_address_changed() {
                return false;
            }
        }
        // Slow path: lock the version words of visited nodes instead of
        // validating them.
        self.builder.stats.note_slow_path();
        self.builder.refill_slow_scratch();
        // SAFETY: all addresses were registered through `&'g CasWord`s.
        let ok = unsafe { kcas::execute_raw(&self.builder.slow_scratch, &[], self.guard) };
        self.builder.stats.note_exec(ok);
        ok
    }

    fn some_added_address_changed(&self) -> bool {
        self.builder.entries.iter().any(|e| {
            // SAFETY: the address was registered through a `&'g CasWord`.
            let word = unsafe { &*e.addr };
            kcas::read(word, self.guard) != e.old
        })
    }
}

impl OpBuilder {
    /// Refill `path_scratch` with the visited path minus entries whose
    /// version word is also in the add-set: the add already both checks the
    /// old version and locks the word, so a separate compare entry would
    /// conflict with it.
    fn refill_path_scratch(&mut self) {
        let (scratch, path, entries) = (&mut self.path_scratch, &self.path, &self.entries);
        scratch.clear();
        scratch.extend(
            path.iter().filter(|p| !entries.iter().any(|e| e.addr == p.ver_addr)).copied(),
        );
    }

    /// Refill `slow_scratch` with the add-set plus one compare-only entry
    /// (`⟨ver_addr, seen, seen⟩`) per visited node not already added.
    fn refill_slow_scratch(&mut self) {
        let (scratch, path, entries) = (&mut self.slow_scratch, &self.path, &self.entries);
        scratch.clear();
        scratch.extend_from_slice(entries);
        scratch.extend(
            path.iter()
                .filter(|p| !entries.iter().any(|e| e.addr == p.ver_addr))
                .map(|p| RawEntry { addr: p.ver_addr, old: p.seen, new: p.seen }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    struct TwoNodes {
        ver_a: CasWord,
        data_a: CasWord,
        ver_b: CasWord,
        data_b: CasWord,
    }

    fn nodes() -> TwoNodes {
        TwoNodes {
            ver_a: CasWord::new(0),
            data_a: CasWord::new(100),
            ver_b: CasWord::new(0),
            data_b: CasWord::new(200),
        }
    }

    #[test]
    fn vexec_succeeds_without_interference() {
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        let mut op = b.start(&guard);
        let va = op.visit(&n.ver_a);
        let d = op.read(&n.data_b);
        op.add(&n.data_b, d, d + 1);
        op.add(&n.ver_b, 0, 2);
        assert_eq!(va, 0);
        assert!(op.vexec());
        assert_eq!(kcas::read(&n.data_b, &guard), 201);
        assert_eq!(kcas::read(&n.ver_b, &guard), 2);
        // The merely-visited node is untouched.
        assert_eq!(kcas::read(&n.ver_a, &guard), 0);
    }

    #[test]
    fn vexec_fails_if_visited_node_changed() {
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        let mut op = b.start(&guard);
        let _ = op.visit(&n.ver_a);
        op.add(&n.data_b, 200, 201);
        // Concurrent modification of the visited node.
        n.ver_a.store(2);
        assert!(!op.vexec());
        assert_eq!(kcas::read(&n.data_b, &guard), 200);
    }

    #[test]
    fn vexec_fails_if_visited_node_marked() {
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        let mut op = b.start(&guard);
        let _ = op.visit(&n.ver_a);
        op.add(&n.data_b, 200, 201);
        n.ver_a.store(1); // mark
        assert!(!op.vexec());
    }

    #[test]
    fn exec_ignores_visited_nodes() {
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        let mut op = b.start(&guard);
        let _ = op.visit(&n.ver_a);
        op.add(&n.data_b, 200, 201);
        n.ver_a.store(2); // would fail vexec
        assert!(op.exec());
        assert_eq!(kcas::read(&n.data_b, &guard), 201);
    }

    #[test]
    fn validate_detects_changes_and_marks() {
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        {
            let mut op = b.start(&guard);
            let _ = op.visit(&n.ver_a);
            let _ = op.visit(&n.ver_b);
            assert!(op.validate());
        }
        n.ver_b.store(2);
        {
            let mut op = b.start(&guard);
            let _ = op.visit(&n.ver_a);
            assert!(op.validate());
            let _ = op.visit(&n.ver_b);
            assert!(op.validate()); // re-visited, so current again
        }
        {
            let mut op = b.start(&guard);
            let _ = op.visit(&n.ver_a);
            n.ver_a.store(4);
            assert!(!op.validate());
        }
    }

    #[test]
    fn visited_node_in_add_set_does_not_self_conflict() {
        // Visiting a node and also adding its version word (a common pattern:
        // the parent both lies on the path and is modified) must not make the
        // operation fail against itself.
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        let mut op = b.start(&guard);
        let va = op.visit(&n.ver_a);
        op.add(&n.data_a, 100, 101);
        op.add(&n.ver_a, va, va + 2);
        assert!(op.vexec());
        assert_eq!(kcas::read(&n.ver_a, &guard), 2);
        assert_eq!(kcas::read(&n.data_a, &guard), 101);
    }

    #[test]
    fn strong_vexec_genuine_failure_returns_false() {
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        let mut op = b.start(&guard);
        op.add(&n.data_a, 100, 101);
        n.data_a.store(150);
        assert!(!op.vexec_strong());
        assert_eq!(kcas::read(&n.data_a, &guard), 150);
    }

    #[test]
    fn strong_vexec_slow_path_locks_versions() {
        // Force the slow path by setting zero optimistic retries; the slow
        // path should still succeed when nothing conflicts.
        let n = nodes();
        let mut b = OpBuilder::new();
        b.set_strong_retries(0);
        let guard = crossbeam_epoch::pin();
        let mut op = b.start(&guard);
        let va = op.visit(&n.ver_a);
        op.add(&n.data_b, 200, 201);
        op.add(&n.ver_b, 0, 2);
        assert_eq!(va, 0);
        assert!(op.vexec_strong());
        assert_eq!(kcas::read(&n.data_b, &guard), 201);
        assert!(b.stats().slow_path_execs() >= 1);
    }

    #[test]
    fn stats_accumulate() {
        let n = nodes();
        let mut b = OpBuilder::new();
        let guard = crossbeam_epoch::pin();
        {
            let mut op = b.start(&guard);
            op.add(&n.data_a, 100, 101);
            assert!(op.vexec());
        }
        {
            let mut op = b.start(&guard);
            op.add(&n.data_a, 100, 101); // stale old value
            assert!(!op.vexec());
        }
        assert_eq!(b.stats().vexec_attempts(), 2);
        assert_eq!(b.stats().vexec_failures(), 1);
        b.reset_stats();
        assert_eq!(b.stats().vexec_attempts(), 0);
    }

    #[test]
    fn concurrent_visit_add_cross_pattern() {
        // The §3.4 scenario: t1 visits A and adds B, t2 visits B and adds A.
        // With vexec_strong both threads must make progress overall (the data
        // words end up reflecting every successful operation exactly once).
        let shared = Arc::new(nodes());
        const OPS: u64 = 2000;
        let mut handles = Vec::new();
        for who in 0..2 {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let mut b = OpBuilder::new();
                let mut successes = 0u64;
                for _ in 0..OPS {
                    loop {
                        let guard = crossbeam_epoch::pin();
                        let mut op = b.start(&guard);
                        let (visit_ver, add_ver, add_data) = if who == 0 {
                            (&shared.ver_a, &shared.ver_b, &shared.data_b)
                        } else {
                            (&shared.ver_b, &shared.ver_a, &shared.data_a)
                        };
                        let vv = op.visit(visit_ver);
                        if vv & 1 == 1 {
                            continue;
                        }
                        let av = op.read(add_ver);
                        let d = op.read(add_data);
                        op.add(add_data, d, d + 1);
                        op.add(add_ver, av, av + 2);
                        if op.vexec_strong() {
                            successes += 1;
                            break;
                        }
                    }
                }
                successes
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 2 * OPS);
        let guard = crossbeam_epoch::pin();
        let a = kcas::read(&shared.data_a, &guard);
        let b_ = kcas::read(&shared.data_b, &guard);
        assert_eq!(a - 100 + b_ - 200, 2 * OPS);
    }
}
