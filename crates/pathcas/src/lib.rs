//! # pathcas — the PathCAS primitive
//!
//! PathCAS (Brown, Sigouin & Alistarh, PPoPP 2022) is a middle ground between
//! multi-word CAS (KCAS) and transactional memory: an operation accumulates
//!
//! * a set of **added** addresses to be changed atomically from old to new
//!   values (exactly like KCAS), and
//! * a set of **visited** nodes whose version numbers are validated — i.e.
//!   checked not to have changed and not to have been marked — at the moment
//!   the operation is decided.
//!
//! Compared to TM, PathCAS gives up opacity and unbounded read-sets and in
//! exchange avoids per-word locks, dynamic read-set structures and
//! per-access function-call overhead (§3.8 of the paper).
//!
//! ## Using the primitive
//!
//! ```
//! use kcas::CasWord;
//! use pathcas::OpBuilder;
//!
//! // A "node" with a version word and a data word.
//! let ver = CasWord::new(0);
//! let data = CasWord::new(10);
//!
//! let mut builder = OpBuilder::new();
//! let guard = crossbeam_epoch::pin();
//! let mut op = builder.start(&guard);
//! let v = op.visit(&ver);            // read + record the version
//! let d = op.read(&data);            // helping read
//! op.add(&data, d, d + 1);           // change data from 10 to 11 ...
//! op.add(&ver, v, v + 2);            // ... and bump the version
//! assert!(op.vexec());               // atomically, if nothing changed
//! assert_eq!(kcas::read(&data, &guard), 11);
//! ```
//!
//! Every operation must run under a [`crossbeam_epoch`] guard pinned before
//! the first shared read and held until the operation finishes — the same
//! discipline the paper's C++ implementation imposes with DEBRA guards.

#![warn(missing_docs)]

mod op;
pub mod stats;

pub use kcas::mark;
pub use kcas::{read, CasWord};
pub use op::{OpBuilder, PathCasOp};

/// Default bound on the number of visited nodes (the paper's bounded
/// read-set, §1 footnote 1).  Exceeding it panics, mirroring the assertion in
/// the authors' implementation.  The default is generous so that even
/// degenerate unbalanced-tree shapes (e.g. fully sorted insertion) stay below
/// it; balanced structures use a few dozen entries at most.
pub const DEFAULT_MAX_PATH: usize = 1 << 20;

/// Default bound on the number of added addresses.  The largest operation in
/// the paper (an AVL double rotation, Algorithm 9) adds fewer than 20.
pub const DEFAULT_MAX_ENTRIES: usize = 64;

/// Default number of optimistic `vexec` retries before
/// [`PathCasOp::vexec_strong`] falls back to the lock-free slow path (§3.5).
pub const DEFAULT_STRONG_RETRIES: usize = 3;
