//! Lightweight per-builder (hence per-thread) operation statistics.
//!
//! These software-observable counters substitute for the hardware performance
//! counters the paper reports in Figure 5 / the appendix factor analysis (see
//! DESIGN.md §4): validation failures and slow-path executions explain the
//! synchronization cost of PathCAS the same way abort rates explain TM cost.

/// Counters accumulated by a single [`crate::OpBuilder`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    vexec_attempts: u64,
    vexec_failures: u64,
    exec_attempts: u64,
    exec_failures: u64,
    validate_failures: u64,
    slow_path_execs: u64,
}

impl OpStats {
    pub(crate) fn note_vexec(&mut self, ok: bool) {
        self.vexec_attempts += 1;
        if !ok {
            self.vexec_failures += 1;
        }
    }

    pub(crate) fn note_exec(&mut self, ok: bool) {
        self.exec_attempts += 1;
        if !ok {
            self.exec_failures += 1;
        }
    }

    pub(crate) fn note_validate_failure(&mut self) {
        self.validate_failures += 1;
    }

    pub(crate) fn note_slow_path(&mut self) {
        self.slow_path_execs += 1;
    }

    /// Total number of `vexec` attempts (including retries).
    pub fn vexec_attempts(&self) -> u64 {
        self.vexec_attempts
    }

    /// Number of `vexec` attempts that failed (genuinely or spuriously).
    pub fn vexec_failures(&self) -> u64 {
        self.vexec_failures
    }

    /// Total number of `exec` attempts (including strong-vexec slow paths).
    pub fn exec_attempts(&self) -> u64 {
        self.exec_attempts
    }

    /// Number of failed `exec` attempts.
    pub fn exec_failures(&self) -> u64 {
        self.exec_failures
    }

    /// Number of read-only `validate` calls that returned false.
    pub fn validate_failures(&self) -> u64 {
        self.validate_failures
    }

    /// Number of times `vexec_strong` fell back to the slow path.
    pub fn slow_path_execs(&self) -> u64 {
        self.slow_path_execs
    }

    /// Merge another statistics record into this one (used by the harness to
    /// aggregate per-thread counters).
    pub fn merge(&mut self, other: &OpStats) {
        self.vexec_attempts += other.vexec_attempts;
        self.vexec_failures += other.vexec_failures;
        self.exec_attempts += other.exec_attempts;
        self.exec_failures += other.exec_failures;
        self.validate_failures += other.validate_failures;
        self.slow_path_execs += other.slow_path_execs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = OpStats::default();
        a.note_vexec(false);
        a.note_exec(true);
        a.note_slow_path();
        let mut b = OpStats::default();
        b.note_vexec(true);
        b.note_validate_failure();
        a.merge(&b);
        assert_eq!(a.vexec_attempts(), 2);
        assert_eq!(a.vexec_failures(), 1);
        assert_eq!(a.exec_attempts(), 1);
        assert_eq!(a.validate_failures(), 1);
        assert_eq!(a.slow_path_execs(), 1);
    }
}
