//! Non-loom regression hammer for the flight recorder's Boehm seqlock.
//!
//! The bounded model in `src/models.rs` proves the protocol on a 1–2 slot
//! ring with 2–3 threads; this test shakes the same code at real scale — a
//! small ring lapped thousands of times by many writers while a reader
//! snapshots continuously. Every field of every record is derived from the
//! record's key, so any torn slot (a mix of two writers' fields) is caught
//! by pure payload arithmetic, with no dependence on timing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use telemetry::FlightRecorder;

/// Derive every payload field from `key` so tearing is detectable:
/// op = key + 1, latency = 10 * key, shard = key ^ MASK, backend = key % 7,
/// phases = key rotated left 7.
const SHARD_MASK: u64 = 0xA5A5_A5A5;

fn check_intact(r: &telemetry::FlightRecord) {
    assert_eq!(r.op, r.key + 1, "torn record (op): {r:?}");
    assert_eq!(r.latency_ns, 10 * r.key, "torn record (latency): {r:?}");
    assert_eq!(r.shard, r.key ^ SHARD_MASK, "torn record (shard): {r:?}");
    assert_eq!(r.backend, r.key % 7, "torn record (backend): {r:?}");
    assert_eq!(r.phases, r.key.rotate_left(7), "torn record (phases): {r:?}");
}

#[test]
fn concurrent_writers_never_tear_snapshots() {
    // A tiny ring maximizes lap pressure: 4 writers × a 8-slot ring means
    // slots are reclaimed every 8 tickets, constantly racing the reader.
    let rec: Arc<FlightRecorder<8>> = Arc::new(FlightRecorder::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 4u64;
    let per = 50_000u64;

    std::thread::scope(|s| {
        for w in 0..writers {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                let mut accepted = 0u64;
                for i in 0..per {
                    let key = w * per + i;
                    if let Some(ticket) = rec.record(
                        key + 1,
                        key,
                        10 * key,
                        key ^ SHARD_MASK,
                        key % 7,
                        key.rotate_left(7),
                    ) {
                        // Tickets are unique and the slot index is derived
                        // from them, so an accepted record was fully written.
                        assert!(ticket < writers * per);
                        accepted += 1;
                    }
                }
                assert!(accepted > 0, "writer {w} had every record dropped");
            });
        }
        {
            let rec = Arc::clone(&rec);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for r in rec.snapshot() {
                        check_intact(&r);
                    }
                    snapshots += 1;
                }
                assert!(snapshots > 0);
            });
        }
        // Writers exit on their own; then release the reader.
        // (Scope joins the writer threads before `stop` matters only if we
        // order it explicitly — so spawn a waiter that flips the flag when
        // all writer work is observably complete.)
        let rec2 = Arc::clone(&rec);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            while rec2.recorded() < writers * per {
                std::hint::spin_loop();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    // Accounting: every admitted ticket was either fully recorded or counted
    // as dropped; admission is exactly the number of record() calls.
    assert_eq!(rec.recorded(), writers * per);
    assert!(rec.dropped() < rec.recorded(), "every record was dropped");

    // The quiescent ring holds only intact records, all from the last lap.
    let finals = rec.snapshot();
    assert!(!finals.is_empty());
    for r in &finals {
        check_intact(r);
        assert!(r.ticket < writers * per);
    }
    // Tickets in a quiescent snapshot are unique (one per live slot).
    let mut tickets: Vec<u64> = finals.iter().map(|r| r.ticket).collect();
    tickets.sort_unstable();
    tickets.dedup();
    assert_eq!(tickets.len(), finals.len(), "duplicate tickets in snapshot");
}

#[test]
fn single_writer_snapshot_is_exact() {
    // With one writer and no contention, nothing is ever dropped and the
    // ring holds exactly the last N records in ticket order.
    let rec: FlightRecorder<4> = FlightRecorder::new();
    for key in 0..10u64 {
        let ticket =
            rec.record(key + 1, key, 10 * key, key ^ SHARD_MASK, key % 7, key.rotate_left(7));
        assert_eq!(ticket, Some(key));
    }
    assert_eq!(rec.recorded(), 10);
    assert_eq!(rec.dropped(), 0);
    let snap = rec.snapshot();
    assert_eq!(snap.len(), 4);
    let mut tickets: Vec<u64> = snap.iter().map(|r| r.ticket).collect();
    tickets.sort_unstable();
    assert_eq!(tickets, vec![6, 7, 8, 9]);
    for r in &snap {
        check_intact(r);
        assert_eq!(r.key, r.ticket, "single writer: ticket == key by construction");
    }
}
