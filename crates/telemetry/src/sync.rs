//! Atomics facade: the one place this crate touches an atomics
//! implementation.
//!
//! Normal builds re-export `std::sync::atomic`. Under `--cfg pathcas_loom`
//! (see README "Verification") the same names resolve to `loom-shim`'s mock
//! atomics, so the model checker explores the *production* counter and
//! flight-recorder code — never a hand-copied model.
//!
//! [`registration`] stays on real std atomics in both configurations: the
//! stripe-id dispenser is once-per-thread bookkeeping, not part of any
//! checked protocol, and must stay invisible to the model scheduler.

#[cfg(not(pathcas_loom))]
pub(crate) use std::sync::atomic::{fence, AtomicU64, Ordering};

#[cfg(pathcas_loom)]
pub(crate) use loom_shim::sync::atomic::{fence, AtomicU64, Ordering};

/// Deliberately non-facaded atomics for stripe registration (module docs).
pub(crate) mod registration {
    pub(crate) use std::sync::atomic::AtomicUsize;
}
