//! Zero-overhead telemetry: striped counters, gauges, log-bucketed atomic
//! histograms, a global text-exposition registry, and a bounded flight
//! recorder for slow operations.
//!
//! Design constraints (DESIGN.md §11):
//!
//! - **Wait-free, zero-allocation increments.** [`Counter::inc`],
//!   [`Gauge::set`], [`Histogram::record`] and [`FlightRecorder::record`]
//!   perform a bounded number of `Relaxed` atomic operations and never touch
//!   the heap, so they are safe to call from the server's asserted
//!   zero-allocation warm paths (the counting-allocator tests in
//!   `crates/server/tests/zero_alloc_wire.rs` and
//!   `crates/kcas/tests/zero_alloc.rs` prove this end to end).
//! - **Contention-free under fan-in.** A [`Counter`] is striped across
//!   [`STRIPES`] cache-line-padded cells; each thread hashes to a fixed
//!   stripe on first use, so concurrent increments from different threads
//!   land on different cache lines instead of bouncing one hot line.
//! - **Relaxed ordering everywhere.** Metrics observe the system, they do
//!   not synchronize it: a read is a *sum of monotone per-stripe values*,
//!   each exact at some recent moment. Totals are therefore exact once the
//!   writers quiesce (what every reconciliation test relies on) and at worst
//!   momentarily stale mid-flight — never torn, never locked.
//! - **Statics only.** Every instrument is `const`-constructible so
//!   subsystems declare `static` instruments and register them once; the
//!   registry [`Mutex`] is touched only at registration and render time,
//!   never on an increment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::Mutex;

pub mod buckets;
#[cfg(all(test, pathcas_loom))]
mod models;
pub(crate) mod sync;
pub mod trace;

use buckets::{bucket_index, bucket_upper, NBUCKETS, TRACKABLE_MAX};
use sync::{registration::AtomicUsize, AtomicU64, Ordering};

/// Number of stripes per [`Counter`] (power of two). 32 padded cells cover
/// more worker threads than the benches drive while keeping a counter at
/// 4 KiB; threads beyond 32 share stripes round-robin, which costs a little
/// contention but never correctness.
pub const STRIPES: usize = 32;

/// One counter stripe, padded to 128 bytes so neighbouring stripes never
/// share a cache line (two lines on common x86 prefetch pairings).
#[repr(align(128))]
struct Stripe(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe index, assigned round-robin on first use.
    /// `const`-initialized: the TLS access compiles to a plain register-
    /// relative load with no lazy-init allocation.
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's stripe index in `[0, STRIPES)`.
#[inline]
fn stripe_id() -> usize {
    // Under the model checker, stripe assignment must be a pure function of
    // the model-thread index: the round-robin dispenser below hands out a
    // different stripe to the fresh OS thread each execution spawns, which
    // changes which atomic locations the model touches between executions
    // and breaks deterministic DFS replay.
    #[cfg(pathcas_loom)]
    if let Some(tid) = loom_shim::current_thread_id() {
        return tid & (STRIPES - 1);
    }
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            // ORDERING: Relaxed — a once-per-thread id dispense; uniqueness
            // comes from the RMW itself, no other memory is published.
            let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
            s.set(v);
            v
        }
    })
}

/// A monotone event counter, striped per thread.
///
/// `inc`/`add` are wait-free (one `Relaxed` `fetch_add` on the calling
/// thread's own stripe) and allocation-free. [`Counter::get`] sums the
/// stripes; it is exact whenever the writers are quiescent.
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// A zeroed counter. `const` so instruments can live in statics.
    pub const fn new() -> Counter {
        Counter { stripes: [const { Stripe(AtomicU64::new(0)) }; STRIPES] }
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — the stripe is a pure event tally; nothing is
        // published through it, and `get` only promises quiescent exactness.
        self.stripes[stripe_id()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all stripes (wrapping on overflow, like the stripes).
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — per-stripe coherence makes the sum monotone
        // and never an over-count; exactness is only claimed at quiescence
        // (the `striped_counter_sum` model in src/models.rs checks this).
        self.stripes.iter().fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A last-writer-wins level (queue depth, seqno, lag). Unstriped: gauges
/// record *state*, not events, so the last store is the value.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: u64) {
        // ORDERING: Relaxed — last-writer-wins level; readers want *a*
        // recent value, and no other memory is published through it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n` (e.g. open-connection counts).
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — the RMW's atomicity alone keeps the level
        // exact; no ordering with other locations is needed.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update loops only under concurrent modification of the same
        // gauge; still allocation-free and lock-free.
        // ORDERING: Relaxed — same as `add`: atomicity only.
        let _ =
            self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — diagnostic read of a last-writer-wins level.
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-size atomic histogram over the HDR-style log-bucket layout in
/// [`buckets`] (the same layout `workload`'s per-thread histograms use, so
/// the two report identical quantization).
///
/// `record` is wait-free: four `Relaxed` RMWs (bucket, count, sum, max), no
/// allocation, no locks. Reads are sums over the buckets — exact once
/// writers quiesce.
pub struct Histogram {
    counts: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    saturated: AtomicU64,
}

impl Histogram {
    /// An empty histogram (~9.5 KiB of zeroed buckets). `const` for statics.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [const { AtomicU64::new(0) }; NBUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            saturated: AtomicU64::new(0),
        }
    }

    /// Record one value. Values above [`TRACKABLE_MAX`] are clamped into the
    /// top bucket and counted in [`Histogram::saturated_count`], mirroring
    /// `workload::hist::LatencyHistogram::record`.
    #[inline]
    pub fn record(&self, v: u64) {
        let v = if v > TRACKABLE_MAX {
            // ORDERING: Relaxed — independent tally, atomicity only.
            self.saturated.fetch_add(1, Ordering::Relaxed);
            TRACKABLE_MAX
        } else {
            v
        };
        // ORDERING: Relaxed on all four RMWs — each cell is an independent
        // tally whose exactness comes from RMW atomicity; readers tolerate
        // mid-record skew (count/sum/bucket may momentarily disagree) and
        // only rely on quiescent totals.
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.count.load(Ordering::Relaxed)
    }

    /// Largest recorded (clamped) value.
    pub fn max(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.max.load(Ordering::Relaxed)
    }

    /// Number of values that exceeded [`TRACKABLE_MAX`] and were clamped.
    pub fn saturated_count(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.saturated.load(Ordering::Relaxed)
    }

    /// Running sum of the recorded (clamped) values. With [`Histogram::count`]
    /// this is the delta primitive behind per-phase attribution: mean-per-
    /// sampled-op = Δsum / Δops. Wraps at `u64::MAX` like the stripes.
    pub fn sum(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of the recorded values (0.0 when empty). The running sum wraps
    /// at `u64::MAX` nanoseconds (~584 years of accumulated latency).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            // ORDERING: Relaxed — `count` and `sum` may be skewed by an
            // in-flight record; the mean is a diagnostic, not an invariant.
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the smallest bucket upper
    /// bound covering at least `ceil(q * count)` samples. 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            // ORDERING: Relaxed — bucket tallies only; quantiles are
            // approximate under concurrent writers by design.
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A registered instrument: how the registry reads and renders it.
#[derive(Clone, Copy)]
pub enum Handle {
    /// A striped event counter.
    Counter(&'static Counter),
    /// A last-writer-wins level.
    Gauge(&'static Gauge),
    /// An atomic log-bucketed histogram.
    Histogram(&'static Histogram),
    /// A derived value computed at read time (e.g. follower lag =
    /// `log_seqno - applied_seqno`).
    Func(fn() -> u64),
}

static REGISTRY: Mutex<Vec<(&'static str, Handle)>> = Mutex::new(Vec::new());

/// Register an instrument under a globally unique name. Call once per
/// instrument (subsystems guard their registration with `std::sync::Once`);
/// registering a duplicate name panics, because exposition names are the
/// schema downstream deltas key on.
pub fn register(name: &'static str, handle: Handle) {
    let mut reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(reg.iter().all(|(n, _)| *n != name), "duplicate metric name registered: {name}");
    reg.push((name, handle));
}

fn scalar_of(handle: &Handle) -> u64 {
    match handle {
        Handle::Counter(c) => c.get(),
        Handle::Gauge(g) => g.get(),
        Handle::Histogram(h) => h.count(),
        Handle::Func(f) => f(),
    }
}

/// The scalar value of a registered instrument (a histogram reads as its
/// sample count), or `None` if no such name was registered.
pub fn value(name: &str) -> Option<u64> {
    let reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.iter().find(|(n, _)| *n == name).map(|(_, h)| scalar_of(h))
}

/// A point-in-time scalar view of every registered instrument, sorted by
/// name — the delta primitive the bench binaries subtract around trials.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    let reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out: Vec<(&'static str, u64)> = reg.iter().map(|(n, h)| (*n, scalar_of(h))).collect();
    out.sort_unstable_by_key(|(n, _)| *n);
    out
}

/// Render every registered instrument as deterministic text exposition:
/// one `name value` line per scalar, and for histograms the fixed sub-line
/// set `_count`, `_p50`, `_p99`, `_p999`, `_max`, `_saturated`. Lines are
/// sorted by name, so the *byte layout* of the exposition is a pure function
/// of the registered name set and the values — identical across serving
/// backends by construction.
pub fn render() -> String {
    let entries: Vec<(&'static str, Handle)> = {
        let reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        reg.clone()
    };
    let mut lines: Vec<String> = Vec::with_capacity(entries.len());
    for (name, handle) in &entries {
        match handle {
            Handle::Counter(_) | Handle::Gauge(_) | Handle::Func(_) => {
                lines.push(format!("{name} {}\n", scalar_of(handle)));
            }
            Handle::Histogram(h) => {
                lines.push(format!("{name}_count {}\n", h.count()));
                lines.push(format!("{name}_p50 {}\n", h.value_at_quantile(0.50)));
                lines.push(format!("{name}_p99 {}\n", h.value_at_quantile(0.99)));
                lines.push(format!("{name}_p999 {}\n", h.value_at_quantile(0.999)));
                lines.push(format!("{name}_max {}\n", h.max()));
                lines.push(format!("{name}_saturated {}\n", h.saturated_count()));
            }
        }
    }
    lines.sort_unstable();
    lines.concat()
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One decoded flight-recorder entry (see [`FlightRecorder`]). Field
/// meanings are the caller's: the server records
/// `(opcode, key, latency_ns, shard, backend)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotone admission ticket (global order of recorded ops).
    pub ticket: u64,
    /// Caller-defined operation tag.
    pub op: u64,
    /// Caller-defined key.
    pub key: u64,
    /// Latency in nanoseconds.
    pub latency_ns: u64,
    /// Caller-defined shard index.
    pub shard: u64,
    /// Caller-defined backend tag.
    pub backend: u64,
    /// Caller-defined packed per-phase breakdown (the server packs four
    /// 16-bit lanes of 64 ns units: ready, decode, shard, kcas — see
    /// `server::metrics`; 0 when the op was not trace-sampled).
    pub phases: u64,
}

struct FlightSlot {
    /// Seqlock word: `2*ticket + 1` while a writer owns the slot,
    /// `2*ticket + 2` once the record is complete. 0 = never written.
    seq: AtomicU64,
    op: AtomicU64,
    key: AtomicU64,
    latency_ns: AtomicU64,
    shard: AtomicU64,
    backend: AtomicU64,
    phases: AtomicU64,
}

/// A bounded ring of the last `N` recorded events, lock- and allocation-free
/// to write.
///
/// Writers claim a ticket with one `fetch_add`, then claim `slot[ticket % N]`
/// by CAS-ing its seqlock word from the previous generation's even value to
/// `2*ticket + 1` (odd = in progress). Readers ([`Self::snapshot`]) skip
/// slots whose seqlock is odd or changed mid-read, so a snapshot only ever
/// contains fully written records. Two writers meet at the same slot only
/// when one laps the other by a full ring (`N` tickets) mid-write; the claim
/// CAS makes exactly one of them proceed and the other drop its record
/// (counted in [`Self::dropped`]) — this is a best-effort diagnostic ring,
/// not a loss-free log. (An earlier revision let both writers store
/// unconditionally; the slower writer's *even* seqlock value could then cap
/// a mix of both writers' fields, a tear the reader cannot detect. The
/// `flight_recorder_lap` model in `src/models.rs` proves the claim CAS
/// closes this.)
///
/// The seqlock itself is the C11 fence-based protocol (Boehm, "Can seqlocks
/// get along with programming language memory models?", MSPC '12): the
/// writer publishes fields between a release *fence* after the odd store and
/// a release store of the even value; the reader re-reads the seqlock word
/// after an acquire fence. The `flight_recorder_seqlock` model checks the
/// protocol and its mutation witness shows the previous revision (release
/// odd store, no fences, acquire re-read) admits a torn snapshot.
pub struct FlightRecorder<const N: usize> {
    next: AtomicU64,
    dropped: AtomicU64,
    slots: [FlightSlot; N],
}

impl<const N: usize> FlightRecorder<N> {
    /// An empty recorder. `N` must be a power of two (compile-time checked).
    pub const fn new() -> FlightRecorder<N> {
        assert!(N.is_power_of_two(), "FlightRecorder capacity must be a power of two");
        FlightRecorder {
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: [const {
                FlightSlot {
                    seq: AtomicU64::new(0),
                    op: AtomicU64::new(0),
                    key: AtomicU64::new(0),
                    latency_ns: AtomicU64::new(0),
                    shard: AtomicU64::new(0),
                    backend: AtomicU64::new(0),
                    phases: AtomicU64::new(0),
                }
            }; N],
        }
    }

    /// Record one event (wait-free, allocation-free). Returns the ticket the
    /// event was admitted under, or `None` if the slot had to be dropped
    /// because a writer lapped us mid-write (see the struct docs; counted in
    /// [`Self::dropped`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        op: u64,
        key: u64,
        latency_ns: u64,
        shard: u64,
        backend: u64,
        phases: u64,
    ) -> Option<u64> {
        // ORDERING: Relaxed — the ticket dispenser only needs the RMW's
        // atomicity for uniqueness; the slot's seqlock carries all
        // publication ordering.
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (N - 1)];
        let odd = ticket.wrapping_mul(2).wrapping_add(1);
        // ORDERING: Relaxed — pre-claim peek; the CAS below revalidates it.
        let cur = slot.seq.load(Ordering::Relaxed);
        // ORDERING: Relaxed claim CAS — it needs only the RMW's atomicity to
        // elect a unique slot owner. Field publication is ordered by the
        // release fence below, and the stale-field hazard on the *reader*
        // side is covered by its fence (any reader that observes one of our
        // field stores is forced, through the fence pair, to also observe a
        // seqlock value >= `odd` on its re-read, so it discards the slot).
        if cur >= odd
            || cur & 1 == 1
            || slot
                .seq
                .compare_exchange(cur, odd, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            // Another writer owns the slot (it lapped us, or we lapped it).
            // ORDERING: Relaxed — diagnostic counter.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // The release fence orders the claim and every field store below
        // before the closing even store *and* before any field store's
        // visibility to a fenced reader — the writer half of the Boehm
        // seqlock protocol. A release ordering on the odd store alone (the
        // previous revision) orders nothing that comes after it.
        sync::fence(Ordering::Release);
        // ORDERING: Relaxed field stores — ordered by the fence above and
        // the release even-store below.
        slot.op.store(op, Ordering::Relaxed);
        slot.key.store(key, Ordering::Relaxed);
        slot.latency_ns.store(latency_ns, Ordering::Relaxed);
        slot.shard.store(shard, Ordering::Relaxed);
        slot.backend.store(backend, Ordering::Relaxed);
        slot.phases.store(phases, Ordering::Relaxed);
        slot.seq.store(ticket.wrapping_mul(2).wrapping_add(2), Ordering::Release);
        Some(ticket)
    }

    /// Total events ever admitted (may exceed `N`; the ring keeps the last
    /// `N`, and up to [`Self::dropped`] of them were abandoned mid-lap).
    pub fn recorded(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.next.load(Ordering::Relaxed)
    }

    /// Events dropped because a writer found its slot owned by another
    /// in-flight writer (ring lapped mid-write).
    pub fn dropped(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.dropped.load(Ordering::Relaxed)
    }

    /// The consistent records currently in the ring, oldest first.
    /// Allocates (it returns a `Vec`) — dump-time only, never on a hot path.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(N);
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or a writer is mid-flight
            }
            // ORDERING: Relaxed field loads — the reader half of the Boehm
            // seqlock protocol: `s1`'s acquire load orders them after the
            // writer's closing release store, and the acquire fence below
            // orders them before the re-read of the seqlock word.
            let rec = FlightRecord {
                ticket: (s1 - 2) / 2,
                op: slot.op.load(Ordering::Relaxed),
                key: slot.key.load(Ordering::Relaxed),
                latency_ns: slot.latency_ns.load(Ordering::Relaxed),
                shard: slot.shard.load(Ordering::Relaxed),
                backend: slot.backend.load(Ordering::Relaxed),
                phases: slot.phases.load(Ordering::Relaxed),
            };
            // If any field load above observed a later writer's store, this
            // fence (pairing with that writer's release fence) forces the
            // re-read below to observe its odd claim — so the slot is
            // discarded. An acquire *load* here (the previous revision)
            // orders nothing before itself and admits the tear.
            sync::fence(Ordering::Acquire);
            // ORDERING: Relaxed — ordered by the fence above.
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                out.push(rec);
            }
        }
        out.sort_unstable_by_key(|r| r.ticket);
        out
    }
}

impl<const N: usize> Default for FlightRecorder<N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn counter_sums_across_threads() {
        static C: Counter = Counter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10_000 {
                        C.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(C.get(), 80_000);
        C.add(5);
        assert_eq!(C.get(), 80_005);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100); // saturates, never wraps
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_matches_workload_quantization() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1e-6);
        let p50 = h.value_at_quantile(0.50);
        assert!((5_000..=5_200).contains(&p50), "p50 {p50}");
        // Clamping above TRACKABLE_MAX.
        h.record(u64::MAX);
        assert_eq!(h.saturated_count(), 1);
        assert_eq!(h.max(), TRACKABLE_MAX);
    }

    #[test]
    fn histogram_concurrent_records_all_land() {
        static H: Histogram = Histogram::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        H.record(t * 5_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(H.count(), 20_000);
        assert_eq!(H.max(), 19_999);
    }

    #[test]
    fn registry_render_and_value() {
        static C: Counter = Counter::new();
        static G: Gauge = Gauge::new();
        static H: Histogram = Histogram::new();
        fn answer() -> u64 {
            42
        }
        register("test_alpha_total", Handle::Counter(&C));
        register("test_beta_level", Handle::Gauge(&G));
        register("test_gamma_ns", Handle::Histogram(&H));
        register("test_delta_derived", Handle::Func(answer));
        C.add(7);
        G.set(3);
        H.record(100);

        assert_eq!(value("test_alpha_total"), Some(7));
        assert_eq!(value("test_beta_level"), Some(3));
        assert_eq!(value("test_gamma_ns"), Some(1)); // histogram scalar = count
        assert_eq!(value("test_delta_derived"), Some(42));
        assert_eq!(value("no_such_metric"), None);

        let text = render();
        assert!(text.contains("test_alpha_total 7\n"), "{text}");
        assert!(text.contains("test_beta_level 3\n"), "{text}");
        assert!(text.contains("test_gamma_ns_count 1\n"), "{text}");
        assert!(text.contains("test_delta_derived 42\n"), "{text}");
        // Sorted: deterministic byte layout.
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);

        let snap = snapshot();
        assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0), "snapshot must be sorted");
        assert!(snap.iter().any(|&(n, v)| n == "test_alpha_total" && v == 7));
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn registry_rejects_duplicate_names() {
        static C: Counter = Counter::new();
        register("test_duplicate_name", Handle::Counter(&C));
        register("test_duplicate_name", Handle::Counter(&C));
    }

    #[test]
    fn flight_recorder_keeps_last_n_in_order() {
        let fr: FlightRecorder<8> = FlightRecorder::new();
        for i in 0..20u64 {
            fr.record(1, i, i * 10, i % 4, 0, i * 3);
        }
        assert_eq!(fr.recorded(), 20);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 8);
        let tickets: Vec<u64> = snap.iter().map(|r| r.ticket).collect();
        assert_eq!(tickets, (12..20).collect::<Vec<_>>());
        for r in &snap {
            assert_eq!(r.key, r.ticket);
            assert_eq!(r.latency_ns, r.ticket * 10);
            assert_eq!(r.phases, r.ticket * 3);
        }
    }

    #[test]
    fn flight_recorder_concurrent_snapshots_are_consistent() {
        static FR: FlightRecorder<16> = FlightRecorder::new();
        static STOP: AtomicBool = AtomicBool::new(false);
        let writers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let mut i = 0u64;
                    while !STOP.load(Ordering::Relaxed) {
                        // key, latency and phases carry the same payload: a
                        // torn read would surface as a mismatched tuple.
                        FR.record(2, i, i, 0, 1, i);
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for r in FR.snapshot() {
                assert_eq!(r.key, r.latency_ns, "torn flight record escaped the seqlock");
                assert_eq!(r.key, r.phases, "torn flight record escaped the seqlock");
                assert_eq!(r.op, 2);
            }
        }
        STOP.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}
