//! The HDR-style log-bucket layout shared by [`crate::Histogram`] and
//! `workload::hist::LatencyHistogram`.
//!
//! Values below [`SUBBUCKETS`] are recorded exactly; above that, each
//! power-of-two octave is split into [`SUBBUCKETS`] linear sub-buckets, so
//! the relative quantization error is bounded by `1 / SUBBUCKETS` (≈ 3.1%)
//! at every magnitude — the same trade Gil Tene's HdrHistogram makes.
//! Keeping the bucket math in one place guarantees the wire-exposed
//! telemetry histograms and the bench-report histograms quantize
//! identically, so their percentiles are directly comparable.

/// Linear sub-buckets per octave (power of two; 32 ⇒ ≤3.1% relative error).
pub const SUBBUCKETS: u64 = 32;
/// `log2(SUBBUCKETS)`.
pub const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros(); // 5
/// Highest bit position a tracked value may have: values up to
/// [`TRACKABLE_MAX`] (≈ 73 minutes in nanoseconds) are bucketed normally.
pub const MAX_EXPONENT: u32 = 41;
/// The largest value tracked with bounded relative error. Recording
/// anything larger clamps to this value, and the histogram counts the event
/// separately, so one absurd sample (e.g. a timer glitch recorded as
/// `u64::MAX`) cannot own the top bucket and drag p99.9 to the ceiling.
pub const TRACKABLE_MAX: u64 = (1u64 << (MAX_EXPONENT + 1)) - 1;
/// Number of buckets: one exact bucket per value below `SUBBUCKETS`, then
/// `SUBBUCKETS` per octave for octaves `SUB_BITS..=MAX_EXPONENT`.
pub const NBUCKETS: usize = ((MAX_EXPONENT - SUB_BITS) as usize + 2) * SUBBUCKETS as usize;

/// Map a value to its bucket index (monotone non-decreasing in the value).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // msb >= SUB_BITS
    let octave = msb - SUB_BITS; // 0-based octave above the linear region
    let sub = (v >> octave) & (SUBBUCKETS - 1); // top SUB_BITS bits below the msb
    ((octave as usize + 1) * SUBBUCKETS as usize) + sub as usize
}

/// The largest value that maps to bucket `i` (the value reported for any
/// sample recorded in that bucket, so percentiles never under-report).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUBBUCKETS as usize {
        return i as u64;
    }
    let octave = (i / SUBBUCKETS as usize - 1) as u32;
    let sub = (i % SUBBUCKETS as usize) as u64;
    ((SUBBUCKETS + sub) << octave) + ((1u64 << octave) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip_bounds_error() {
        for v in (0..2000u64).chain([4_000, 65_537, 1 << 20, (1 << 40) + 12345, u64::MAX >> 1]) {
            let up = bucket_upper(bucket_index(v));
            assert!(up >= v, "upper {up} < value {v}");
            assert!(
                (up - v) as f64 <= (v as f64 / SUBBUCKETS as f64) + 1.0,
                "bucket error too large for {v}: upper {up}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            prev = i;
            v = v * 3 / 2 + 1;
        }
        assert!(bucket_index(TRACKABLE_MAX) < NBUCKETS);
    }
}
