//! Sampled, zero-allocation per-operation span tracing (DESIGN.md §13).
//!
//! The server's wire path is decomposed into a fixed **phase taxonomy**
//! ([`PHASE_READY`] … [`PHASE_DELIVER`]); a deterministic 1-in-N sampler
//! ([`should_sample`], keyed off a global op counter, never a clock) elects
//! ops for tracing, and every phase of a sampled op is recorded as one
//! compact [`SpanRecord`] — phase id, start/duration nanoseconds, and the
//! KCAS retry/help events that occurred inside the phase.
//!
//! Publication uses the same Boehm fence-based seqlock as the flight
//! recorder ([`crate::FlightRecorder`]): spans land in striped fixed-size
//! [`SpanRing`]s whose atomics route through the crate's `sync` facade, so under
//! `--cfg pathcas_loom` the model checker explores the *production* ring
//! code (`src/models.rs` has the span-ring models and their mutation
//! witness).
//!
//! Overhead discipline (the zero-alloc suites assert this end to end):
//!
//! - an **unsampled** op pays one relaxed load + one relaxed `fetch_add`
//!   in the sampler and a couple of monotonic clock reads at the phase
//!   boundaries its caller instruments — no heap, no locks, no fences;
//! - a **sampled** op additionally pays, per phase, one seqlock publication
//!   into its thread's stripe ring and four relaxed RMWs into the phase
//!   histogram — still allocation-free and wait-free;
//! - snapshots, rendering, and [`clear`] are dump-time only and allocate.

use std::cell::Cell;
use std::sync::{Once, OnceLock};
use std::time::Instant;

use crate::sync::{fence, AtomicU64, Ordering};
use crate::{Handle, Histogram, STRIPES};

/// Phase: time blocked waiting for request bytes (the reactor's
/// `epoll_wait`, the threaded backend's blocking frame read).
pub const PHASE_READY: u64 = 0;
/// Phase: decoding one complete frame into a request.
pub const PHASE_DECODE: u64 = 1;
/// Phase: routing the request's key to its owning shard.
pub const PHASE_SHARD: u64 = 2;
/// Phase: executing the operation against the structure (the KCAS/map
/// work; retry/help events land in this span's event counts).
pub const PHASE_KCAS: u64 = 3;
/// Phase: appending the committed mutation to the replication change log.
pub const PHASE_COMMIT: u64 = 4;
/// Phase: encoding/staging the response bytes.
pub const PHASE_RESP: u64 = 5;
/// Phase: flushing staged response bytes to the socket.
pub const PHASE_FLUSH: u64 = 6;
/// Phase: encoding + flushing one `EVENTS` batch to a `SUBSCRIBE`r.
pub const PHASE_DELIVER: u64 = 7;
/// Number of phases in the taxonomy. Phase ids are also the *pipeline
/// order*, which is what [`snapshot`] sorts by — so an exposition's line
/// order never depends on raw timestamps.
pub const PHASE_COUNT: usize = 8;

const PHASE_NAMES: [&str; PHASE_COUNT] =
    ["ready", "decode", "shard", "kcas", "commit", "resp", "flush", "deliver"];

/// The phase's lowercase wire name (`"?"` for an out-of-range id).
pub fn phase_name(phase: u64) -> &'static str {
    PHASE_NAMES.get(phase as usize).copied().unwrap_or("?")
}

/// Default sampling period: 1 op in 64 is traced.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Slots per stripe ring. With [`STRIPES`] rings this bounds the retained
/// spans; a single-threaded script of up to ~10 sampled ops (6 phases each)
/// fits entirely in one stripe's ring, which the TRACE differential test
/// relies on.
pub const SPAN_RING_CAPACITY: usize = 64;

/// Pack per-span event counts: retries in the low 32 bits, helps in the
/// high 32 (each saturating).
pub fn pack_events(retries: u64, helps: u64) -> u64 {
    retries.min(u32::MAX as u64) | (helps.min(u32::MAX as u64) << 32)
}

/// The retry count packed in `events` (see [`pack_events`]).
pub fn retries_of(events: u64) -> u64 {
    events & u32::MAX as u64
}

/// The help-event count packed in `events` (see [`pack_events`]).
pub fn helps_of(events: u64) -> u64 {
    events >> 32
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process's trace epoch (the first call).
/// Allocation-free after the first call: one atomic load plus a monotonic
/// clock read.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_EVERY);
static OP_SEQ: AtomicU64 = AtomicU64::new(0);
static SAMPLED_OPS: AtomicU64 = AtomicU64::new(0);

/// Admit one op to the sampler: returns `Some(trace_id)` for every
/// `sample_every()`-th op (deterministic — the decision is a pure function
/// of the global op counter, so two backends running the same script
/// sample the same ops with the same ids), `None` otherwise or when
/// sampling is disabled.
#[inline]
pub fn should_sample() -> Option<u64> {
    // ORDERING: Relaxed — a tuning knob; a racing set_sample_every may
    // misclassify a few in-flight ops, never corrupt anything.
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return None;
    }
    // ORDERING: Relaxed — the op counter only needs the RMW's atomicity
    // for unique, dense tickets; nothing is published through it.
    let n = OP_SEQ.fetch_add(1, Ordering::Relaxed);
    if n.is_multiple_of(every) {
        // ORDERING: Relaxed — diagnostic tally.
        SAMPLED_OPS.fetch_add(1, Ordering::Relaxed);
        Some(n)
    } else {
        None
    }
}

/// Current sampling period (0 = disabled).
pub fn sample_every() -> u64 {
    // ORDERING: Relaxed — standalone tuning knob.
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Set the sampling period: every `n`-th op is traced; `0` disables
/// sampling entirely (the sampler then costs one relaxed load per op).
pub fn set_sample_every(n: u64) {
    // ORDERING: Relaxed — standalone tuning knob.
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// Ops elected by the sampler since start (or the last [`clear`]).
pub fn sampled_total() -> u64 {
    // ORDERING: Relaxed — monotone diagnostic read.
    SAMPLED_OPS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Thread-local trace context
// ---------------------------------------------------------------------------

thread_local! {
    /// The sampled trace id the current op runs under, if any.
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
    /// Monotone per-thread KCAS retry tally (guards take deltas).
    static RETRIES: Cell<u64> = const { Cell::new(0) };
    /// Monotone per-thread KCAS help tally (guards take deltas).
    static HELPS: Cell<u64> = const { Cell::new(0) };
    /// Per-phase durations recorded for the current trace — what the
    /// flight recorder packs into a slow-op record's phase breakdown.
    static SCRATCH: Cell<[u64; PHASE_COUNT]> = const { Cell::new([0; PHASE_COUNT]) };
}

/// Install (or clear, with `None`) the calling thread's current trace id.
/// Installing a trace resets the per-phase scratch durations.
#[inline]
pub fn set_current(trace: Option<u64>) {
    if trace.is_some() {
        SCRATCH.with(|s| s.set([0; PHASE_COUNT]));
    }
    CURRENT.with(|c| c.set(trace));
}

/// The calling thread's current trace id, if an op is being traced.
#[inline]
pub fn current() -> Option<u64> {
    CURRENT.with(|c| c.get())
}

/// Note one KCAS phase-1 retry on the calling thread (hooked from
/// `kcas::metrics`); the enclosing [`SpanGuard`] attributes it to its span.
#[inline]
pub fn note_retry() {
    RETRIES.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Note one KCAS helping event on the calling thread (see [`note_retry`]).
#[inline]
pub fn note_help() {
    HELPS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// The per-phase durations recorded so far for the calling thread's current
/// trace (all zeros right after [`set_current`] installs a trace).
pub fn phase_scratch_ns() -> [u64; PHASE_COUNT] {
    SCRATCH.with(|s| s.get())
}

// ---------------------------------------------------------------------------
// Span records and the seqlock ring
// ---------------------------------------------------------------------------

/// One decoded span: a phase of one sampled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotone admission ticket within the stripe ring that held it.
    pub ticket: u64,
    /// The sampled op's trace id (the sampler's op-counter value).
    pub trace_id: u64,
    /// Phase id ([`PHASE_READY`] … [`PHASE_DELIVER`]).
    pub phase: u64,
    /// Phase start, nanoseconds since the trace epoch ([`now_ns`]).
    pub start_ns: u64,
    /// Phase duration in nanoseconds.
    pub dur_ns: u64,
    /// Packed KCAS retry/help counts (see [`pack_events`]).
    pub events: u64,
}

struct SpanSlot {
    /// Seqlock word: `2*ticket + 1` while a writer owns the slot,
    /// `2*ticket + 2` once complete. 0 = never written.
    seq: AtomicU64,
    trace_id: AtomicU64,
    phase: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    events: AtomicU64,
}

/// A bounded ring of the last `N` spans, lock- and allocation-free to
/// write — the span counterpart of [`crate::FlightRecorder`], using the
/// identical claim-CAS + Boehm-fence seqlock protocol (see that type's
/// docs for the protocol argument; `src/models.rs` has the span-ring
/// models `span_ring_seqlock` / `span_ring_lap` and the weakened-ordering
/// mutation witness).
pub struct SpanRing<const N: usize> {
    next: AtomicU64,
    dropped: AtomicU64,
    slots: [SpanSlot; N],
}

impl<const N: usize> SpanRing<N> {
    /// An empty ring. `N` must be a power of two (compile-time checked).
    pub const fn new() -> SpanRing<N> {
        assert!(N.is_power_of_two(), "SpanRing capacity must be a power of two");
        SpanRing {
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: [const {
                SpanSlot {
                    seq: AtomicU64::new(0),
                    trace_id: AtomicU64::new(0),
                    phase: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                    events: AtomicU64::new(0),
                }
            }; N],
        }
    }

    /// Record one span (wait-free, allocation-free). Returns the admission
    /// ticket, or `None` if another writer lapped this one mid-write and
    /// the record was dropped (counted in [`Self::dropped`]).
    #[inline]
    pub fn record(
        &self,
        trace_id: u64,
        phase: u64,
        start_ns: u64,
        dur_ns: u64,
        events: u64,
    ) -> Option<u64> {
        // ORDERING: Relaxed — the ticket dispenser needs only the RMW's
        // atomicity; the slot's seqlock carries all publication ordering.
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (N - 1)];
        let odd = ticket.wrapping_mul(2).wrapping_add(1);
        // ORDERING: Relaxed — pre-claim peek; the CAS below revalidates it.
        let cur = slot.seq.load(Ordering::Relaxed);
        // ORDERING: Relaxed claim CAS — elects a unique slot owner via the
        // RMW's atomicity alone; field publication is ordered by the
        // release fence below, and a reader that observes any of our field
        // stores is forced through the fence pair to observe a seqlock
        // value >= `odd` on its re-read and discard the slot.
        if cur >= odd
            || cur & 1 == 1
            || slot
                .seq
                .compare_exchange(cur, odd, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            // ORDERING: Relaxed — diagnostic counter.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Writer half of the Boehm seqlock: the release fence orders the
        // claim and every field store below before the closing even store.
        fence(Ordering::Release);
        // ORDERING: Relaxed field stores — ordered by the fence above and
        // the release even-store below.
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.phase.store(phase, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.events.store(events, Ordering::Relaxed);
        slot.seq.store(ticket.wrapping_mul(2).wrapping_add(2), Ordering::Release);
        Some(ticket)
    }

    /// Total spans ever admitted (the ring keeps the last `N`).
    pub fn recorded(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.next.load(Ordering::Relaxed)
    }

    /// Spans dropped because a writer found its slot owned by another
    /// in-flight writer (ring lapped mid-write).
    pub fn dropped(&self) -> u64 {
        // ORDERING: Relaxed — monotone diagnostic read.
        self.dropped.load(Ordering::Relaxed)
    }

    /// The consistent spans currently in the ring, oldest first.
    /// Allocates — dump-time only.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(N);
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or a writer is mid-flight
            }
            // ORDERING: Relaxed field loads — the reader half of the Boehm
            // seqlock: ordered after the writer's closing release store by
            // `s1`'s acquire load, and before the re-read by the fence.
            let rec = SpanRecord {
                ticket: (s1 - 2) / 2,
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                phase: slot.phase.load(Ordering::Relaxed),
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                events: slot.events.load(Ordering::Relaxed),
            };
            // Reader half of the fence pair: any field load that observed a
            // later writer forces the re-read below to see its odd claim.
            fence(Ordering::Acquire);
            // ORDERING: Relaxed — ordered by the fence above.
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                out.push(rec);
            }
        }
        out.sort_unstable_by_key(|r| r.ticket);
        out
    }

    /// Reset the ring to empty. **Quiescent-only** (no concurrent writers):
    /// a maintenance operation for tests and the TRACE differential
    /// battery, not part of the checked protocol.
    pub fn clear(&self) {
        for slot in &self.slots {
            // ORDERING: Relaxed — quiescent maintenance; no publication.
            slot.seq.store(0, Ordering::Relaxed);
            slot.trace_id.store(0, Ordering::Relaxed);
            slot.phase.store(0, Ordering::Relaxed);
            slot.start_ns.store(0, Ordering::Relaxed);
            slot.dur_ns.store(0, Ordering::Relaxed);
            slot.events.store(0, Ordering::Relaxed);
        }
        // ORDERING: Relaxed — quiescent maintenance.
        self.next.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl<const N: usize> Default for SpanRing<N> {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// The global tracer: striped rings + per-phase histograms
// ---------------------------------------------------------------------------

static RINGS: [SpanRing<SPAN_RING_CAPACITY>; STRIPES] = [const { SpanRing::new() }; STRIPES];

static PHASE_HIST: [Histogram; PHASE_COUNT] = [const { Histogram::new() }; PHASE_COUNT];

/// Record one span of a sampled op into the calling thread's stripe ring
/// and the phase's duration histogram. Wait-free and allocation-free; safe
/// on the asserted zero-alloc warm paths.
pub fn record_span(trace_id: u64, phase: u64, start_ns: u64, dur_ns: u64, events: u64) {
    let idx = phase as usize;
    if idx >= PHASE_COUNT {
        return;
    }
    PHASE_HIST[idx].record(dur_ns);
    if current() == Some(trace_id) {
        SCRATCH.with(|s| {
            let mut a = s.get();
            a[idx] = a[idx].saturating_add(dur_ns);
            s.set(a);
        });
    }
    RINGS[crate::stripe_id()].record(trace_id, phase, start_ns, dur_ns, events);
}

/// An RAII span over a **non-blocking** region of the current trace:
/// created by [`begin`], it records the phase on drop, attributing the
/// KCAS retry/help events that occurred in between. Must never be held
/// across a blocking call (`cargo xtask analyze` enforces this on the
/// server request path); blocking phases record via explicit timestamps
/// and [`record_span`] instead.
pub struct SpanGuard {
    trace_id: u64,
    phase: u64,
    start_ns: u64,
    retries0: u64,
    helps0: u64,
}

/// Open a span for `phase` if the calling thread has a current trace
/// (`None` otherwise — the untraced fast path is two TLS reads).
#[inline]
pub fn begin(phase: u64) -> Option<SpanGuard> {
    let trace_id = current()?;
    Some(SpanGuard {
        trace_id,
        phase,
        start_ns: now_ns(),
        retries0: RETRIES.with(|c| c.get()),
        helps0: HELPS.with(|c| c.get()),
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let retries = RETRIES.with(|c| c.get()).wrapping_sub(self.retries0);
        let helps = HELPS.with(|c| c.get()).wrapping_sub(self.helps0);
        record_span(self.trace_id, self.phase, self.start_ns, dur_ns, pack_events(retries, helps));
    }
}

/// Every consistent span currently retained, merged across all stripe
/// rings and sorted by `(trace_id, phase, start_ns, ticket)` — phase ids
/// are pipeline-ordered, so the order (and hence a rendered exposition's
/// line layout) is independent of raw timestamps. Allocates — dump-time
/// only.
pub fn snapshot() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for ring in RINGS.iter() {
        out.extend(ring.snapshot());
    }
    out.sort_unstable_by_key(|s| (s.trace_id, s.phase, s.start_ns, s.ticket));
    out
}

/// Total spans admitted across all stripe rings since start (or [`clear`]).
pub fn recorded_total() -> u64 {
    RINGS.iter().map(SpanRing::recorded).sum()
}

/// Total spans dropped to ring lapping since start (or [`clear`]).
pub fn dropped_total() -> u64 {
    RINGS.iter().map(SpanRing::dropped).sum()
}

/// Reset every stripe ring, the op counter, and the sampled-op tally.
/// **Quiescent-only**: callers (the TRACE differential battery, tests)
/// must ensure no op is in flight. Phase histograms are *not* reset — they
/// are registry metrics, and registry readers work in deltas.
pub fn clear() {
    for ring in RINGS.iter() {
        ring.clear();
    }
    // ORDERING: Relaxed — quiescent maintenance.
    OP_SEQ.store(0, Ordering::Relaxed);
    SAMPLED_OPS.store(0, Ordering::Relaxed);
}

/// Sum of the phase's duration histogram in nanoseconds (0 for an
/// out-of-range id) — with the histogram's count, the delta primitive
/// behind `bench_service`'s `attr_*_ns` columns.
pub fn phase_sum_ns(phase: u64) -> u64 {
    PHASE_HIST.get(phase as usize).map(Histogram::sum).unwrap_or(0)
}

static REGISTER: Once = Once::new();

fn sum_ready() -> u64 {
    PHASE_HIST[PHASE_READY as usize].sum()
}
fn sum_decode() -> u64 {
    PHASE_HIST[PHASE_DECODE as usize].sum()
}
fn sum_shard() -> u64 {
    PHASE_HIST[PHASE_SHARD as usize].sum()
}
fn sum_kcas() -> u64 {
    PHASE_HIST[PHASE_KCAS as usize].sum()
}
fn sum_commit() -> u64 {
    PHASE_HIST[PHASE_COMMIT as usize].sum()
}
fn sum_resp() -> u64 {
    PHASE_HIST[PHASE_RESP as usize].sum()
}
fn sum_flush() -> u64 {
    PHASE_HIST[PHASE_FLUSH as usize].sum()
}
fn sum_deliver() -> u64 {
    PHASE_HIST[PHASE_DELIVER as usize].sum()
}

/// Register the tracer's instruments with the global registry (idempotent):
/// per-phase duration histograms `trace_<phase>_ns`, their running sums
/// `trace_<phase>_ns_sum` (the attribution delta primitive), and the
/// sampler/ring tallies. Called by the server's metric registration so both
/// backends expose the identical name set.
pub fn register_metrics() {
    REGISTER.call_once(|| {
        crate::register("trace_sampled_total", Handle::Func(sampled_total));
        crate::register("trace_spans_recorded_total", Handle::Func(recorded_total));
        crate::register("trace_spans_dropped_total", Handle::Func(dropped_total));
        crate::register("trace_ready_ns", Handle::Histogram(&PHASE_HIST[PHASE_READY as usize]));
        crate::register("trace_ready_ns_sum", Handle::Func(sum_ready));
        crate::register("trace_decode_ns", Handle::Histogram(&PHASE_HIST[PHASE_DECODE as usize]));
        crate::register("trace_decode_ns_sum", Handle::Func(sum_decode));
        crate::register("trace_shard_ns", Handle::Histogram(&PHASE_HIST[PHASE_SHARD as usize]));
        crate::register("trace_shard_ns_sum", Handle::Func(sum_shard));
        crate::register("trace_kcas_ns", Handle::Histogram(&PHASE_HIST[PHASE_KCAS as usize]));
        crate::register("trace_kcas_ns_sum", Handle::Func(sum_kcas));
        crate::register("trace_commit_ns", Handle::Histogram(&PHASE_HIST[PHASE_COMMIT as usize]));
        crate::register("trace_commit_ns_sum", Handle::Func(sum_commit));
        crate::register("trace_resp_ns", Handle::Histogram(&PHASE_HIST[PHASE_RESP as usize]));
        crate::register("trace_resp_ns_sum", Handle::Func(sum_resp));
        crate::register("trace_flush_ns", Handle::Histogram(&PHASE_HIST[PHASE_FLUSH as usize]));
        crate::register("trace_flush_ns_sum", Handle::Func(sum_flush));
        crate::register("trace_deliver_ns", Handle::Histogram(&PHASE_HIST[PHASE_DELIVER as usize]));
        crate::register("trace_deliver_ns_sum", Handle::Func(sum_deliver));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the process-global sampler/ring state.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn sampler_is_deterministic_and_resettable() {
        let _g = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        clear();
        set_sample_every(4);
        let picks: Vec<Option<u64>> = (0..8).map(|_| should_sample()).collect();
        assert_eq!(picks[0], Some(0));
        assert_eq!(picks[4], Some(4));
        assert!(picks[1..4].iter().all(Option::is_none));
        assert_eq!(sampled_total(), 2);
        clear();
        set_sample_every(1);
        assert_eq!(should_sample(), Some(0));
        assert_eq!(should_sample(), Some(1));
        set_sample_every(0);
        assert_eq!(should_sample(), None);
        clear();
        set_sample_every(DEFAULT_SAMPLE_EVERY);
    }

    #[test]
    fn span_ring_keeps_last_n_in_order() {
        let ring: SpanRing<8> = SpanRing::new();
        for i in 0..20u64 {
            assert_eq!(ring.record(i, i % 8, i * 100, i * 10, i), Some(i));
        }
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 0);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        let tickets: Vec<u64> = snap.iter().map(|s| s.ticket).collect();
        assert_eq!(tickets, (12..20).collect::<Vec<_>>());
        for s in &snap {
            assert_eq!(s.trace_id, s.ticket);
            assert_eq!(s.dur_ns, s.ticket * 10);
            assert_eq!(s.start_ns, s.ticket * 100);
        }
        ring.clear();
        assert_eq!(ring.recorded(), 0);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn guard_records_phase_and_event_deltas() {
        let _g = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        clear();
        assert!(begin(PHASE_KCAS).is_none(), "no current trace, no guard");
        set_current(Some(42));
        let g = begin(PHASE_KCAS).expect("current trace set");
        note_retry();
        note_retry();
        note_help();
        drop(g);
        set_current(None);
        let spans = snapshot();
        let span = spans
            .iter()
            .find(|s| s.trace_id == 42 && s.phase == PHASE_KCAS)
            .expect("kcas span recorded");
        assert_eq!(retries_of(span.events), 2);
        assert_eq!(helps_of(span.events), 1);
        clear();
    }

    #[test]
    fn scratch_tracks_current_trace_phases() {
        let _g = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        clear();
        set_current(Some(7));
        record_span(7, PHASE_DECODE, 100, 250, 0);
        record_span(7, PHASE_KCAS, 400, 1000, 0);
        // A different trace's span must not pollute this thread's scratch.
        record_span(8, PHASE_KCAS, 500, 9999, 0);
        let scratch = phase_scratch_ns();
        assert_eq!(scratch[PHASE_DECODE as usize], 250);
        assert_eq!(scratch[PHASE_KCAS as usize], 1000);
        assert_eq!(scratch[PHASE_READY as usize], 0);
        set_current(Some(9));
        assert_eq!(phase_scratch_ns(), [0; PHASE_COUNT], "set_current resets scratch");
        set_current(None);
        clear();
    }

    #[test]
    fn events_pack_and_unpack() {
        let e = pack_events(3, 5);
        assert_eq!(retries_of(e), 3);
        assert_eq!(helps_of(e), 5);
        let sat = pack_events(u64::MAX, u64::MAX);
        assert_eq!(retries_of(sat), u32::MAX as u64);
        assert_eq!(helps_of(sat), u32::MAX as u64);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(phase_name(PHASE_READY), "ready");
        assert_eq!(phase_name(PHASE_KCAS), "kcas");
        assert_eq!(phase_name(PHASE_DELIVER), "deliver");
        assert_eq!(phase_name(99), "?");
    }
}
