//! Bounded model checking of the telemetry hot paths (ISSUE 9 /
//! DESIGN.md §12).
//!
//! Compiled only under `--cfg pathcas_loom`, where [`crate::sync`] resolves
//! the crate's atomics to `loom-shim`'s mocks, so these models drive the
//! *production* [`FlightRecorder`] and [`Counter`] code through every
//! interleaving and weak-memory read choice within the checker's bounds.
//!
//! Models assert the shipped code's invariants (no torn flight-recorder
//! snapshot, exactly one lap winner, striped sums monotone and exact at
//! quiescence); mutation witnesses run weakened miniatures — the
//! pre-revision seqlock without the Boehm fences and claim CAS, a
//! load-then-store counter increment — and assert the checker refutes them.
//!
//! Run with: `RUSTFLAGS='--cfg pathcas_loom' cargo test -p telemetry --release`.

use std::sync::Arc;

use crate::trace::{SpanRecord, SpanRing};
use crate::{Counter, FlightRecord, FlightRecorder};

/// The two records every recorder model writes. Fields are correlated
/// (`latency_ns == 10 * key`, `shard == key`, …) so any cross-record mix in
/// a snapshot is directly observable.
const REC_A: FlightRecord =
    FlightRecord { ticket: 0, op: 1, key: 7, latency_ns: 70, shard: 7, backend: 1, phases: 700 };
const REC_B: FlightRecord =
    FlightRecord { ticket: 1, op: 2, key: 9, latency_ns: 90, shard: 9, backend: 2, phases: 900 };

fn write(fr: &FlightRecorder<1>, r: &FlightRecord) -> Option<u64> {
    fr.record(r.op, r.key, r.latency_ns, r.shard, r.backend, r.phases)
}

/// `r` matches one of the model's two writes, ticket included (a snapshot
/// sets the ticket from the seqlock word, so a stale seqlock capping mixed
/// fields shows up here too).
fn is_intact(r: &FlightRecord) -> bool {
    let payload_of =
        |t: &FlightRecord| (t.op, t.key, t.latency_ns, t.shard, t.backend, t.phases);
    (r.ticket == REC_A.ticket && payload_of(r) == payload_of(&REC_A))
        || (r.ticket == REC_B.ticket && payload_of(r) == payload_of(&REC_B))
}

/// Model (c), seqlock flight recorder: one writer overwrites the single
/// ring slot twice while the main thread snapshots concurrently. In every
/// interleaving a snapshot contains only fully written records — never a
/// mix of the two writes — and quiescent state is exactly the last record.
#[test]
fn flight_recorder_seqlock() {
    loom_shim::model(|| {
        let fr = Arc::new(FlightRecorder::<1>::new());
        let fr2 = Arc::clone(&fr);
        let writer = loom_shim::thread::spawn(move || {
            assert_eq!(write(&fr2, &REC_A), Some(0));
            assert_eq!(write(&fr2, &REC_B), Some(1));
        });
        for rec in fr.snapshot() {
            assert!(is_intact(&rec), "torn snapshot: {rec:?}");
        }
        writer.join();
        assert_eq!(fr.recorded(), 2);
        assert_eq!(fr.dropped(), 0, "a single writer never laps itself");
        assert_eq!(fr.snapshot(), vec![REC_B]);
    });
}

/// Model (c'), writer lap: two writers race for the single ring slot, so
/// one laps the other by a full ring mid-write. The claim CAS must elect
/// exactly one owner per generation; the loser drops its record (counted)
/// rather than capping a mixed field set with its own stale even seqlock
/// value — the tear the pre-claim-CAS revision admitted.
#[test]
fn flight_recorder_lap() {
    loom_shim::model(|| {
        let fr = Arc::new(FlightRecorder::<1>::new());
        let fr2 = Arc::clone(&fr);
        let writer = loom_shim::thread::spawn(move || write(&fr2, &REC_B));
        let mine = write(&fr, &REC_A);
        let theirs = writer.join();
        assert_eq!(fr.recorded(), 2);
        let succeeded = mine.iter().len() as u64 + theirs.iter().len() as u64;
        assert_eq!(succeeded + fr.dropped(), 2, "every admission succeeds or is counted dropped");
        assert!(succeeded >= 1, "the claim CAS always elects at least one owner");
        let last = fr.snapshot();
        assert_eq!(last.len(), 1, "the winning record is snapshot-visible");
        assert!(
            // Lap order decides which payload got which ticket, so compare
            // payloads only: whatever survived must be one writer's record
            // in full, never a mix.
            [REC_A, REC_B].iter().any(|r| {
                (
                    last[0].op,
                    last[0].key,
                    last[0].latency_ns,
                    last[0].shard,
                    last[0].backend,
                    last[0].phases,
                ) == (r.op, r.key, r.latency_ns, r.shard, r.backend, r.phases)
            }),
            "lapped slot holds a mixed record: {:?}",
            last[0]
        );
    });
}

// ---------------------------------------------------------------------------
// Span-ring models (ISSUE 10): the tracer's seqlock ring is a distinct type
// with the same protocol, so it gets its own writer/reader tear-freedom
// models and its own weakened-ordering witness below.
// ---------------------------------------------------------------------------

/// The two spans every span-ring model writes. Fields are correlated
/// (`dur_ns == 10 * start_ns`, `events == start_ns`, …) so a cross-span mix
/// in a snapshot is directly observable.
const SPAN_A: SpanRecord =
    SpanRecord { ticket: 0, trace_id: 3, phase: 1, start_ns: 7, dur_ns: 70, events: 7 };
const SPAN_B: SpanRecord =
    SpanRecord { ticket: 1, trace_id: 4, phase: 2, start_ns: 9, dur_ns: 90, events: 9 };

fn write_span(ring: &SpanRing<1>, s: &SpanRecord) -> Option<u64> {
    ring.record(s.trace_id, s.phase, s.start_ns, s.dur_ns, s.events)
}

fn span_is_intact(s: &SpanRecord) -> bool {
    let payload_of = |t: &SpanRecord| (t.trace_id, t.phase, t.start_ns, t.dur_ns, t.events);
    (s.ticket == SPAN_A.ticket && payload_of(s) == payload_of(&SPAN_A))
        || (s.ticket == SPAN_B.ticket && payload_of(s) == payload_of(&SPAN_B))
}

/// Model (e), span-ring seqlock: one writer overwrites the single slot
/// twice while the main thread snapshots concurrently. Every snapshot holds
/// only fully written spans, and the quiescent ring is exactly the last
/// span — the tracer's counterpart of `flight_recorder_seqlock`.
#[test]
fn span_ring_seqlock() {
    loom_shim::model(|| {
        let ring = Arc::new(SpanRing::<1>::new());
        let ring2 = Arc::clone(&ring);
        let writer = loom_shim::thread::spawn(move || {
            assert_eq!(write_span(&ring2, &SPAN_A), Some(0));
            assert_eq!(write_span(&ring2, &SPAN_B), Some(1));
        });
        for span in ring.snapshot() {
            assert!(span_is_intact(&span), "torn span snapshot: {span:?}");
        }
        writer.join();
        assert_eq!(ring.recorded(), 2);
        assert_eq!(ring.dropped(), 0, "a single writer never laps itself");
        assert_eq!(ring.snapshot(), vec![SPAN_B]);
    });
}

/// Model (e'), span-ring writer lap: two writers race for the single slot.
/// The claim CAS elects exactly one owner per generation; the loser's span
/// is dropped and counted, and the surviving slot is one writer's span in
/// full — never a mix.
#[test]
fn span_ring_lap() {
    loom_shim::model(|| {
        let ring = Arc::new(SpanRing::<1>::new());
        let ring2 = Arc::clone(&ring);
        let writer = loom_shim::thread::spawn(move || write_span(&ring2, &SPAN_B));
        let mine = write_span(&ring, &SPAN_A);
        let theirs = writer.join();
        assert_eq!(ring.recorded(), 2);
        let succeeded = mine.iter().len() as u64 + theirs.iter().len() as u64;
        assert_eq!(succeeded + ring.dropped(), 2, "every admission succeeds or is counted dropped");
        assert!(succeeded >= 1, "the claim CAS always elects at least one owner");
        let last = ring.snapshot();
        assert_eq!(last.len(), 1, "the winning span is snapshot-visible");
        assert!(
            [SPAN_A, SPAN_B].iter().any(|s| {
                (last[0].trace_id, last[0].phase, last[0].start_ns, last[0].dur_ns, last[0].events)
                    == (s.trace_id, s.phase, s.start_ns, s.dur_ns, s.events)
            }),
            "lapped slot holds a mixed span: {:?}",
            last[0]
        );
    });
}

/// Model (d), striped counter sum-on-read: two threads each add two events
/// on their own stripes while the main thread sums concurrently. Sums are
/// monotone (each stripe is coherent and only grows), never exceed the
/// true total, include the reader's own events, and are exact at
/// quiescence.
#[test]
fn striped_counter_sum() {
    loom_shim::model(|| {
        let c = Arc::new(Counter::new());
        let c2 = Arc::clone(&c);
        let t = loom_shim::thread::spawn(move || {
            c2.inc();
            c2.inc();
        });
        c.inc();
        c.inc();
        let g1 = c.get();
        let g2 = c.get();
        assert!(g1 >= 2, "a reader always sees its own stripe's events (got {g1})");
        assert!(g1 <= g2, "concurrent sums are monotone ({g1} then {g2})");
        assert!(g2 <= 4, "a sum never exceeds the true total (got {g2})");
        t.join();
        assert_eq!(c.get(), 4, "quiescent sums are exact");
    });
}

// ---------------------------------------------------------------------------
// Mutation witnesses: weakened miniatures the checker must refute.
// ---------------------------------------------------------------------------

mod weak {
    //! The flight-recorder seqlock as it was *before* this revision: the
    //! writer opens with a release store of the odd value (no claim CAS, no
    //! release fence) and the reader re-reads with an acquire load (no
    //! acquire fence). Kept as a mutation witness: `loom_shim::model_fails`
    //! proves the checker finds the torn snapshot this admits, i.e. the
    //! fences and claim CAS in [`crate::FlightRecorder`] are load-bearing.

    use loom_shim::sync::atomic::{AtomicU64, Ordering};

    pub struct WeakRecorder {
        seq: AtomicU64,
        key: AtomicU64,
        latency_ns: AtomicU64,
    }

    impl WeakRecorder {
        pub fn new() -> WeakRecorder {
            WeakRecorder {
                seq: AtomicU64::new(0),
                key: AtomicU64::new(0),
                latency_ns: AtomicU64::new(0),
            }
        }

        pub fn record(&self, ticket: u64, key: u64, latency_ns: u64) {
            self.seq.store(2 * ticket + 1, Ordering::Release); // no claim CAS, no fence
            self.key.store(key, Ordering::Relaxed);
            self.latency_ns.store(latency_ns, Ordering::Relaxed);
            self.seq.store(2 * ticket + 2, Ordering::Release);
        }

        pub fn snapshot(&self) -> Option<(u64, u64)> {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                return None;
            }
            let key = self.key.load(Ordering::Relaxed);
            let latency_ns = self.latency_ns.load(Ordering::Relaxed);
            let s2 = self.seq.load(Ordering::Acquire); // no acquire fence
            (s1 == s2).then_some((key, latency_ns))
        }
    }
}

/// Witness for model (c): the pre-revision seqlock admits a snapshot that
/// pairs one record's key with the other's latency under an unchanged
/// seqlock word — the checker must find it.
#[test]
fn flight_recorder_seqlock_witness() {
    assert!(
        loom_shim::model_fails(|| {
            let r = Arc::new(weak::WeakRecorder::new());
            let r2 = Arc::clone(&r);
            let writer = loom_shim::thread::spawn(move || {
                r2.record(0, 1, 10);
                r2.record(1, 2, 20);
            });
            if let Some((key, latency_ns)) = r.snapshot() {
                assert_eq!(latency_ns, 10 * key, "torn snapshot: key={key} ns={latency_ns}");
            }
            writer.join();
        }),
        "checker failed to refute the fence-free seqlock"
    );
}

mod weak_span {
    //! A deliberately weakened [`crate::trace::SpanRing`] miniature: the
    //! writer opens with a release store of the odd seqlock value (no claim
    //! CAS, no release fence) and the reader re-reads with an acquire load
    //! (no acquire fence) — the same mutation the flight recorder's witness
    //! runs, applied to the span ring's field set. `model_fails` must find
    //! the torn span this admits, proving the production ring's fences are
    //! load-bearing and not inherited coincidence.

    use loom_shim::sync::atomic::{AtomicU64, Ordering};

    pub struct WeakSpanRing {
        seq: AtomicU64,
        start_ns: AtomicU64,
        dur_ns: AtomicU64,
    }

    impl WeakSpanRing {
        pub fn new() -> WeakSpanRing {
            WeakSpanRing {
                seq: AtomicU64::new(0),
                start_ns: AtomicU64::new(0),
                dur_ns: AtomicU64::new(0),
            }
        }

        pub fn record(&self, ticket: u64, start_ns: u64, dur_ns: u64) {
            self.seq.store(2 * ticket + 1, Ordering::Release); // no claim CAS, no fence
            self.start_ns.store(start_ns, Ordering::Relaxed);
            self.dur_ns.store(dur_ns, Ordering::Relaxed);
            self.seq.store(2 * ticket + 2, Ordering::Release);
        }

        pub fn snapshot(&self) -> Option<(u64, u64)> {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                return None;
            }
            let start_ns = self.start_ns.load(Ordering::Relaxed);
            let dur_ns = self.dur_ns.load(Ordering::Relaxed);
            let s2 = self.seq.load(Ordering::Acquire); // no acquire fence
            (s1 == s2).then_some((start_ns, dur_ns))
        }
    }
}

/// Witness for model (e): the fence-free span ring admits a snapshot that
/// pairs one span's start with the other's duration under an unchanged
/// seqlock word — the checker must find it.
#[test]
fn span_ring_seqlock_witness() {
    assert!(
        loom_shim::model_fails(|| {
            let r = Arc::new(weak_span::WeakSpanRing::new());
            let r2 = Arc::clone(&r);
            let writer = loom_shim::thread::spawn(move || {
                r2.record(0, 1, 10);
                r2.record(1, 2, 20);
            });
            if let Some((start_ns, dur_ns)) = r.snapshot() {
                assert_eq!(dur_ns, 10 * start_ns, "torn span: start={start_ns} dur={dur_ns}");
            }
            writer.join();
        }),
        "checker failed to refute the fence-free span ring"
    );
}

/// Witness for model (d): if [`Counter::add`] were a load-then-store
/// instead of a `fetch_add`, two concurrent increments could lose one —
/// the checker must find the lost update.
#[test]
fn striped_counter_witness() {
    use loom_shim::sync::atomic::{AtomicU64, Ordering};
    assert!(
        loom_shim::model_fails(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = loom_shim::thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            t.join();
            assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
        }),
        "checker failed to refute the non-atomic increment"
    );
}
