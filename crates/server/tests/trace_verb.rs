//! The TRACE verb battery, run differentially on both backends: with the
//! sampler at 1-in-1, a deterministic single-connection script must yield
//! **byte-identical** expositions across backends once the inherently
//! timing-valued fields (`start_ns`, `dur_ns`, the backend label) are
//! masked — same trace ids, same phase sets, same event counts, same
//! header counters.  Then a replicated SUBSCRIBE topology must surface
//! `commit` and `deliver` spans, and a stale TRACE version must fail
//! semantically without killing the connection.
//!
//! One `#[test]` on purpose: the span tracer is process-global (sampler
//! counter, rings), so nothing else in this binary may run concurrently.

mod common;

use std::sync::{Arc, Mutex};

use common::{for_each_backend, start_on};
use mapapi::reference::LockedBTreeMap;
use mapapi::ConcurrentMap;
use server::{Connection, Request, Response, Server, ServerOpts};
use shard::ShardedMap;

const SHARDS: usize = 4;

fn sharded() -> Arc<dyn ConcurrentMap> {
    Arc::new(ShardedMap::from_fn(SHARDS, |_| {
        Box::new(LockedBTreeMap::new()) as Box<dyn ConcurrentMap>
    }))
}

/// The deterministic script: seven sequential ops (one request in flight
/// at a time, so spans land in a fixed order on both backends).
fn script() -> Vec<Request> {
    vec![
        Request::Put(1, 10),
        Request::Get(1),
        Request::Rmw(1, 5),
        Request::Del(1),
        Request::Get(1),
        Request::Scan(0, 10),
        Request::Stats,
    ]
}

/// Mask the fields whose values are wall-clock (or name the backend):
/// `start_ns=`, `dur_ns=`, `backend=`.  Everything else — ids, phases,
/// retry/help counts, header totals — must match exactly.
fn canon(text: &str) -> String {
    text.lines()
        .map(|l| {
            l.split(' ')
                .map(|tok| match tok.split_once('=') {
                    Some((k @ ("start_ns" | "dur_ns" | "backend"), _)) => format!("{k}=_"),
                    _ => tok.to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn trace_expositions_are_differential_across_backends() {
    let canons: Mutex<Vec<String>> = Mutex::new(Vec::new());

    for_each_backend(|backend| {
        let server = start_on(sharded(), backend);
        let mut conn = Connection::connect(server.local_addr()).expect("connect");
        // Quiescent: the only server is idle and ours.
        telemetry::trace::clear();
        telemetry::trace::set_sample_every(1);

        for req in script() {
            conn.request(&req).expect("script op");
        }
        let text = conn.trace().expect("TRACE");
        telemetry::trace::set_sample_every(telemetry::trace::DEFAULT_SAMPLE_EVERY);

        assert!(
            text.starts_with(&format!("# pathcas-trace v1 backend={}", backend.label())),
            "version/backend header missing:\n{text}"
        );
        // Every scripted op (trace ids 0..=6) went through the full wire
        // path; the TRACE op itself (id 7) is sampled too but renders
        // before its own kcas/resp/flush spans are recorded.
        for id in 0..=6u64 {
            for phase in ["ready", "decode", "shard", "kcas", "resp", "flush"] {
                assert!(
                    text.contains(&format!("span trace={id} phase={phase} ")),
                    "trace {id} is missing its {phase} span:\n{text}"
                );
            }
        }
        for phase in ["ready", "decode", "shard"] {
            assert!(
                text.contains(&format!("span trace=7 phase={phase} ")),
                "the TRACE op is missing its {phase} span:\n{text}"
            );
        }
        assert!(!text.contains("phase=commit"), "unreplicated map committed?\n{text}");
        canons.lock().unwrap().push(canon(&text));

        // A stale client version is a semantic error, not a hangup.
        match conn.request(&Request::Trace(99)).expect("version mismatch roundtrip") {
            Response::Err(msg) => assert!(msg.contains("version 99"), "odd error: {msg}"),
            other => panic!("TRACE v99 answered with {other:?}"),
        }
        assert!(matches!(conn.request(&Request::Get(2)), Ok(Response::Get(None))));

        server.shutdown();
    });

    let canons = canons.into_inner().unwrap();
    assert_eq!(canons.len(), 2);
    assert_eq!(canons[0], canons[1], "trace expositions diverge across backends");

    // Replication: commits append under a sampled trace, and SUBSCRIBE
    // delivery batches are sampler ops of their own — both phases must
    // show up in the exposition on both backends.
    for_each_backend(|backend| {
        let rep = Arc::new(replica::ReplicatedMap::new(Box::new(LockedBTreeMap::new())));
        let server = Server::start_with(
            Arc::clone(&rep) as Arc<dyn ConcurrentMap>,
            ServerOpts { log: Some(rep.log()), backend, ..ServerOpts::default() },
            "127.0.0.1:0",
        )
        .expect("bind primary");
        let mut sub = Connection::connect(server.local_addr()).expect("connect subscriber");
        let mut conn = Connection::connect(server.local_addr()).expect("connect writer");
        telemetry::trace::clear();
        telemetry::trace::set_sample_every(1);

        sub.subscribe(0).expect("subscribe");
        for k in 1..=5u64 {
            assert!(matches!(conn.request(&Request::Put(k, k)), Ok(Response::Put(true))));
        }
        let mut delivered = 0;
        while delivered < 5 {
            delivered += sub.next_events().expect("event batch").len();
        }
        let text = conn.trace().expect("TRACE");
        telemetry::trace::set_sample_every(telemetry::trace::DEFAULT_SAMPLE_EVERY);

        assert!(text.contains("phase=commit"), "no commit span recorded:\n{text}");
        assert!(text.contains("phase=deliver"), "no deliver span recorded:\n{text}");

        server.shutdown();
    });
}
