//! End-to-end loopback tests: a real `Server` on an ephemeral port, real
//! sockets, and the `ServiceMap` pool driven by the same `mapapi` suites
//! and workload executor every in-process structure runs.
//!
//! Every test runs against **both** serving backends (threads and the
//! epoll reactor) via `for_each_backend` — the wire protocol is
//! byte-identical, so so must be every observable here.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::{for_each_backend, start_on};
use mapapi::reference::LockedBTreeMap;
use mapapi::ConcurrentMap;
use server::{Backend, Connection, Request, Response, Server, ServiceMap};
use shard::ShardedMap;
use workload::{run_scenario, run_scenario_batched, scenario, RunParams};

fn start_oracle_server(backend: Backend) -> Server {
    start_on(Arc::new(LockedBTreeMap::new()), backend)
}

fn start_sharded_server(n: usize, backend: Backend) -> Server {
    let map = ShardedMap::from_fn(n, |_| Box::new(pathcas_ds::PathCasAvl::new()));
    start_on(Arc::new(map), backend)
}

#[test]
fn protocol_verbs_roundtrip_over_a_real_socket() {
    for_each_backend(|backend| {
        let server = start_oracle_server(backend);
        let mut conn = Connection::connect(server.local_addr()).unwrap();

        assert_eq!(conn.request(&Request::Get(1)).unwrap(), Response::Get(None));
        assert_eq!(conn.request(&Request::Put(1, 10)).unwrap(), Response::Put(true));
        assert_eq!(conn.request(&Request::Put(1, 11)).unwrap(), Response::Put(false));
        assert_eq!(conn.request(&Request::Get(1)).unwrap(), Response::Get(Some(10)));
        // Present key: (10 + 4) & MAX_KEY = 14 (the workspace's canonical
        // affine update, mask included — MAX_KEY's low bit is 0).
        assert_eq!(conn.request(&Request::Rmw(1, 4)).unwrap(), Response::Rmw(true));
        assert_eq!(conn.request(&Request::Get(1)).unwrap(), Response::Get(Some(14)));
        // Absent key: inserted with the delta itself, like the in-process rmw.
        assert_eq!(conn.request(&Request::Rmw(9, 7)).unwrap(), Response::Rmw(false));
        assert_eq!(conn.request(&Request::Get(9)).unwrap(), Response::Get(Some(7)));
        assert_eq!(conn.request(&Request::Del(9)).unwrap(), Response::Del(true));
        assert_eq!(conn.request(&Request::Del(9)).unwrap(), Response::Del(false));
        assert_eq!(
            conn.request(&Request::Scan(1, 10)).unwrap(),
            Response::Scan(vec![(1, 14)])
        );
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.key_count, 1);
                assert_eq!(s.key_sum, 1);
            }
            other => panic!("unexpected STATS answer {other:?}"),
        }
        drop(conn);
        server.shutdown();
    });
}

#[test]
fn pipelined_bursts_come_back_in_order() {
    for_each_backend(|backend| {
        let server = start_oracle_server(backend);
        let mut conn = Connection::connect(server.local_addr()).unwrap();

        // One burst: 64 puts, then a burst mixing every verb.
        let puts: Vec<Request> = (1..=64u64).map(|k| Request::Put(k, k * 2)).collect();
        let resps = conn.pipeline(&puts).unwrap();
        assert_eq!(resps.len(), 64);
        assert!(resps.iter().all(|r| *r == Response::Put(true)));

        let burst = vec![
            Request::Get(7),
            Request::Del(8),
            Request::Scan(60, 10),
            Request::Rmw(7, 100),
            Request::Get(7),
            Request::Stats,
        ];
        let resps = conn.pipeline(&burst).unwrap();
        assert_eq!(resps[0], Response::Get(Some(14)));
        assert_eq!(resps[1], Response::Del(true));
        assert_eq!(
            resps[2],
            Response::Scan((60..=64u64).map(|k| (k, k * 2)).collect())
        );
        assert_eq!(resps[3], Response::Rmw(true));
        assert_eq!(resps[4], Response::Get(Some(114)));
        match &resps[5] {
            Response::Stats(s) => assert_eq!(s.key_count, 63),
            other => panic!("unexpected STATS answer {other:?}"),
        }
        drop(conn);
        server.shutdown();
    });
}

#[test]
fn oversized_scans_get_a_semantic_error_and_the_connection_survives() {
    for_each_backend(|backend| {
        let server = start_oracle_server(backend);
        let mut conn = Connection::connect(server.local_addr()).unwrap();
        conn.request(&Request::Put(1, 10)).unwrap();
        // One past the cap: a semantic Err response, not a torn connection.
        let too_long = (server::MAX_SCAN_LEN + 1) as u32;
        match conn.request(&Request::Scan(1, too_long)).unwrap() {
            Response::Err(msg) => {
                assert!(msg.contains("MAX_SCAN_LEN"), "unexpected error: {msg}")
            }
            other => panic!("expected Err response, got {other:?}"),
        }
        // Framing stayed intact: the next request works.
        assert_eq!(conn.request(&Request::Get(1)).unwrap(), Response::Get(Some(10)));
        assert_eq!(
            conn.request(&Request::Scan(1, server::MAX_SCAN_LEN as u32)).unwrap(),
            Response::Scan(vec![(1, 10)])
        );
        drop(conn);
        server.shutdown();
    });
}

#[test]
fn malformed_frames_get_an_error_then_a_close() {
    use std::io::{Read, Write};
    for_each_backend(|backend| {
        let server = start_oracle_server(backend);
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        // A framed payload with an unknown opcode.
        raw.write_all(&3u32.to_le_bytes()).unwrap();
        raw.write_all(&[0xEE, 1, 2]).unwrap();
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).unwrap(); // server responds then closes
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(len, buf.len() - 4, "exactly one response frame before close");
        match server::proto::decode_response(&buf[4..]).unwrap() {
            Response::Err(msg) => assert!(msg.contains("opcode"), "unexpected error: {msg}"),
            other => panic!("expected Err response, got {other:?}"),
        }
        drop(raw);
        server.shutdown();
    });
}

#[test]
fn service_map_passes_the_mapapi_suites_over_the_wire() {
    for_each_backend(|backend| {
        // Every suite expects a fresh structure, so each gets its own server.
        let with_fresh_service = |check: &dyn Fn(&ServiceMap)| {
            let server = start_sharded_server(4, backend);
            let svc =
                ServiceMap::connect(server.local_addr(), 2, "shard4(int-avl-pathcas)").unwrap();
            assert_eq!(svc.name(), "svc(shard4(int-avl-pathcas))");
            check(&svc);
            drop(svc);
            server.shutdown();
        };
        with_fresh_service(&|svc| mapapi::suites::check_basic_semantics(svc));
        with_fresh_service(&|svc| mapapi::suites::check_scan_semantics(svc));
        with_fresh_service(&|svc| {
            mapapi::suites::check_random_against_oracle(svc, 2000, 64, 0x77FE)
        });
        with_fresh_service(&|svc| mapapi::suites::check_scan_against_oracle(svc, 64, 0x77FF));
    });
}

#[test]
fn scenarios_run_in_service_mode_with_latency_histograms() {
    for_each_backend(|backend| {
        let server = start_sharded_server(8, backend);
        let svc = ServiceMap::connect(server.local_addr(), 2, "shard8(int-avl-pathcas)").unwrap();
        let params = RunParams::standard(2, 512, Duration::from_millis(40), 0x5EC5);
        let out = run_scenario(&svc, &scenario("ycsb-b"), &params);
        assert!(out.total_ops > 0, "no ops over the socket path");
        assert_eq!(out.hist.count(), out.total_ops);
        let p = out.hist.percentiles();
        assert!(p.p50 <= p.p99);
        // The quiescent audit works over the wire too: STATS + chunked SCANs.
        mapapi::suites::check_scan_matches_stats(&svc, &out.final_stats);
        drop(svc);
        server.shutdown();
    });
}

#[test]
fn batched_service_mode_stresses_pipelining() {
    for_each_backend(|backend| {
        let server = start_sharded_server(4, backend);
        let svc = ServiceMap::connect(server.local_addr(), 2, "shard4(int-avl-pathcas)").unwrap();
        let params = RunParams::standard(2, 512, Duration::from_millis(40), 0xBA7C);
        let out = run_scenario_batched(&svc, &svc, &scenario("service-mixed"), &params, 16);
        assert!(out.total_ops > 0);
        assert_eq!(out.total_ops % 16, 0, "whole batches only");
        assert_eq!(out.hist.count(), out.total_ops);
        assert!(out.scan_hist.count() > 0, "service-mixed must ship scans in its pipelines");
        drop(svc);
        server.shutdown();
    });
}

#[test]
fn shutdown_is_clean_and_releases_the_port() {
    for_each_backend(|backend| {
        let server = start_oracle_server(backend);
        let addr = server.local_addr();
        // A client that connects and holds the connection open and idle:
        // shutdown must still return (neither backend may wait on an idle
        // client) rather than waiting on the client.
        let mut idle = Connection::connect(addr).unwrap();
        assert_eq!(idle.request(&Request::Put(3, 30)).unwrap(), Response::Put(true));
        server.shutdown(); // must join every thread and return
        drop(idle);
        // The port no longer accepts new work.
        assert!(Connection::connect(addr).is_err() || {
            // A TIME_WAIT race can let the connect through; the write side
            // must then fail because nothing serves it.
            let mut c = Connection::connect(addr).unwrap();
            c.request(&Request::Get(1)).is_err()
        });
    });
}
