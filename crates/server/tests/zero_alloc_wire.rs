//! Asserts the reactor's steady-state allocation contract (DESIGN.md §10):
//! once a connection's pooled decoder and write queue are warm, a GET
//! round-trip through the epoll reactor — fill → incremental decode →
//! execute → encode → flush — performs **zero** heap allocations, counted
//! process-wide by a counting global allocator.  The client side of the
//! measured window is raw pre-encoded frames into fixed buffers, so the
//! whole process is allocation-silent while frames flow.
//!
//! A scan phase then shows the counter is live (Response::Scan carries a
//! Vec, which must allocate) — keeping the zero honest.
//!
//! Since PR 8 the measured window also runs with the telemetry layer
//! fully enabled — per-verb counters, the op latency histogram, reactor
//! syscall counters, the slow-op threshold check — and the registry delta
//! read *outside* the window must account for exactly the 2000 measured
//! GETs: instrumentation that is both live and allocation-free is the
//! zero-overhead claim of DESIGN.md §11.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mapapi::reference::LockedBTreeMap;
use mapapi::ConcurrentMap;
use server::{proto, Backend, Request, Server, ServerOpts};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: defers to `System` for every operation; only adds counting.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// GET request frame: `[len=9][op=1][key u64]`.
const GET_FRAME: usize = 13;
/// GET response frame: `[len=10][tag=1][found u8][value u64]`.
const GET_RESP: usize = 14;

/// One #[test] so no sibling test's bookkeeping can allocate concurrently
/// with the measured window — the counter is process-global.
#[test]
fn reactor_steady_state_get_path_is_allocation_free() {
    // Let libtest's main thread finish parking in its result-channel
    // `recv`: that first blocking receive lazily allocates the thread's
    // park context, which must not land inside a measured window.
    std::thread::sleep(std::time::Duration::from_millis(100));
    // The served map must not allocate on reads either: a locked BTree's
    // get is lock + lookup, nothing else.
    let map: Arc<dyn ConcurrentMap> = Arc::new(LockedBTreeMap::new());
    map.insert(1, 10);
    for k in 2..=64 {
        map.insert(k, k);
    }
    let srv = Server::start_with(
        Arc::clone(&map),
        // Pinned to the reactor regardless of PATHCAS_BACKEND: this test IS
        // the reactor's allocation contract.
        ServerOpts { backend: Backend::Reactor, ..ServerOpts::default() },
        "127.0.0.1:0",
    )
    .unwrap();

    let mut sock = TcpStream::connect(srv.local_addr()).unwrap();
    sock.set_nodelay(true).unwrap();

    let mut get = Vec::with_capacity(GET_FRAME);
    proto::encode_request(&Request::Get(1), &mut get);
    assert_eq!(get.len(), GET_FRAME);
    let mut resp = [0u8; GET_RESP];

    // Warm up: the connection's pooled decoder grows to its read chunk, the
    // write queue to a response, the kernel-side windows settle.
    for _ in 0..256 {
        sock.write_all(&get).unwrap();
        sock.read_exact(&mut resp).unwrap();
    }
    // [len=10][tag=GET][found=1][value=10 LE]
    assert_eq!(resp[..6], [10, 0, 0, 0, 1, 1]);
    assert_eq!(u64::from_le_bytes(resp[6..].try_into().unwrap()), 10);

    // Registry reads stay outside the measured window (String rendering
    // allocates); the *increments* inside the window must not.
    let gets_before = telemetry::value("srv_ops_get_total").expect("metric registered");
    let reads_before = telemetry::value("reactor_read_syscalls_total").unwrap();
    let sampled_before = telemetry::value("trace_sampled_total").expect("tracer registered");
    let spans_before = telemetry::value("trace_spans_recorded_total").unwrap();

    let before = allocations();
    for _ in 0..2000 {
        sock.write_all(&get).unwrap();
        sock.read_exact(&mut resp).unwrap();
    }
    let after = allocations();
    assert_eq!(resp[..6], [10, 0, 0, 0, 1, 1]);
    assert_eq!(
        after - before,
        0,
        "the reactor's warm GET path must not allocate (got {} allocations over 2000 \
         round-trips)",
        after - before
    );

    // The allocation-free window was fully instrumented: every measured
    // GET landed in the per-verb counter, and the reactor's read-syscall
    // counter moved with the socket traffic.
    assert_eq!(
        telemetry::value("srv_ops_get_total").unwrap() - gets_before,
        2000,
        "telemetry missed ops inside the zero-alloc window"
    );
    assert!(telemetry::value("reactor_read_syscalls_total").unwrap() > reads_before);

    // The span tracer was live at its default 1-in-64 rate for the whole
    // window — every 64th GET recorded its full phase breakdown — and the
    // zero above was measured *with* it.  2000 ops must sample at least
    // ⌊2000/64⌋ times, each with several spans.
    assert_eq!(telemetry::trace::sample_every(), telemetry::trace::DEFAULT_SAMPLE_EVERY);
    let sampled = telemetry::value("trace_sampled_total").unwrap() - sampled_before;
    assert!(sampled >= 2000 / telemetry::trace::DEFAULT_SAMPLE_EVERY, "sampler stalled: {sampled}");
    assert!(
        telemetry::value("trace_spans_recorded_total").unwrap() - spans_before >= 4 * sampled,
        "sampled ops recorded too few spans"
    );

    // Counter sanity: a SCAN response carries a Vec server-side, so the
    // same connection, same window, must show allocations.
    let mut scan = Vec::new();
    proto::encode_request(&Request::Scan(1, 16), &mut scan);
    // [len][tag=SCAN][count=16][16 × (key,value)]
    let mut scan_resp = [0u8; 4 + 1 + 4 + 16 * 16];
    let before = allocations();
    for _ in 0..100 {
        sock.write_all(&scan).unwrap();
        sock.read_exact(&mut scan_resp).unwrap();
    }
    let delta = allocations() - before;
    assert!(
        delta >= 100,
        "the scan path should allocate its result Vec every op (got {delta} over 100 ops) — \
         if this fires, the zero above is not trustworthy"
    );
    drop(sock);
    srv.shutdown();

    // The threaded backend owes the same contract: its warm GET path —
    // blocking frame read → decode → execute → encode → batched flush —
    // with the tracer live at the default rate, allocation-free.
    let srv = Server::start_with(
        Arc::clone(&map),
        ServerOpts { backend: Backend::Threads, ..ServerOpts::default() },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut sock = TcpStream::connect(srv.local_addr()).unwrap();
    sock.set_nodelay(true).unwrap();
    for _ in 0..256 {
        sock.write_all(&get).unwrap();
        sock.read_exact(&mut resp).unwrap();
    }
    let sampled_before = telemetry::value("trace_sampled_total").unwrap();
    let before = allocations();
    for _ in 0..2000 {
        sock.write_all(&get).unwrap();
        sock.read_exact(&mut resp).unwrap();
    }
    let after = allocations();
    assert_eq!(resp[..6], [10, 0, 0, 0, 1, 1]);
    assert_eq!(
        after - before,
        0,
        "the threaded backend's warm GET path must not allocate (got {} allocations over \
         2000 round-trips)",
        after - before
    );
    assert!(
        telemetry::value("trace_sampled_total").unwrap() - sampled_before
            >= 2000 / telemetry::trace::DEFAULT_SAMPLE_EVERY,
        "sampler stalled on the threaded backend"
    );
    drop(sock);
    srv.shutdown();
}
