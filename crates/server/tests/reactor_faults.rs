//! The reactor-era fault battery: torn frames at every byte boundary,
//! slow-reader herds, mid-frame disconnects, and RST storms (the epoll
//! `EPOLLHUP`/`EPOLLERR` path).  Run against **both** backends — the torn
//! and slow cases are exactly where an event-loop rewrite diverges from a
//! thread per connection, so any difference fails with the backend named.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::Duration;

use common::{for_each_backend, start_on};
use mapapi::ConcurrentMap;
use replica::ReplicatedMap;
use server::{Backend, Connection, Request, Response, Server, ServerOpts};

fn start(backend: Backend) -> (Server, Arc<dyn ConcurrentMap>) {
    let map: Arc<dyn ConcurrentMap> = Arc::new(pathcas_ds::PathCasAvl::new());
    let srv = start_on(Arc::clone(&map), backend);
    (srv, map)
}

fn assert_still_serving(srv: &Server, key: u64) {
    let mut conn = Connection::connect(srv.local_addr()).unwrap();
    assert_eq!(conn.request(&Request::Put(key, key)).unwrap(), Response::Put(true));
    assert_eq!(conn.request(&Request::Get(key)).unwrap(), Response::Get(Some(key)));
}

/// Arrange for `drop(stream)` to send an RST instead of a FIN, so the
/// server sees a hard connection error (`EPOLLHUP`/`EPOLLERR` on the
/// reactor, `ECONNRESET` on a threaded read/write).
fn arm_reset_on_drop(stream: &TcpStream) {
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const Linger, len: u32) -> i32;
    }
    let opt = Linger { l_onoff: 1, l_linger: 0 };
    // SAFETY: passes a properly sized, repr(C) option struct for a live fd.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            &opt,
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER) failed: {}", std::io::Error::last_os_error());
}

#[test]
fn a_request_torn_at_every_byte_boundary_still_decodes() {
    for_each_backend(|backend| {
        let (srv, map) = start(backend);
        map.insert(77, 770);
        let mut frame = Vec::new();
        server::proto::encode_request(&Request::Get(77), &mut frame);
        // Deliver the same request split at every possible byte boundary,
        // with a pause so the server's read path genuinely sees two
        // deliveries (TCP_NODELAY is on both sides).
        for split in 1..frame.len() {
            let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
            raw.set_nodelay(true).unwrap();
            raw.write_all(&frame[..split]).unwrap();
            std::thread::sleep(Duration::from_millis(2));
            raw.write_all(&frame[split..]).unwrap();
            let mut reader = std::io::BufReader::new(raw);
            let mut payload = Vec::new();
            assert!(
                server::proto::read_frame(&mut reader, &mut payload).unwrap(),
                "split at byte {split}: no response"
            );
            assert_eq!(
                server::proto::decode_response(&payload).unwrap(),
                Response::Get(Some(770)),
                "split at byte {split}"
            );
        }
        srv.shutdown();
    });
}

#[test]
fn a_pipelined_burst_torn_mid_stream_still_answers_in_order() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);
        // 32 requests in one stream, torn in the middle of frame 17's body.
        let reqs: Vec<Request> = (1..=32u64).map(|k| Request::Put(k, k)).collect();
        let mut stream = Vec::new();
        for r in &reqs {
            server::proto::encode_request(r, &mut stream);
        }
        let cut = stream.len() / 2 + 3; // mid-frame, not on a boundary
        let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
        raw.set_nodelay(true).unwrap();
        raw.write_all(&stream[..cut]).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        raw.write_all(&stream[cut..]).unwrap();
        let mut reader = std::io::BufReader::new(raw);
        let mut payload = Vec::new();
        for i in 0..reqs.len() {
            assert!(server::proto::read_frame(&mut reader, &mut payload).unwrap(), "frame {i}");
            assert_eq!(
                server::proto::decode_response(&payload).unwrap(),
                Response::Put(true),
                "response {i} out of order or wrong"
            );
        }
        srv.shutdown();
    });
}

#[test]
fn mid_frame_disconnect_storm_leaves_everyone_else_serving() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);
        // 64 connections die mid-frame: half with a clean FIN, half with a
        // hard RST. The server must shrug all of them off.
        for wave in 0..64u32 {
            let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
            raw.write_all(&1000u32.to_le_bytes()).unwrap();
            raw.write_all(&[0x5A; 37]).unwrap();
            if wave % 2 == 0 {
                arm_reset_on_drop(&raw);
            }
            drop(raw);
        }
        for k in 0..8 {
            assert_still_serving(&srv, 500 + k);
        }
        srv.shutdown();
    });
}

#[test]
fn rst_storm_against_live_subscribers_does_not_stall_the_stream() {
    for_each_backend(|backend| {
        let map = Arc::new(ReplicatedMap::new(Box::new(pathcas_ds::PathCasAvl::new())));
        let srv = Server::start_with(
            Arc::clone(&map) as Arc<dyn ConcurrentMap>,
            ServerOpts { log: Some(map.log()), backend, ..ServerOpts::default() },
            "127.0.0.1:0",
        )
        .unwrap();

        // A herd of subscribers that all die by RST while subscribed...
        let mut doomed = Vec::new();
        for _ in 0..32 {
            let mut sub = TcpStream::connect(srv.local_addr()).unwrap();
            let mut frame = Vec::new();
            server::proto::encode_request(&Request::Subscribe(0), &mut frame);
            sub.write_all(&frame).unwrap();
            arm_reset_on_drop(&sub);
            doomed.push(sub);
        }
        // ...plus one survivor that must keep receiving events throughout.
        let mut survivor = Connection::connect(srv.local_addr()).unwrap();
        survivor.subscribe(0).unwrap();

        let mut writer = Connection::connect(srv.local_addr()).unwrap();
        for k in 1..=50u64 {
            assert_eq!(writer.request(&Request::Put(k, k)).unwrap(), Response::Put(true));
        }
        drop(doomed); // the storm: 32 RSTs land while events are streaming
        for k in 51..=100u64 {
            assert_eq!(writer.request(&Request::Put(k, k)).unwrap(), Response::Put(true));
        }

        let mut seen = 0usize;
        while seen < 100 {
            let batch = survivor.next_events().unwrap();
            for (i, (seqno, _)) in batch.iter().enumerate() {
                assert_eq!(*seqno, (seen + i) as u64 + 1, "gap in the survivor's stream");
            }
            seen += batch.len();
        }
        assert_eq!(seen, 100);
        assert_still_serving(&srv, 10_000);
        srv.shutdown();
    });
}

#[test]
fn a_herd_of_slow_readers_stalls_none_of_the_fast_ones() {
    for_each_backend(|backend| {
        let (srv, map) = start(backend);
        for k in 1..=1024u64 {
            map.insert(k, k);
        }
        // 8 connections each pipeline 64 big scans (~16 KiB responses) and
        // read nothing: every one of them wedges its response path.
        const HERD: usize = 8;
        const BURST: usize = 64;
        let mut req = Vec::new();
        for _ in 0..BURST {
            server::proto::encode_request(&Request::Scan(1, 1024), &mut req);
        }
        let mut herd = Vec::new();
        for _ in 0..HERD {
            let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
            raw.write_all(&req).unwrap();
            herd.push(raw);
        }
        std::thread::sleep(Duration::from_millis(50));
        // Fast connections are completely unaffected.
        for k in 0..20 {
            assert_still_serving(&srv, 200_000 + k);
        }
        // Each slow reader then drains all 64 scans, complete and in order.
        for (c, raw) in herd.into_iter().enumerate() {
            let mut reader = std::io::BufReader::new(raw);
            let mut payload = Vec::new();
            for i in 0..BURST {
                assert!(
                    server::proto::read_frame(&mut reader, &mut payload).unwrap(),
                    "conn {c} frame {i}"
                );
                match server::proto::decode_response(&payload).unwrap() {
                    Response::Scan(pairs) => assert_eq!(pairs.len(), 1024, "conn {c} scan {i}"),
                    other => panic!("conn {c} scan {i} answered {other:?}"),
                }
            }
        }
        srv.shutdown();
    });
}

#[test]
fn a_half_closed_connection_gets_its_tail_of_responses() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);
        // Client writes a burst, then shuts down its write half before
        // reading anything: the server must still deliver every response
        // (flush-then-close on EOF), not drop the tail.
        let reqs: Vec<Request> = (1..=16u64).map(|k| Request::Put(k, k)).collect();
        let mut stream = Vec::new();
        for r in &reqs {
            server::proto::encode_request(r, &mut stream);
        }
        let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
        raw.write_all(&stream).unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = std::io::BufReader::new(raw);
        let mut payload = Vec::new();
        for i in 0..reqs.len() {
            assert!(server::proto::read_frame(&mut reader, &mut payload).unwrap(), "frame {i}");
            assert_eq!(server::proto::decode_response(&payload).unwrap(), Response::Put(true));
        }
        assert!(!server::proto::read_frame(&mut reader, &mut payload).unwrap(), "then EOF");
        srv.shutdown();
    });
}
