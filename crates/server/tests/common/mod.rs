//! Shared helpers for the backend-differential server batteries: every
//! loopback, fault, and replication test runs once per [`Backend`], so the
//! reactor inherits the threaded backend's entire coverage and any
//! divergence fails with the backend's name in the panic message.

// Each test binary compiles its own copy of this module and uses a
// different subset of it.
#![allow(dead_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use mapapi::ConcurrentMap;
use server::{Backend, Server, ServerOpts};

/// Run `body` once per serving backend.  A panic inside `body` is re-thrown
/// with the backend's name prepended — "the reactor diverged on test X" is
/// a named failure, not a guess.
pub fn for_each_backend(body: impl Fn(Backend)) {
    for backend in Backend::ALL {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(backend))) {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            panic!("[{} backend] {msg}", backend.label());
        }
    }
}

/// Default [`ServerOpts`] pinned to `backend` (ignoring `PATHCAS_BACKEND`,
/// so the battery always covers both).
pub fn opts(backend: Backend) -> ServerOpts {
    ServerOpts { backend, ..ServerOpts::default() }
}

/// Start a server for `map` on an ephemeral loopback port, on `backend`.
pub fn start_on(map: Arc<dyn ConcurrentMap>, backend: Backend) -> Server {
    Server::start_with(map, opts(backend), "127.0.0.1:0").expect("bind loopback")
}
