//! The many-connections soak: thousands of concurrent pipelined
//! connections held open against one server — the regime the reactor
//! backend exists for (a thread per connection at this scale means
//! thousands of stacks; the reactor spends a buffer pair each).
//!
//! Ignored by default (it wants a release build and a minute of wall
//! clock); CI runs it explicitly:
//!
//! ```text
//! cargo test --release -q -p server --test soak -- --ignored
//! ```
//!
//! `PATHCAS_BACKEND` selects the backend (default: reactor);
//! `PATHCAS_SOAK_CONNS` scales the herd (default 2048, the acceptance
//! floor is 2000).

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use mapapi::ConcurrentMap;
use server::{proto, Backend, Request, Response, Server, ServerOpts, ServiceMap};
use shard::ShardedMap;

/// Pipelined writes per connection; keys are unique per (connection, op),
/// so the response order proves per-connection FIFO end to end.
const OPS: usize = 32;

#[test]
#[ignore = "soak: thousands of live connections; run explicitly (CI release job)"]
fn many_connections_pipelined_soak() {
    let conns: usize = std::env::var("PATHCAS_SOAK_CONNS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(2048);
    assert!(conns >= 2000, "the soak's acceptance floor is 2000 connections (got {conns})");
    let backend = Backend::from_env().unwrap_or(Backend::Reactor);

    // Server + client live in this one process: two fds per connection,
    // plus slack for the suite itself.
    let want_fds = (conns as u64) * 2 + 512;
    let got = epoll_shim::raise_nofile_limit(want_fds)
        .expect("raising RLIMIT_NOFILE for the soak");
    assert!(got >= want_fds, "fd limit {got} too low for {conns} connections");

    let map = ShardedMap::from_fn(8, |_| Box::new(pathcas_ds::PathCasAvl::new()));
    let map: Arc<dyn ConcurrentMap> = Arc::new(map);
    let srv = Server::start_with(
        Arc::clone(&map),
        ServerOpts { backend, ..ServerOpts::default() },
        "127.0.0.1:0",
    )
    .expect("binding the soak server");
    let addr = srv.local_addr();

    // A modest pool of driver threads multiplexes the herd client-side; the
    // point of the soak is the *server-side* concurrency, which is exactly
    // `conns` — every socket is open, written, and unread-by-us while its
    // siblings are in flight.
    let drivers = 16usize;
    let barrier = Arc::new(Barrier::new(drivers));
    std::thread::scope(|s| {
        for d in 0..drivers {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                // Phase 1: open this driver's slice of the herd.
                let lo = conns * d / drivers;
                let hi = conns * (d + 1) / drivers;
                let mut socks: Vec<TcpStream> = (lo..hi)
                    .map(|c| {
                        TcpStream::connect(addr)
                            .unwrap_or_else(|e| panic!("connect #{c}: {e}"))
                    })
                    .collect();
                // Every connection in the process exists before any op
                // flows: the server genuinely holds `conns` live sockets.
                barrier.wait();

                // Phase 2: every connection pipelines its burst of PUTs
                // (unique keys) without reading — all bursts are in flight
                // together.
                for (i, sock) in socks.iter_mut().enumerate() {
                    let c = (lo + i) as u64;
                    let mut burst = Vec::new();
                    for op in 0..OPS as u64 {
                        let key = c * OPS as u64 + op + 1;
                        proto::encode_request(&Request::Put(key, key), &mut burst);
                    }
                    sock.write_all(&burst).unwrap();
                }
                barrier.wait();

                // Phase 3: drain every connection; responses must be
                // complete and in submission order.  Then a pipelined GET
                // burst re-reads the same keys — the values coming back in
                // key order is the FIFO proof.
                for (i, sock) in socks.iter_mut().enumerate() {
                    let c = (lo + i) as u64;
                    let mut gets = Vec::new();
                    for op in 0..OPS as u64 {
                        let key = c * OPS as u64 + op + 1;
                        proto::encode_request(&Request::Get(key), &mut gets);
                    }
                    let mut reader = BufReader::new(sock.try_clone().unwrap());
                    let mut payload = Vec::new();
                    for op in 0..OPS {
                        assert!(
                            proto::read_frame(&mut reader, &mut payload).unwrap(),
                            "conn {c} put-response {op} missing"
                        );
                        assert_eq!(
                            proto::decode_response(&payload).unwrap(),
                            Response::Put(true),
                            "conn {c} put {op}"
                        );
                    }
                    sock.write_all(&gets).unwrap();
                    for op in 0..OPS as u64 {
                        let key = c * OPS as u64 + op + 1;
                        assert!(
                            proto::read_frame(&mut reader, &mut payload).unwrap(),
                            "conn {c} get-response {op} missing"
                        );
                        assert_eq!(
                            proto::decode_response(&payload).unwrap(),
                            Response::Get(Some(key)),
                            "conn {c}: response {op} out of order"
                        );
                    }
                }
                // The herd stays open until every driver has drained.
                barrier.wait();
                drop(socks);
            });
        }
    });

    // Final wire-level audit over a fresh connection: the chunked SCAN walk
    // must agree with STATS exactly — count and keysum — after the storm.
    let svc = ServiceMap::connect(addr, 2, "soak-audit").expect("audit pool");
    let stats = svc.stats();
    let n = (conns * OPS) as u64;
    assert_eq!(stats.key_count, n, "every put landed exactly once");
    assert_eq!(stats.key_sum, u128::from(n) * u128::from(n + 1) / 2, "keysum of 1..=n");
    mapapi::suites::check_scan_matches_stats(&svc, &stats);
    drop(svc);
    srv.shutdown();
}
