//! Fault injection against the server: torn frames, hostile length
//! prefixes, frames at and beyond the size ceiling, and a slow reader.
//! The invariant throughout: a misbehaving connection only ever hurts
//! itself — the server never panics and every other connection keeps
//! serving.
//!
//! Each fault runs against **both** serving backends; the reactor must be
//! exactly as fault-isolated as a thread per connection was.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use common::{for_each_backend, start_on};
use mapapi::ConcurrentMap;
use server::{Backend, Connection, Request, Response, Server, MAX_FRAME};

fn start(backend: Backend) -> (Server, Arc<dyn ConcurrentMap>) {
    let map: Arc<dyn ConcurrentMap> = Arc::new(pathcas_ds::PathCasAvl::new());
    let srv = start_on(Arc::clone(&map), backend);
    (srv, map)
}

/// The canary: a well-behaved connection must work, fault or no fault.
fn assert_still_serving(srv: &Server, key: u64) {
    let mut conn = Connection::connect(srv.local_addr()).unwrap();
    assert_eq!(conn.request(&Request::Put(key, key)).unwrap(), Response::Put(true));
    assert_eq!(conn.request(&Request::Get(key)).unwrap(), Response::Get(Some(key)));
}

#[test]
fn disconnect_mid_frame_only_kills_that_connection() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);
        // A frame promising 100 bytes, delivering 10, then gone.
        let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 10]).unwrap();
        drop(raw);
        assert_still_serving(&srv, 1);
        srv.shutdown();
    });
}

#[test]
fn truncated_length_prefix_only_kills_that_connection() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);
        // Two bytes of a four-byte prefix, then EOF: the server must treat the
        // torn prefix as an error end-of-connection, not hang waiting.
        let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
        raw.write_all(&[0x12, 0x34]).unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        // The server closes without a response.
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty(), "no response frame for a torn prefix");
        assert_still_serving(&srv, 2);
        srv.shutdown();
    });
}

#[test]
fn frame_exactly_at_the_ceiling_is_read_and_answered() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);
        // len == MAX_FRAME is legal framing: the server reads the whole
        // payload.  Its first byte is an unknown opcode, so the answer is an
        // Err response followed by connection close — proving the frame was
        // consumed, not rejected at the prefix.
        let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
        raw.write_all(&(MAX_FRAME as u32).to_le_bytes()).unwrap();
        raw.write_all(&vec![0xAAu8; MAX_FRAME]).unwrap();
        let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
        let mut payload = Vec::new();
        assert!(server::proto::read_frame(&mut reader, &mut payload).unwrap());
        match server::proto::decode_response(&payload).unwrap() {
            Response::Err(msg) => assert!(msg.contains("opcode"), "got: {msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        assert!(
            !server::proto::read_frame(&mut reader, &mut payload).unwrap(),
            "closed after Err"
        );
        assert_still_serving(&srv, 3);
        srv.shutdown();
    });
}

#[test]
fn frame_above_the_ceiling_is_rejected_before_allocation() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);
        let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
        raw.write_all(&(MAX_FRAME as u32 + 1).to_le_bytes()).unwrap();
        // The connection is torn with no response: the server refused at the
        // prefix and never tried to read (or allocate) the body.
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty(), "no response frame for an oversized prefix");
        assert_still_serving(&srv, 4);
        srv.shutdown();
    });
}

#[test]
fn malformed_trace_frames_only_hurt_their_connection() {
    for_each_backend(|backend| {
        let (srv, _map) = start(backend);

        // A TRACE frame with a truncated body (opcode but no version byte)
        // is a framing-level decode error: answered with Err, then closed.
        let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
        raw.write_all(&1u32.to_le_bytes()).unwrap();
        raw.write_all(&[9u8]).unwrap();
        let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
        let mut payload = Vec::new();
        assert!(server::proto::read_frame(&mut reader, &mut payload).unwrap());
        match server::proto::decode_response(&payload).unwrap() {
            Response::Err(msg) => assert!(msg.contains("truncated"), "got: {msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        assert!(
            !server::proto::read_frame(&mut reader, &mut payload).unwrap(),
            "closed after Err"
        );
        assert_still_serving(&srv, 5);

        // A wrong TRACE *version* is a semantic error: the connection
        // survives and keeps serving.
        let mut conn = Connection::connect(srv.local_addr()).unwrap();
        match conn.request(&Request::Trace(99)).unwrap() {
            Response::Err(msg) => assert!(msg.contains("version 99"), "got: {msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        assert_eq!(conn.request(&Request::Put(6, 6)).unwrap(), Response::Put(true));
        assert_still_serving(&srv, 7);
        srv.shutdown();
    });
}

#[test]
fn a_slow_reader_stalls_only_itself() {
    for_each_backend(|backend| {
        let (srv, map) = start(backend);
        for k in 1..=4096u64 {
            map.insert(k, k);
        }
        // Pipeline a burst of big scans and then *don't read*: the responses
        // (~16 MB total) overflow the socket buffers and block the handler in
        // its write path (threads) or park the staged bytes behind EPOLLOUT
        // (reactor).
        const BURST: usize = 256;
        let mut slow = Connection::connect(srv.local_addr()).unwrap();
        let mut reqs = Vec::new();
        for _ in 0..BURST {
            reqs.push(Request::Scan(1, 4096));
        }
        let mut buf = Vec::new();
        for r in &reqs {
            server::proto::encode_request(r, &mut buf);
        }
        {
            // Write the burst through the raw socket half so no read happens.
            let mut raw = TcpStream::connect(srv.local_addr()).unwrap();
            raw.write_all(&buf).unwrap();
            // While that handler is wedged on writes, everyone else is live.
            std::thread::sleep(Duration::from_millis(50));
            for k in 0..20 {
                assert_still_serving(&srv, 100_000 + k);
            }
            // Now drain: every response arrives, complete and in order.
            let mut reader = std::io::BufReader::new(raw);
            let mut payload = Vec::new();
            for i in 0..BURST {
                assert!(
                    server::proto::read_frame(&mut reader, &mut payload).unwrap(),
                    "frame {i}"
                );
                match server::proto::decode_response(&payload).unwrap() {
                    Response::Scan(pairs) => assert_eq!(pairs.len(), 4096, "scan {i}"),
                    other => panic!("scan {i} answered {other:?}"),
                }
            }
        }
        // The pooled connection still works too.
        assert_eq!(slow.request(&Request::Stats).unwrap(), Response::Stats(map.stats()));
        srv.shutdown();
    });
}
