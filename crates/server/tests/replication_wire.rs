//! The wire half of replication: SUBSCRIBE streaming, WireTail-driven
//! followers, and the read-only follower front-end — on both backends,
//! since the reactor ports streaming and read-only mode.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use common::for_each_backend;
use mapapi::ConcurrentMap;
use replica::{Checkpoint, Event, Follower, ReplicatedMap};
use server::{
    Backend, Connection, Request, Response, Server, ServerOpts, ServiceMap, WireTail,
};

fn primary() -> Arc<ReplicatedMap> {
    Arc::new(ReplicatedMap::new(Box::new(pathcas_ds::PathCasAvl::new())))
}

fn start_primary(map: &Arc<ReplicatedMap>, backend: Backend) -> Server {
    let opts = ServerOpts { log: Some(map.log()), backend, ..ServerOpts::default() };
    Server::start_with(Arc::clone(map) as Arc<dyn ConcurrentMap>, opts, "127.0.0.1:0").unwrap()
}

fn await_seqno(f: &Follower, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while f.applied_seqno() < want {
        assert!(Instant::now() < deadline, "follower stuck at {} < {want}", f.applied_seqno());
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn subscribe_streams_committed_mutations_in_order() {
    for_each_backend(|backend| {
        let map = primary();
        let srv = start_primary(&map, backend);

        let mut sub = Connection::connect(srv.local_addr()).unwrap();
        sub.subscribe(0).unwrap();

        let mut writer = Connection::connect(srv.local_addr()).unwrap();
        assert_eq!(writer.request(&Request::Put(1, 10)).unwrap(), Response::Put(true));
        assert_eq!(writer.request(&Request::Put(1, 10)).unwrap(), Response::Put(false));
        assert_eq!(writer.request(&Request::Rmw(1, 5)).unwrap(), Response::Rmw(true));
        assert_eq!(writer.request(&Request::Del(1)).unwrap(), Response::Del(true));
        assert_eq!(writer.request(&Request::Del(1)).unwrap(), Response::Del(false));

        // Only the three *committed* mutations stream, densely numbered; the
        // failed duplicate PUT and no-op DEL never appear.
        let mut got = Vec::new();
        while got.len() < 3 {
            got.extend(sub.next_events().unwrap());
        }
        assert_eq!(
            got,
            vec![
                (1, Event::Put(1, 10)),
                // RMW streams as its committed post-value — the canonical
                // affine update (10 + 5) & MAX_KEY, whose even mask drops bit 0.
                (2, Event::Set(1, 14)),
                (3, Event::Del(1)),
            ]
        );
        srv.shutdown();
    });
}

#[test]
fn subscribe_resumes_after_a_given_seqno() {
    for_each_backend(|backend| {
        let map = primary();
        for k in 1..=20u64 {
            map.insert(k, k);
        }
        let srv = start_primary(&map, backend);
        let mut sub = Connection::connect(srv.local_addr()).unwrap();
        sub.subscribe(18).unwrap();
        let got = sub.next_events().unwrap();
        assert_eq!(got, vec![(19, Event::Put(19, 19)), (20, Event::Put(20, 20))]);
        srv.shutdown();
    });
}

#[test]
fn subscribing_to_a_logless_server_errors_but_does_not_kill_it() {
    for_each_backend(|backend| {
        let map: Arc<dyn ConcurrentMap> = Arc::new(pathcas_ds::PathCasAvl::new());
        let srv = common::start_on(map, backend);
        let mut conn = Connection::connect(srv.local_addr()).unwrap();
        conn.subscribe(0).unwrap();
        let err = conn.next_events().unwrap_err();
        assert!(err.to_string().contains("no change stream"), "got: {err}");
        // Semantic error: the same connection keeps serving point ops.
        assert_eq!(conn.request(&Request::Put(5, 5)).unwrap(), Response::Put(true));
        srv.shutdown();
    });
}

#[test]
fn wire_tail_follower_tracks_the_primary_and_serves_reads() {
    for_each_backend(|backend| {
        let map = primary();
        for k in 1..=100u64 {
            map.insert(k, k);
        }
        let ckpt = map.checkpoint();
        let srv = start_primary(&map, backend);

        // Bootstrap from the checkpoint, then tail over the wire from there.
        let follower =
            Arc::new(Follower::bootstrap(Box::new(pathcas_ds::PathCasBst::new()), &ckpt));
        let tail = WireTail::start(srv.local_addr(), Arc::clone(&follower)).unwrap();

        // Mutations after the cut arrive through the subscription.
        let mut writer = Connection::connect(srv.local_addr()).unwrap();
        for k in 101..=200u64 {
            assert_eq!(writer.request(&Request::Put(k, k)).unwrap(), Response::Put(true));
        }
        writer.request(&Request::Del(50)).unwrap();
        writer.request(&Request::Rmw(60, 7)).unwrap();

        await_seqno(&follower, map.log().seqno());
        assert_eq!(follower.get(50), None);
        assert_eq!(follower.get(60), Some((60 + 7) & mapapi::MAX_KEY));
        assert_eq!(follower.get(200), Some(200));
        let (ps, fs) = (map.stats(), follower.stats());
        assert_eq!((ps.key_count, ps.key_sum), (fs.key_count, fs.key_sum));

        // Serve the follower read-only over its own socket, on the same
        // backend under test.
        let fsrv = Server::start_with(
            Arc::clone(&follower) as Arc<dyn ConcurrentMap>,
            ServerOpts { log: None, read_only: true, backend, ..ServerOpts::default() },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut conn = Connection::connect(fsrv.local_addr()).unwrap();
        assert_eq!(conn.request(&Request::Get(200)).unwrap(), Response::Get(Some(200)));
        // Writes are rejected with a semantic error and the connection survives.
        for req in [Request::Put(9999, 1), Request::Del(200), Request::Rmw(200, 1)] {
            match conn.request(&req).unwrap() {
                Response::Err(msg) => assert!(msg.contains("read-only"), "got: {msg}"),
                other => panic!("read-only server answered {req:?} with {other:?}"),
            }
        }
        assert_eq!(conn.request(&Request::Get(200)).unwrap(), Response::Get(Some(200)));
        // The read-only rejection happened before the map: key 9999 absent.
        assert_eq!(conn.request(&Request::Get(9999)).unwrap(), Response::Get(None));

        // And the full ConcurrentMap surface works against it via ServiceMap.
        let svc = ServiceMap::connect(fsrv.local_addr(), 2, "follower").unwrap();
        let stats = svc.stats();
        mapapi::suites::check_scan_matches_stats(&svc, &stats);

        fsrv.shutdown();
        tail.stop();
        srv.shutdown();
    });
}

#[test]
fn wire_tail_survives_primary_shutdown() {
    for_each_backend(|backend| {
        let map = primary();
        let srv = start_primary(&map, backend);
        let follower = Arc::new(Follower::bootstrap(
            Box::new(pathcas_ds::PathCasAvl::new()),
            &Checkpoint { seqno: 0, sections: vec![] },
        ));
        let tail = WireTail::start(srv.local_addr(), Arc::clone(&follower)).unwrap();
        map.insert(1, 1);
        await_seqno(&follower, 1);
        // Primary goes away: the tail thread ends cleanly, the follower keeps
        // serving its (now frozen) state.
        srv.shutdown();
        tail.stop();
        assert_eq!(follower.get(1), Some(1));
    });
}
