//! The METRICS verb battery, run differentially on both backends: the
//! exposition must reconcile with client-side op counts, the per-shard
//! load section must sum to the total, the metric *name set* must be
//! identical across backends, version mismatches must fail semantically,
//! and a zero slow-op threshold must populate the flight recorder.
//!
//! One `#[test]` on purpose: the server counters are process-global, so
//! the assertions work in deltas and nothing else in this binary may move
//! them concurrently.

mod common;

use std::collections::BTreeSet;
use std::sync::Arc;

use common::{for_each_backend, opts, start_on};
use mapapi::reference::LockedBTreeMap;
use mapapi::ConcurrentMap;
use server::{Backend, Connection, Request, Response, Server, ServerOpts};
use shard::ShardedMap;

const SHARDS: usize = 4;

fn sharded() -> Arc<dyn ConcurrentMap> {
    Arc::new(ShardedMap::from_fn(SHARDS, |_| {
        Box::new(LockedBTreeMap::new()) as Box<dyn ConcurrentMap>
    }))
}

/// The value of metric `name` in an exposition (`name value` lines).
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name)?.strip_prefix(' ')?.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{text}"))
}

/// Every metric name in an exposition (annotation lines excluded).
fn names(text: &str) -> BTreeSet<String> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| l.split_whitespace().next().unwrap().to_string())
        .collect()
}

/// Sum of a labeled per-shard family, e.g. `srv_shard_point_ops{shard="i"}`.
fn shard_sum(text: &str, family: &str) -> u64 {
    let lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with(family) && l.as_bytes().get(family.len()) == Some(&b'{'))
        .collect();
    assert_eq!(lines.len(), SHARDS, "{family}: expected one line per shard:\n{text}");
    lines.iter().map(|l| l.split_whitespace().last().unwrap().parse::<u64>().unwrap()).sum()
}

#[test]
fn metrics_reconcile_on_both_backends() {
    let per_backend_names: std::sync::Mutex<Vec<BTreeSet<String>>> = std::sync::Mutex::new(Vec::new());

    for_each_backend(|backend| {
        let map = sharded();
        let server = start_on(Arc::clone(&map), backend);
        let mut conn = Connection::connect(server.local_addr()).expect("connect");

        let before = conn.metrics().expect("baseline METRICS");
        assert!(
            before.starts_with(&format!("# pathcas-metrics v1 backend={}\n", backend.label())),
            "version/backend header missing:\n{before}"
        );

        // Known traffic, pipelined: 300 PUT, 500 GET, 50 RMW, 100 DEL
        // (some misses — executed is executed), 2 SCAN, 1 STATS.
        let mut reqs = Vec::new();
        reqs.extend((1..=300u64).map(|k| Request::Put(k, k)));
        reqs.extend((1..=500u64).map(Request::Get));
        reqs.extend((1..=50u64).map(|k| Request::Rmw(k, 1)));
        reqs.extend((251..=350u64).map(Request::Del));
        reqs.push(Request::Scan(0, 1000));
        reqs.push(Request::Scan(0, 10));
        reqs.push(Request::Stats);
        let resps = conn.pipeline(&reqs).expect("pipeline");
        assert_eq!(resps.len(), reqs.len());

        let after = conn.metrics().expect("METRICS after traffic");

        // Server-side counters reconcile exactly with what we sent.
        for (name, sent) in [
            ("srv_ops_put_total", 300),
            ("srv_ops_get_total", 500),
            ("srv_ops_rmw_total", 50),
            ("srv_ops_del_total", 100),
            ("srv_ops_scan_total", 2),
            ("srv_ops_stats_total", 1),
        ] {
            let delta = metric(&after, name) - metric(&before, name);
            assert_eq!(delta, sent, "{name} delta != client-side count");
        }
        // The baseline METRICS call is accounted *after* it rendered, so
        // its own counter shows up in the second exposition.
        assert_eq!(
            metric(&after, "srv_ops_metrics_total") - metric(&before, "srv_ops_metrics_total"),
            1
        );
        // Latency histogram: one sample per executed op (953 traffic ops
        // plus the baseline METRICS), and this connection was accepted.
        assert!(
            metric(&after, "srv_op_ns_count") - metric(&before, "srv_op_ns_count") >= 954,
            "op latency histogram missed samples"
        );
        assert!(
            metric(&after, "srv_conns_accepted_total")
                >= metric(&before, "srv_conns_accepted_total").max(1)
        );

        // Per-shard loads (fresh map, so absolute values) sum to the map-
        // level totals: 950 point ops, and each scan sweeps every shard.
        assert_eq!(shard_sum(&after, "srv_shard_point_ops"), 950);
        assert_eq!(shard_sum(&after, "srv_shard_scan_ops"), 2 * SHARDS as u64);

        // The reactor counter group only moves under the reactor backend
        // (Threads runs first in Backend::ALL, so this also proves the
        // threaded path never touches them).
        let reads = metric(&after, "reactor_read_syscalls_total")
            - metric(&before, "reactor_read_syscalls_total");
        let writes = metric(&after, "reactor_write_syscalls_total")
            - metric(&before, "reactor_write_syscalls_total");
        match backend {
            Backend::Threads => assert_eq!((reads, writes), (0, 0)),
            Backend::Reactor => {
                assert!(reads > 0 && writes > 0, "reactor served without syscalls?");
                assert!(
                    metric(&after, "reactor_wakeups_total")
                        > metric(&before, "reactor_wakeups_total")
                );
                assert!(metric(&after, "reactor_frames_per_wakeup_count") > 0);
            }
        }

        // Eager registration: subsystem names are present even though this
        // map is no KCAS structure and nothing replicated.
        let set = names(&after);
        for expected in ["kcas_ops_total", "kcas_retries_total", "replica_log_seqno"] {
            assert!(set.contains(expected), "{expected} not registered");
        }
        per_backend_names.lock().unwrap().push(set);

        // A stale client version is a semantic error, not a hangup: the
        // connection survives and answers the next request.
        match conn.request(&Request::Metrics(99)).expect("version mismatch roundtrip") {
            Response::Err(msg) => assert!(msg.contains("version 99"), "odd error: {msg}"),
            other => panic!("METRICS v99 answered with {other:?}"),
        }
        assert!(matches!(conn.request(&Request::Get(1)), Ok(Response::Get(Some(2)))));

        // Zero threshold: every op is "slow", so the flight recorder fills
        // with records tagged with this backend.
        server::metrics::set_slow_op_threshold_ns(0);
        let slow_before = metric(&conn.metrics().unwrap(), "srv_slow_ops_total");
        for k in 1..=8u64 {
            conn.request(&Request::Get(k)).unwrap();
        }
        let dump = conn.metrics().unwrap();
        server::metrics::set_slow_op_threshold_ns(server::metrics::DEFAULT_SLOW_OP_THRESHOLD_NS);
        assert!(metric(&dump, "srv_slow_ops_total") >= slow_before + 8);
        let tag = format!("backend={}", backend.label());
        assert!(
            dump.lines().any(|l| l.starts_with("# slowop ")
                && l.contains("op=GET")
                && l.contains(&tag)),
            "no GET flight record for {}:\n{dump}",
            backend.label()
        );

        server.shutdown();
    });

    // Both backends expose the identical metric-name set.
    let per_backend_names = per_backend_names.into_inner().unwrap();
    assert_eq!(per_backend_names.len(), 2);
    assert_eq!(
        per_backend_names[0], per_backend_names[1],
        "metric name sets diverge across backends"
    );

    // And a read-only follower front-end still answers METRICS (it is a
    // read verb), while rejecting writes.
    let server = Server::start_with(
        sharded(),
        ServerOpts { read_only: true, ..opts(Backend::Reactor) },
        "127.0.0.1:0",
    )
    .expect("bind read-only");
    let mut conn = Connection::connect(server.local_addr()).expect("connect");
    assert!(conn.metrics().unwrap().contains("srv_ops_get_total"));
    assert!(matches!(conn.request(&Request::Put(1, 1)), Ok(Response::Err(_))));
    server.shutdown();
}
