//! Differential property tests for the reactor's incremental
//! [`FrameDecoder`] against the one-shot blocking [`proto::read_frame`]
//! oracle (the threaded backend's framing path since PR 5): over arbitrary
//! byte streams — valid pipelined request bursts, hostile garbage, and
//! mixes — split into arbitrary chunkings, both must produce **exactly**
//! the same frame sequence and agree on how the stream ends.  Plus the
//! memory bound: a hostile length prefix can never make the decoder
//! allocate past [`MAX_FRAME`] (+ one read chunk of lookahead slack).

use std::io::{BufReader, Read};

use proptest::prelude::*;
use server::proto::{self, READ_CHUNK};
use server::{FrameDecoder, Request, MAX_FRAME};

/// How the oracle saw the stream end.
#[derive(Debug, Clone, PartialEq, Eq)]
enum End {
    /// Clean EOF exactly at a frame boundary.
    Clean,
    /// EOF inside a length prefix or frame body.
    Torn,
    /// A length prefix beyond `MAX_FRAME`.
    Oversize,
}

/// Run the blocking one-shot oracle over the whole stream.
fn oracle_frames(stream: &[u8]) -> (Vec<Vec<u8>>, End) {
    let mut r = BufReader::new(stream);
    let mut frames = Vec::new();
    let mut payload = Vec::new();
    loop {
        match proto::read_frame(&mut r, &mut payload) {
            Ok(true) => frames.push(payload.clone()),
            Ok(false) => return (frames, End::Clean),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                return (frames, End::Oversize)
            }
            Err(_) => return (frames, End::Torn),
        }
    }
}

/// Feed the stream into the incremental decoder in the given chunking and
/// collect every complete frame.  Returns the frames and the equivalent
/// [`End`] classification.
fn incremental_frames(stream: &[u8], chunks: &[usize]) -> (Vec<Vec<u8>>, End) {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut off = 0;
    // The generated chunk sizes, then everything left in one final piece.
    for &c in chunks.iter().chain(std::iter::once(&usize::MAX)) {
        if off >= stream.len() {
            break;
        }
        let end = stream.len().min(off.saturating_add(c));
        dec.feed(&stream[off..end]);
        off = end;
        loop {
            match dec.next_frame() {
                Ok(Some(p)) => frames.push(p.to_vec()),
                Ok(None) => break,
                Err(_) => return (frames, End::Oversize),
            }
        }
    }
    let end = if dec.has_partial() { End::Torn } else { End::Clean };
    (frames, end)
}

/// One segment of a generated stream: a well-formed encoded request, a
/// frame of raw bytes (unknown opcodes included — framing-valid), or plain
/// garbage bytes spliced in unframed.
fn segment_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // A well-formed request frame.
        (0u8..7, any::<u64>(), any::<u64>()).prop_map(|(op, a, b)| {
            let req = match op {
                0 => Request::Get(a),
                1 => Request::Put(a, b),
                2 => Request::Del(a),
                3 => Request::Rmw(a, b),
                4 => Request::Scan(a, b as u32),
                5 => Request::Stats,
                _ => Request::Subscribe(a),
            };
            let mut buf = Vec::new();
            proto::encode_request(&req, &mut buf);
            buf
        }),
        // A framing-valid frame of arbitrary payload bytes.
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|body| {
            let mut buf = (body.len() as u32).to_le_bytes().to_vec();
            buf.extend_from_slice(&body);
            buf
        }),
        // Unframed garbage: usually tears the tail of the stream (or, by
        // luck, parses as more frames — the oracle decides).
        proptest::collection::vec(any::<u8>(), 1..12),
    ]
}

fn stream_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(segment_strategy(), 0..12)
        .prop_map(|segs| segs.concat())
}

fn chunking_strategy() -> impl Strategy<Value = Vec<usize>> {
    // Chunk sizes from single bytes up past READ_CHUNK-ish bursts.
    proptest::collection::vec(
        prop_oneof![1usize..4, 4usize..64, 64usize..4096],
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn incremental_decode_matches_the_one_shot_oracle(
        input in (stream_strategy(), chunking_strategy())
    ) {
        let (stream, chunks) = input;
        let (want, want_end) = oracle_frames(&stream);
        let (got, got_end) = incremental_frames(&stream, &chunks);
        // Frames the oracle saw before its stop condition must all be
        // produced, identically and in order.  (On Oversize the oracle
        // stops at the bad prefix; the incremental decoder stops at the
        // same point by construction.)
        assert_eq!(got, want, "frame sequences diverged");
        assert_eq!(got_end, want_end, "stream-end classification diverged");
    }

    #[test]
    fn byte_at_a_time_equals_all_at_once(stream in stream_strategy()) {
        let one = incremental_frames(&stream, &vec![1; stream.len()]);
        let all = incremental_frames(&stream, &[]);
        assert_eq!(one, all);
    }

    #[test]
    fn hostile_lengths_never_allocate_past_the_ceiling(
        input in ((MAX_FRAME as u32 + 1)..=u32::MAX, proptest::collection::vec(any::<u8>(), 0..256))
    ) {
        let (len, junk) = input;
        let mut dec = FrameDecoder::new();
        dec.feed(&len.to_le_bytes());
        dec.feed(&junk);
        assert!(dec.next_frame().is_err(), "oversize prefix must be an error");
        assert!(
            dec.capacity() <= MAX_FRAME + READ_CHUNK,
            "hostile length grew the buffer to {}",
            dec.capacity()
        );
    }

    #[test]
    fn fill_from_is_equivalent_to_feed(
        input in (stream_strategy(), chunking_strategy())
    ) {
        let (stream, chunks) = input;
        // A reader that returns at most the next chunk size per read call,
        // exercising the decoder's direct-into-buffer fill path.
        struct Chunked<'a> { data: &'a [u8], chunks: std::vec::IntoIter<usize> }
        impl Read for Chunked<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                let cap = self.chunks.next().unwrap_or(usize::MAX).min(out.len());
                let n = cap.min(self.data.len());
                out[..n].copy_from_slice(&self.data[..n]);
                self.data = &self.data[n..];
                Ok(n)
            }
        }
        let mut r = Chunked { data: &stream, chunks: chunks.iter().map(|&c| c.max(1)).collect::<Vec<_>>().into_iter() };
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        let end = loop {
            match dec.next_frame() {
                Ok(Some(p)) => { frames.push(p.to_vec()); continue }
                Ok(None) => {}
                Err(_) => break End::Oversize,
            }
            match dec.fill_from(&mut r) {
                Ok(0) => break if dec.has_partial() { End::Torn } else { End::Clean },
                Ok(_) => {}
                Err(_) => unreachable!("Chunked never errors"),
            }
        };
        let (want, want_end) = oracle_frames(&stream);
        assert_eq!(frames, want);
        assert_eq!(end, want_end);
        // In steady state the buffer is bounded by one frame plus a chunk
        // of lookahead, regardless of how reads were sliced.
        assert!(dec.capacity() <= MAX_FRAME + READ_CHUNK);
    }
}
