//! The server front door — backend selection — plus the threaded backend:
//! one acceptor thread, one handler thread per connection, responses
//! batched per pipeline burst.
//!
//! [`Server`] itself is a thin facade over two interchangeable backends
//! speaking the identical wire protocol (the whole test battery runs
//! against both; see [`Backend`]):
//!
//! * **threads** — the model documented below: simple, blocking, one OS
//!   thread per connection;
//! * **reactor** — the epoll-driven event loop in [`crate::reactor`]: a
//!   fixed thread pool multiplexing every connection through readiness
//!   notifications, which is what scales past a few hundred connections.
//!
//! A handler decodes and executes requests one at a time but only flushes
//! its write buffer when the read side has drained — so a client that
//! pipelines N requests gets its N responses written as one batch, which is
//! where the service throughput comes from (syscalls and wakeups are paid
//! per *burst*, not per op).  The structure itself needs no extra locking:
//! it is a [`ConcurrentMap`], so handler threads hit it concurrently
//! exactly like in-process worker threads do.
//!
//! Handlers block in plain reads with **no read timeout** — a frame split
//! across TCP segments can take as long as it takes.  [`Server::shutdown`]
//! unblocks them by shutting the sockets down: blocked reads return
//! EOF/reset, every thread exits, and `shutdown` returns only after the
//! last join.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mapapi::ConcurrentMap;
use replica::ChangeLog;

use crate::proto::{self, Request, Response, MAX_EVENTS_PER_FRAME, MAX_SCAN_LEN};

/// Optional server roles beyond plain KV serving.
///
/// * `log` — publish this [`ChangeLog`] to `SUBSCRIBE`rs.  The server does
///   **not** tap requests itself: the served map must be the
///   [`replica::ReplicatedMap`] feeding that log, so only *committed*
///   mutations appear on the stream, already in per-key order.
/// * `read_only` — reject PUT/DEL/RMW with a semantic `Err` response (the
///   connection survives, framing stays intact).  This is the follower
///   role: the map behind a read-only server is typically a
///   [`replica::Follower`], whose own write methods panic as a second line
///   of defense.
#[derive(Clone)]
pub struct ServerOpts {
    /// Change stream served to `SUBSCRIBE`, if any.
    pub log: Option<Arc<ChangeLog>>,
    /// Reject write verbs with a semantic error response.
    pub read_only: bool,
    /// Which serving backend runs the connections.
    pub backend: Backend,
    /// Reactor thread count (ignored by the threaded backend).  Each
    /// reactor thread runs its own epoll loop; they share the accept fd.
    pub reactor_threads: usize,
}

impl Default for ServerOpts {
    /// No log, writable, backend from `PATHCAS_BACKEND` (threads if
    /// unset), reactor threads from `PATHCAS_REACTOR_THREADS` (default 2).
    fn default() -> ServerOpts {
        ServerOpts {
            log: None,
            read_only: false,
            backend: Backend::from_env().unwrap_or(Backend::Threads),
            reactor_threads: default_reactor_threads(),
        }
    }
}

/// `PATHCAS_REACTOR_THREADS`, defaulting to 2 — enough that reactor-vs-
/// threads differences in the battery are about the model, not parallelism.
fn default_reactor_threads() -> usize {
    std::env::var("PATHCAS_REACTOR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// The two serving backends.  Both speak the byte-identical wire protocol
/// against the same [`ServiceMap`](crate::ServiceMap)/
/// [`Connection`](crate::Connection) clients; the `PATHCAS_BACKEND`
/// environment knob selects one for code that uses [`ServerOpts::default`]
/// (tests pass a `Backend` explicitly via `for_each_backend`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// One blocking handler thread per connection (the PR 5 model).
    Threads,
    /// A fixed pool of epoll reactor threads multiplexing all connections.
    Reactor,
}

impl Backend {
    /// Both backends — what the differential batteries iterate over.
    pub const ALL: [Backend; 2] = [Backend::Threads, Backend::Reactor];

    /// The knob spelling: `threads` / `reactor`.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Reactor => "reactor",
        }
    }

    /// Parse `PATHCAS_BACKEND`.  Unset or `both` means "no preference"
    /// (`None`); anything else unrecognized panics loudly — a typoed CI
    /// knob must not silently fall back to the default backend.
    pub fn from_env() -> Option<Backend> {
        match std::env::var("PATHCAS_BACKEND") {
            Err(_) => None,
            Ok(v) => match v.trim() {
                "" | "both" => None,
                "threads" => Some(Backend::Threads),
                "reactor" => Some(Backend::Reactor),
                other => panic!("PATHCAS_BACKEND={other:?}: expected threads|reactor|both"),
            },
        }
    }
}

/// A running KV service bound to a local address, on either backend.
///
/// Dropping the handle **without** calling [`Server::shutdown`] detaches the
/// threads (they keep serving until the process exits); the benches and
/// tests always shut down explicitly so a clean exit is observable.
pub struct Server {
    inner: Inner,
}

enum Inner {
    Threads(ThreadedServer),
    Reactor(crate::reactor::ReactorServer),
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `map` on the default backend.  Returns once the listener is
    /// accepting.
    pub fn start(map: Arc<dyn ConcurrentMap>, addr: impl ToSocketAddrs) -> io::Result<Server> {
        Self::start_with(map, ServerOpts::default(), addr)
    }

    /// Like [`Server::start`], with explicit [`ServerOpts`] — a primary
    /// publishing a change stream, a read-only follower front-end, or a
    /// specific [`Backend`].
    pub fn start_with(
        map: Arc<dyn ConcurrentMap>,
        opts: ServerOpts,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Server> {
        // Register every metric name (server + kcas + replica) before the
        // first connection, so both backends expose the identical name set
        // from their very first METRICS response.
        crate::metrics::metrics();
        let inner = match opts.backend {
            Backend::Threads => Inner::Threads(ThreadedServer::start(map, opts, addr)?),
            Backend::Reactor => {
                Inner::Reactor(crate::reactor::ReactorServer::start(map, opts, addr)?)
            }
        };
        Ok(Server { inner })
    }

    /// The bound address (with the actual port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            Inner::Threads(s) => s.local_addr,
            Inner::Reactor(s) => s.local_addr(),
        }
    }

    /// Which backend is serving.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            Inner::Threads(_) => Backend::Threads,
            Inner::Reactor(_) => Backend::Reactor,
        }
    }

    /// Stop accepting, unblock every connection, and join all threads.
    /// Returns when the last serving thread has exited — the "clean
    /// shutdown" the CI smoke step asserts via the process exit code.
    /// Clients still connected see EOF (or a reset mid-request).
    pub fn shutdown(self) {
        match self.inner {
            Inner::Threads(s) => s.shutdown(),
            Inner::Reactor(s) => s.shutdown(),
        }
    }
}

/// One live connection as the threaded backend tracks it: the handler
/// thread plus a socket clone used to unblock its reads at shutdown.
type ConnHandle = (JoinHandle<()>, TcpStream);

/// The thread-per-connection backend.
struct ThreadedServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    // Grows by one entry per accepted connection until shutdown joins and
    // drains it — fine for the bench/test servers this crate targets
    // (bounded connection counts, explicit shutdown); a long-lived deploy
    // would reap finished handlers here.
    conns: Arc<Mutex<Vec<ConnHandle>>>,
}

impl ThreadedServer {
    fn start(
        map: Arc<dyn ConcurrentMap>,
        opts: ServerOpts,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ThreadedServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnHandle>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // The clone shares the socket: shutdown() uses it to
                    // unblock the handler's blocking reads.
                    let Ok(peer) = stream.try_clone() else { continue };
                    crate::metrics::metrics().conns_accepted.inc();
                    let map = Arc::clone(&map);
                    let opts = opts.clone();
                    let shutdown = Arc::clone(&shutdown);
                    let handle = std::thread::spawn(move || {
                        let sock = stream.try_clone().ok();
                        // Protocol errors and broken pipes just end this
                        // connection; they must not take the server down.
                        let _ = handle_conn(&*map, stream, &opts, &shutdown);
                        // The clone parked in `conns` keeps the fd alive
                        // after this thread drops its handles, so shut the
                        // socket down explicitly — the peer must see EOF
                        // when its connection is done, not when the whole
                        // server shuts down.
                        if let Some(sock) = sock {
                            let _ = sock.shutdown(Shutdown::Both);
                        }
                    });
                    conns.lock().unwrap_or_else(|e| e.into_inner()).push((handle, peer));
                }
            })
        };

        Ok(ThreadedServer { local_addr, shutdown, acceptor: Some(acceptor), conns })
    }

    /// Stop accepting, unblock every handler, and join all threads.
    fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor's blocking `incoming()`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let handles =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for (handle, stream) in handles {
            // Blocked reads in the handler return EOF/reset immediately.
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
    }
}

/// Execute one decoded request against the map.  Shared by both backends —
/// byte-identical semantics is the point.  Every op is timed and counted
/// (`crate::metrics`); ops past the slow threshold additionally land in
/// the flight recorder tagged with the key's owning shard and `backend`.
///
/// When the calling thread carries a sampled trace (set by the backend's
/// frame loop), the shard route and the structure execution are recorded as
/// `shard`/`kcas` spans — the kcas span's event counts pick up the retry/
/// help hooks `kcas::metrics` fires while `execute_inner` runs.  Untraced
/// ops pay one TLS read and skip all of it.
pub(crate) fn execute(map: &dyn ConcurrentMap, req: Request, backend: Backend) -> Response {
    let start = std::time::Instant::now();
    let (opcode, key) = crate::metrics::op_tag(&req);
    let resp = if telemetry::trace::current().is_some() {
        {
            let _shard_span = telemetry::trace::begin(telemetry::trace::PHASE_SHARD);
            let _ = map.shard_of(key);
        }
        let kcas_span = telemetry::trace::begin(telemetry::trace::PHASE_KCAS);
        let resp = execute_inner(map, req, backend);
        drop(kcas_span);
        resp
    } else {
        execute_inner(map, req, backend)
    };
    crate::metrics::record_op(opcode, key, start.elapsed(), map, backend);
    resp
}

fn execute_inner(map: &dyn ConcurrentMap, req: Request, backend: Backend) -> Response {
    match req {
        Request::Get(k) => Response::Get(map.get(k)),
        Request::Put(k, v) => Response::Put(map.insert(k, v)),
        Request::Del(k) => Response::Del(map.remove(k)),
        // The canonical affine RMW (see the proto docs), shaped exactly
        // like `workload::apply`'s in-process increment (`map_or(δ, (v+δ)
        // & MAX_KEY)`); atomic on the PathCAS structures because their
        // `rmw` override is.
        Request::Rmw(k, delta) => Response::Rmw(
            map.rmw(k, &mut |v| v.map_or(delta, |x| x.wrapping_add(delta) & mapapi::MAX_KEY)),
        ),
        // A scan longer than MAX_SCAN_LEN would encode to a response frame
        // the protocol itself declares illegal (> MAX_FRAME), so it is
        // refused up front: callers chunk large walks (like the quiescent
        // audit does) instead of receiving a silently truncated window.
        Request::Scan(_, len) if len as usize > MAX_SCAN_LEN => Response::Err(format!(
            "scan len {len} exceeds MAX_SCAN_LEN ({MAX_SCAN_LEN}); chunk the scan"
        )),
        Request::Scan(start, len) => Response::Scan(map.scan(start, len as usize)),
        Request::Stats => Response::Stats(map.stats()),
        // The telemetry exposition: version-checked so a client built
        // against a future layout fails loudly instead of misparsing.
        // A read verb — followers answer it too.  The exposition is
        // rendered *before* this request's own accounting, so the first
        // METRICS call on a fresh server reports srv_ops_metrics_total 0.
        Request::Metrics(v) if v == proto::METRICS_VERSION => {
            Response::Metrics(crate::metrics::render(map, backend))
        }
        Request::Metrics(v) => Response::Err(format!(
            "METRICS version {v} unsupported (server speaks {})",
            proto::METRICS_VERSION
        )),
        // The span-trace exposition: same versioning contract as METRICS,
        // same read-verb status, rendered from shared code so both backends
        // answer byte-identically.  Rendered *before* this request's own
        // kcas/resp/flush spans are recorded, so the dump is a pure
        // function of the ops that preceded it.
        Request::Trace(v) if v == proto::TRACE_VERSION => {
            Response::Trace(crate::metrics::render_trace(backend))
        }
        Request::Trace(v) => Response::Err(format!(
            "TRACE version {v} unsupported (server speaks {})",
            proto::TRACE_VERSION
        )),
        // Handled by `handle_conn` before execute (it takes over the
        // connection); reaching here means a bug in the dispatch order.
        Request::Subscribe(_) => Response::Err("SUBSCRIBE is not a point request".into()),
    }
}

/// Whether a request mutates the map (the verbs a read-only server rejects).
pub(crate) fn is_write(req: &Request) -> bool {
    matches!(req, Request::Put(..) | Request::Del(..) | Request::Rmw(..))
}

/// Rejection for write verbs on a read-only server — shared verbatim by
/// both backends so the wire bytes are identical.
pub(crate) const READ_ONLY_MSG: &str = "read-only replica: writes go to the primary";

/// Rejection for `SUBSCRIBE` on a server without a change stream.
pub(crate) const NO_LOG_MSG: &str = "no change stream: this server has no log";

/// Serve one connection until EOF, shutdown (surfaced as EOF/reset on the
/// socket), or a framing error.
fn handle_conn(
    map: &dyn ConcurrentMap,
    stream: TcpStream,
    opts: &ServerOpts,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut payload = Vec::new();
    let mut out = Vec::new();

    loop {
        // The blocking frame read is this backend's readiness wait: for a
        // pipelined burst every frame after the first returns from the
        // BufReader near-instantly, so `ready` time naturally concentrates
        // on the op that actually waited on the socket.
        let ready_start = telemetry::trace::now_ns();
        if !proto::read_frame(&mut reader, &mut payload)? {
            break;
        }
        let ready_ns = telemetry::trace::now_ns().saturating_sub(ready_start);
        let tr = telemetry::trace::should_sample();
        telemetry::trace::set_current(tr);
        if let Some(t) = tr {
            telemetry::trace::record_span(
                t,
                telemetry::trace::PHASE_READY,
                ready_start,
                ready_ns,
                0,
            );
        }
        let decoded = {
            let _decode_span = telemetry::trace::begin(telemetry::trace::PHASE_DECODE);
            proto::decode_request(&payload)
        };
        let resp = match decoded {
            // SUBSCRIBE flips the connection into streaming mode for good;
            // flush anything still batched first so pipelined responses
            // ahead of the subscription are not stranded.
            Ok(Request::Subscribe(after)) => match &opts.log {
                Some(log) => {
                    telemetry::trace::set_current(None);
                    writer.flush()?;
                    return stream_events(log, after, &mut writer, shutdown);
                }
                None => Response::Err(NO_LOG_MSG.into()),
            },
            // Semantic rejection, not a framing error: the connection
            // survives, exactly like an oversized scan.
            Ok(req) if opts.read_only && is_write(&req) => {
                Response::Err(READ_ONLY_MSG.into())
            }
            Ok(req) => execute(map, req, Backend::Threads),
            Err(msg) => {
                // Respond with the error, flush, and close: after a framing
                // error the stream offset can no longer be trusted.  (A
                // *semantic* error like an oversized scan keeps the
                // connection — framing stays intact.)
                out.clear();
                proto::encode_response(&Response::Err(msg), &mut out);
                writer.write_all(&out)?;
                writer.flush()?;
                telemetry::trace::set_current(None);
                return Ok(());
            }
        };
        out.clear();
        {
            let _resp_span = telemetry::trace::begin(telemetry::trace::PHASE_RESP);
            proto::encode_response(&resp, &mut out);
        }
        writer.write_all(&out)?;
        // Batched responses: flush only when the pipeline has drained —
        // while more requests sit in the read buffer, their responses
        // accumulate and go out as one write.  The flush is a blocking
        // syscall, so its span uses explicit timestamps, never a guard;
        // it is charged to the burst's last sampled op, matching the
        // reactor's charge-the-batch semantics.
        if reader.buffer().is_empty() {
            let flush_start = telemetry::trace::now_ns();
            writer.flush()?;
            if let Some(t) = telemetry::trace::current() {
                telemetry::trace::record_span(
                    t,
                    telemetry::trace::PHASE_FLUSH,
                    flush_start,
                    telemetry::trace::now_ns().saturating_sub(flush_start),
                    0,
                );
            }
        }
        telemetry::trace::set_current(None);
    }
    writer.flush()
}

/// The subscribed half of a connection: push `EVENTS` frames as the log
/// grows, until the peer disconnects (surfaced as a write error) or the
/// server shuts down.  The bounded wait keeps the loop responsive to
/// shutdown without busy-spinning on an idle log.
fn stream_events(
    log: &ChangeLog,
    mut after: u64,
    writer: &mut BufWriter<TcpStream>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut out = Vec::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let entries = log.wait_from(after, MAX_EVENTS_PER_FRAME, Duration::from_millis(50));
        let Some(&(last, _)) = entries.last() else { continue };
        after = last;
        // Each delivered batch is an op in the sampler's stream: a sampled
        // batch records one `deliver` span covering encode + write + flush
        // (explicit timestamps — this path blocks).
        let tr = telemetry::trace::should_sample();
        let deliver_start = telemetry::trace::now_ns();
        out.clear();
        proto::encode_response(&Response::Events(entries), &mut out);
        writer.write_all(&out)?;
        writer.flush()?;
        if let Some(t) = tr {
            telemetry::trace::record_span(
                t,
                telemetry::trace::PHASE_DELIVER,
                deliver_start,
                telemetry::trace::now_ns().saturating_sub(deliver_start),
                0,
            );
        }
    }
}
