//! The loopback client: a pipelined [`Connection`], and the [`ServiceMap`]
//! pool that makes a remote structure drivable by everything written
//! against [`ConcurrentMap`] — the correctness suites, the workload
//! executor, the quiescent scan audits.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use mapapi::{ConcurrentMap, Key, MapStats, Value};
use replica::{Event, Follower};
use workload::{BatchApply, Op};

use crate::proto::{self, Request, Response};

/// One client connection: a buffered request writer and response reader
/// over a `TcpStream`, supporting single requests and pipelined batches.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    scratch: Vec<u8>,
}

impl Connection {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            scratch: Vec::new(),
        })
    }

    fn read_response(&mut self) -> io::Result<Response> {
        if !proto::read_frame(&mut self.reader, &mut self.scratch)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-pipeline",
            ));
        }
        proto::decode_response(&self.scratch)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let mut buf = Vec::new();
        proto::encode_request(req, &mut buf);
        self.writer.write_all(&buf)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Send `reqs` as one pipelined burst — every frame written, **one**
    /// flush — then read the `reqs.len()` responses, which the protocol
    /// guarantees arrive in request order.  This is the client half of the
    /// server's batched-response path.
    pub fn pipeline(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let mut buf = Vec::new();
        for req in reqs {
            proto::encode_request(req, &mut buf);
        }
        self.writer.write_all(&buf)?;
        self.writer.flush()?;
        (0..reqs.len()).map(|_| self.read_response()).collect()
    }

    /// Pull the server's telemetry exposition (the `METRICS` verb at
    /// [`crate::proto::METRICS_VERSION`]): sorted `name value` lines plus
    /// `#`-prefixed annotations — see `server::metrics` for the layout.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.request(&Request::Metrics(proto::METRICS_VERSION))? {
            Response::Metrics(text) => Ok(text),
            Response::Err(msg) => Err(io::Error::other(msg)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("METRICS answered with {other:?}"),
            )),
        }
    }

    /// Pull the server's span-trace exposition (the `TRACE` verb at
    /// [`crate::proto::TRACE_VERSION`]): a `# pathcas-trace` header line
    /// followed by one `span ...` line per sampled span — see
    /// `server::metrics::render_trace` for the layout.
    pub fn trace(&mut self) -> io::Result<String> {
        match self.request(&Request::Trace(proto::TRACE_VERSION))? {
            Response::Trace(text) => Ok(text),
            Response::Err(msg) => Err(io::Error::other(msg)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("TRACE answered with {other:?}"),
            )),
        }
    }

    /// Switch this connection into change-stream mode, resuming after
    /// seqno `after`.  From here on only [`Connection::next_events`] makes
    /// sense; the server answers nothing else on this connection.
    pub fn subscribe(&mut self, after: u64) -> io::Result<()> {
        let mut buf = Vec::new();
        proto::encode_request(&Request::Subscribe(after), &mut buf);
        self.writer.write_all(&buf)?;
        self.writer.flush()
    }

    /// Block for the next `EVENTS` batch on a subscribed connection.
    /// Server-side errors (e.g. subscribing to a server without a log) and
    /// EOF surface as `io::Error`.
    pub fn next_events(&mut self) -> io::Result<Vec<(u64, Event)>> {
        match self.read_response()? {
            Response::Events(entries) => Ok(entries),
            Response::Err(msg) => Err(io::Error::other(msg)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("SUBSCRIBE answered with {other:?}"),
            )),
        }
    }
}

/// A follower's wire-side tail: a dedicated thread holding a subscribed
/// [`Connection`], applying every received batch to the [`Follower`] in
/// sequence — the socket counterpart of [`replica::tail_log`].
///
/// The tail resumes from `follower.applied_seqno()`, so a follower
/// bootstrapped from a checkpoint at seqno `S` asks the primary only for
/// events after `S`.  It runs until [`WireTail::stop`] (or drop) shuts the
/// socket down, or the primary closes the connection.
pub struct WireTail {
    sock: TcpStream,
    thread: Option<JoinHandle<()>>,
}

impl WireTail {
    /// Subscribe to the primary at `addr` and start applying events to
    /// `follower` on a background thread.
    pub fn start(addr: impl ToSocketAddrs, follower: Arc<Follower>) -> io::Result<WireTail> {
        let mut conn = Connection::connect(addr)?;
        let sock = conn.reader.get_ref().try_clone()?;
        conn.subscribe(follower.applied_seqno())?;
        let thread = std::thread::spawn(move || {
            // EOF / reset / shutdown all end the tail; the follower simply
            // stops advancing (it is stale, not corrupt).
            while let Ok(entries) = conn.next_events() {
                for (seq, ev) in entries {
                    follower.apply(seq, ev);
                }
            }
        });
        Ok(WireTail { sock, thread: Some(thread) })
    }

    /// Shut the subscription down and join the tail thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        let _ = self.sock.shutdown(Shutdown::Both);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WireTail {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Translate a workload op into its wire request.  `Op::Rmw` maps to the
/// canonical increment (δ = 1), matching [`workload::apply`]'s in-process
/// semantics; `Op::Transfer` has no wire form (the batched executor rejects
/// bank scenarios before it could reach us).
fn to_request(op: &Op) -> Request {
    match *op {
        Op::Read(k) => Request::Get(k),
        // The executor inserts key-as-value, like everywhere else in the
        // workspace.
        Op::Insert(k) => Request::Put(k, k),
        Op::Remove(k) => Request::Del(k),
        Op::Rmw(k) => Request::Rmw(k, 1),
        Op::Scan(k, len) => Request::Scan(k, len.min(u32::MAX as u64) as u32),
        Op::Transfer { .. } => unreachable!("transfers cannot cross the wire"),
    }
}

/// Same success notion as [`workload::apply`], read off the response.
fn succeeded(resp: &Response) -> bool {
    match resp {
        Response::Get(v) => v.is_some(),
        Response::Put(ok) | Response::Del(ok) | Response::Rmw(ok) => *ok,
        Response::Scan(pairs) => !pairs.is_empty(),
        Response::Stats(_) => true,
        // Never answer workload ops: EVENTS only reaches subscribed
        // connections, METRICS/TRACE only explicit telemetry pulls.
        Response::Events(_) | Response::Metrics(_) | Response::Trace(_) => false,
        Response::Err(_) => false,
    }
}

/// A pool of loopback connections exposing a **remote** structure through
/// the [`ConcurrentMap`] trait, so every existing scenario, suite and audit
/// runs over the socket path unchanged.
///
/// Each calling thread is hashed onto a pool slot (falling through to the
/// first free slot under collision), so with `pool_size >= worker threads`
/// the workload executor's workers effectively own a connection each — the
/// same discipline a real service client would use.
///
/// Semantics over the wire:
///
/// * point ops and scans are exactly the remote structure's (one request,
///   one response — the server executes them on the inner map);
/// * `rmw` ships **δ = `update(Some(0))`** and the server applies the
///   canonical affine update atomically.  Affine updates (`v ↦ v + δ`,
///   which is every RMW the workload engine issues) behave identically to
///   in-process `rmw`; arbitrary closures cannot cross a wire — see
///   DESIGN.md §8;
/// * `stats` is the wire `STATS` verb: quiescent-only, like the trait says.
///
/// I/O failures panic: the suites and executor have no error channel, and
/// a dead loopback server *should* fail the run loudly.
pub struct ServiceMap {
    name: &'static str,
    pool: Vec<Mutex<Connection>>,
}

impl ServiceMap {
    /// Open `pool_size` connections to `addr`.  `label` names the served
    /// structure in benchmark rows: the map reports `svc(label)`.
    pub fn connect(
        addr: impl ToSocketAddrs + Copy,
        pool_size: usize,
        label: &str,
    ) -> io::Result<ServiceMap> {
        assert!(pool_size >= 1, "ServiceMap needs at least one connection");
        let pool = (0..pool_size)
            .map(|_| Connection::connect(addr).map(Mutex::new))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ServiceMap { name: mapapi::intern_name(format!("svc({label})")), pool })
    }

    /// Lock a connection for the calling thread: its hashed home slot if
    /// free, else the first free slot, else block on the home slot.
    fn conn(&self) -> MutexGuard<'_, Connection> {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let home = (h.finish() % self.pool.len() as u64) as usize;
        for i in 0..self.pool.len() {
            if let Ok(g) = self.pool[(home + i) % self.pool.len()].try_lock() {
                return g;
            }
        }
        // A handler that panicked mid-request poisons its connection lock;
        // the connection itself re-syncs on the next frame, so keep serving.
        self.pool[home].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn roundtrip(&self, req: Request) -> Response {
        self.conn()
            .request(&req)
            .unwrap_or_else(|e| panic!("service connection failed: {e}"))
    }

    /// Pipeline a pre-encoded request batch on this thread's connection.
    pub fn pipeline(&self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        self.conn().pipeline(reqs)
    }
}

impl ConcurrentMap for ServiceMap {
    fn name(&self) -> &'static str {
        self.name
    }

    fn insert(&self, key: Key, value: Value) -> bool {
        matches!(self.roundtrip(Request::Put(key, value)), Response::Put(true))
    }

    fn remove(&self, key: Key) -> bool {
        matches!(self.roundtrip(Request::Del(key)), Response::Del(true))
    }

    fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    fn get(&self, key: Key) -> Option<Value> {
        match self.roundtrip(Request::Get(key)) {
            Response::Get(v) => v,
            other => panic!("GET answered with {other:?}"),
        }
    }

    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        // Derive the affine delta by probing the closure at zero (see the
        // struct docs); the server applies it atomically.
        let delta = update(Some(0));
        matches!(self.roundtrip(Request::Rmw(key, delta)), Response::Rmw(true))
    }

    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        match self.roundtrip(Request::Scan(start, len.min(u32::MAX as usize) as u32)) {
            Response::Scan(pairs) => pairs,
            other => panic!("SCAN answered with {other:?}"),
        }
    }

    fn stats(&self) -> MapStats {
        match self.roundtrip(Request::Stats) {
            Response::Stats(s) => s,
            other => panic!("STATS answered with {other:?}"),
        }
    }
}

impl BatchApply for ServiceMap {
    fn apply_batch(&self, ops: &[Op]) -> u64 {
        let reqs: Vec<Request> = ops.iter().map(to_request).collect();
        let resps =
            self.pipeline(&reqs).unwrap_or_else(|e| panic!("service connection failed: {e}"));
        resps.iter().map(|r| succeeded(r) as u64).sum()
    }
}
