//! Server-side telemetry: per-verb counters, the op-latency histogram,
//! reactor loop instrumentation, and the slow-op flight recorder — plus
//! `render`, the text exposition the `METRICS` verb answers with.
//!
//! Everything here is process-global (the same striped counters no matter
//! how many `Server`s a test process starts), so readers work in *deltas*:
//! snapshot before, snapshot after, subtract.  The per-shard load section
//! of the exposition is the exception — it comes from the *served map's*
//! own [`mapapi::ConcurrentMap::shard_loads`] counters, so it is
//! per-instance.
//!
//! The increment path is the whole point: one `Once` check to reach the
//! statics, then per-thread-striped relaxed `fetch_add`s — no locks, no
//! heap, nothing the counting-allocator suites (`tests/zero_alloc_wire.rs`)
//! can see.  DESIGN.md §11 has the overhead argument.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::Duration;

use mapapi::ConcurrentMap;
use telemetry::{Counter, FlightRecorder, Handle, Histogram};

use crate::proto::{METRICS_VERSION, TRACE_VERSION};
use crate::srv::Backend;

/// Slow-op records kept by the flight recorder (a power of two; older
/// records are overwritten ring-style).
pub const FLIGHT_CAPACITY: usize = 128;

/// Default slow-op threshold: 1 ms.  Loopback point ops sit far under
/// this, so in a healthy run the recorder stays near-empty and the
/// recorder's cost is one relaxed load per op.
pub const DEFAULT_SLOW_OP_THRESHOLD_NS: u64 = 1_000_000;

/// The server's global metric set.  Counters cover both backends; the
/// `reactor_*` group only moves when the reactor backend serves.
pub(crate) struct ServerMetrics {
    /// `GET`s executed.
    pub ops_get: Counter,
    /// `PUT`s executed.
    pub ops_put: Counter,
    /// `DEL`s executed.
    pub ops_del: Counter,
    /// `RMW`s executed.
    pub ops_rmw: Counter,
    /// `SCAN`s executed (including oversized ones answered with an error).
    pub ops_scan: Counter,
    /// `STATS` executed.
    pub ops_stats: Counter,
    /// `METRICS` executed.  The exposition a call returns is rendered
    /// *before* its own counter bump, so the first call reports 0 here.
    pub ops_metrics: Counter,
    /// `TRACE` executed.  Same render-before-bump contract as `METRICS`.
    pub ops_trace: Counter,
    /// Ops whose wall time crossed the slow-op threshold (each also lands
    /// in the flight recorder).
    pub slow_ops: Counter,
    /// Connections accepted, both backends.
    pub conns_accepted: Counter,
    /// Wall time per executed op, nanoseconds.
    pub op_ns: Histogram,
    /// Reactor: `epoll_wait` returns that delivered at least one event.
    pub reactor_wakeups: Counter,
    /// Reactor: complete frames decoded per productive wakeup (recorded
    /// only when a wakeup decoded at least one frame, so idle streaming
    /// polls don't drown the distribution in zeros).
    pub reactor_frames_per_wakeup: Histogram,
    /// Reactor: `read` syscalls issued (including the final `WouldBlock`
    /// probe that ends every drain — that read is real work the kernel did).
    pub reactor_read_syscalls: Counter,
    /// Reactor: `write` syscalls issued.
    pub reactor_write_syscalls: Counter,
    /// Reactor: staged bytes pending at each flush attempt — the write-
    /// queue depth distribution.
    pub reactor_write_queue_bytes: Histogram,
    /// Reactor: flushes that hit `WouldBlock` and had to arm `EPOLLOUT` —
    /// one per backpressure stall, not per retried write.
    pub reactor_epollout_stalls: Counter,
    /// Reactor: accepted connections served by a recycled decoder/queue.
    pub reactor_pool_hits: Counter,
    /// Reactor: accepted connections that had to allocate fresh buffers.
    pub reactor_pool_misses: Counter,
}

static METRICS: ServerMetrics = ServerMetrics {
    ops_get: Counter::new(),
    ops_put: Counter::new(),
    ops_del: Counter::new(),
    ops_rmw: Counter::new(),
    ops_scan: Counter::new(),
    ops_stats: Counter::new(),
    ops_metrics: Counter::new(),
    ops_trace: Counter::new(),
    slow_ops: Counter::new(),
    conns_accepted: Counter::new(),
    op_ns: Histogram::new(),
    reactor_wakeups: Counter::new(),
    reactor_frames_per_wakeup: Histogram::new(),
    reactor_read_syscalls: Counter::new(),
    reactor_write_syscalls: Counter::new(),
    reactor_write_queue_bytes: Histogram::new(),
    reactor_epollout_stalls: Counter::new(),
    reactor_pool_hits: Counter::new(),
    reactor_pool_misses: Counter::new(),
};

/// The last [`FLIGHT_CAPACITY`] slow ops, ring-style.
static FLIGHT: FlightRecorder<FLIGHT_CAPACITY> = FlightRecorder::new();

/// Nanosecond threshold above which an op is "slow".
static SLOW_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_OP_THRESHOLD_NS);

static INIT: Once = Once::new();

/// The server metric set, registering every name on first use.  The fast
/// path after the first call is a single atomic load — the increment sites
/// in the hot loops pay essentially nothing for registration.
pub(crate) fn metrics() -> &'static ServerMetrics {
    INIT.call_once(|| {
        telemetry::register("srv_ops_get_total", Handle::Counter(&METRICS.ops_get));
        telemetry::register("srv_ops_put_total", Handle::Counter(&METRICS.ops_put));
        telemetry::register("srv_ops_del_total", Handle::Counter(&METRICS.ops_del));
        telemetry::register("srv_ops_rmw_total", Handle::Counter(&METRICS.ops_rmw));
        telemetry::register("srv_ops_scan_total", Handle::Counter(&METRICS.ops_scan));
        telemetry::register("srv_ops_stats_total", Handle::Counter(&METRICS.ops_stats));
        telemetry::register("srv_ops_metrics_total", Handle::Counter(&METRICS.ops_metrics));
        telemetry::register("srv_ops_trace_total", Handle::Counter(&METRICS.ops_trace));
        telemetry::register("srv_slow_ops_total", Handle::Counter(&METRICS.slow_ops));
        telemetry::register("srv_conns_accepted_total", Handle::Counter(&METRICS.conns_accepted));
        telemetry::register("srv_op_ns", Handle::Histogram(&METRICS.op_ns));
        telemetry::register("reactor_wakeups_total", Handle::Counter(&METRICS.reactor_wakeups));
        telemetry::register(
            "reactor_frames_per_wakeup",
            Handle::Histogram(&METRICS.reactor_frames_per_wakeup),
        );
        telemetry::register(
            "reactor_read_syscalls_total",
            Handle::Counter(&METRICS.reactor_read_syscalls),
        );
        telemetry::register(
            "reactor_write_syscalls_total",
            Handle::Counter(&METRICS.reactor_write_syscalls),
        );
        telemetry::register(
            "reactor_write_queue_bytes",
            Handle::Histogram(&METRICS.reactor_write_queue_bytes),
        );
        telemetry::register(
            "reactor_epollout_stalls_total",
            Handle::Counter(&METRICS.reactor_epollout_stalls),
        );
        telemetry::register("reactor_pool_hits_total", Handle::Counter(&METRICS.reactor_pool_hits));
        telemetry::register(
            "reactor_pool_misses_total",
            Handle::Counter(&METRICS.reactor_pool_misses),
        );
        // Materialize the subsystem registries too, so a METRICS call sees
        // the identical name set on every backend (and on a server that has
        // not yet executed a single KCAS or replication op).
        let _ = kcas::metrics::metrics();
        let _ = replica::metrics::metrics();
        // The span tracer's instruments (per-phase histograms + sampler
        // tallies), plus its sampling-period knob: `PATHCAS_TRACE_SAMPLE`
        // overrides the default 1-in-64 (0 disables tracing).
        telemetry::trace::register_metrics();
        if let Some(n) = std::env::var("PATHCAS_TRACE_SAMPLE")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            telemetry::trace::set_sample_every(n);
        }
    });
    &METRICS
}

/// Current slow-op threshold in nanoseconds.
pub fn slow_op_threshold_ns() -> u64 {
    // ORDERING: Relaxed — a standalone tuning knob; readers only need some
    // recent value, and no other memory is published through it.
    SLOW_NS.load(Ordering::Relaxed)
}

/// Set the slow-op threshold.  `0` records every op — what the metrics
/// battery uses to exercise the recorder deterministically.
pub fn set_slow_op_threshold_ns(ns: u64) {
    // ORDERING: Relaxed — see `slow_op_threshold_ns`.
    SLOW_NS.store(ns, Ordering::Relaxed);
}

/// The wire opcode and subject key of a request — the flight recorder's
/// `op`/`key` fields.  Keyless verbs report key 0.
pub(crate) fn op_tag(req: &crate::proto::Request) -> (u64, u64) {
    use crate::proto::Request;
    match *req {
        Request::Get(k) => (1, k),
        Request::Put(k, _) => (2, k),
        Request::Del(k) => (3, k),
        Request::Rmw(k, _) => (4, k),
        Request::Scan(start, _) => (5, start),
        Request::Stats => (6, 0),
        Request::Subscribe(_) => (7, 0),
        Request::Metrics(_) => (8, 0),
        Request::Trace(_) => (9, 0),
    }
}

/// Opcode → verb name, for the slow-op dump.
fn op_name(op: u64) -> &'static str {
    match op {
        1 => "GET",
        2 => "PUT",
        3 => "DEL",
        4 => "RMW",
        5 => "SCAN",
        6 => "STATS",
        7 => "SUBSCRIBE",
        8 => "METRICS",
        9 => "TRACE",
        _ => "?",
    }
}

/// Backend → flight-record code (0 = threads, 1 = reactor).
pub(crate) fn backend_code(backend: Backend) -> u64 {
    match backend {
        Backend::Threads => 0,
        Backend::Reactor => 1,
    }
}

fn backend_name(code: u64) -> &'static str {
    match code {
        0 => "threads",
        1 => "reactor",
        _ => "?",
    }
}

/// Account one executed request: latency histogram, the per-verb counter,
/// and — past the slow threshold — a flight record tagged with the key's
/// owning shard.  Zero heap allocations on every path, slow or not.
pub(crate) fn record_op(
    op: u64,
    key: u64,
    elapsed: Duration,
    map: &dyn ConcurrentMap,
    backend: Backend,
) {
    let m = metrics();
    let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    m.op_ns.record(ns);
    match op {
        1 => m.ops_get.inc(),
        2 => m.ops_put.inc(),
        3 => m.ops_del.inc(),
        4 => m.ops_rmw.inc(),
        5 => m.ops_scan.inc(),
        6 => m.ops_stats.inc(),
        8 => m.ops_metrics.inc(),
        9 => m.ops_trace.inc(),
        _ => {}
    }
    // ORDERING: Relaxed — the threshold is a tuning knob (see
    // `slow_op_threshold_ns`); a racing update may misclassify one op.
    if ns >= SLOW_NS.load(Ordering::Relaxed) {
        m.slow_ops.inc();
        // A trace-sampled slow op carries its phase breakdown, packed; an
        // unsampled one records phases=0 — the dump prints `-` for those.
        let phases = if telemetry::trace::current().is_some() {
            pack_phases(&telemetry::trace::phase_scratch_ns())
        } else {
            0
        };
        FLIGHT.record(op, key, ns, map.shard_of(key) as u64, backend_code(backend), phases);
    }
}

/// Granularity of a packed phase lane: durations are stored in units of
/// 64 ns, saturating at `0xFFFF` (≈ 4.19 ms per lane).
const PHASE_LANE_UNIT_NS: u64 = 64;

/// Pack the `ready`/`decode`/`shard`/`kcas` scratch durations into four
/// 16-bit lanes of one `u64` (64 ns units, saturating) — the flight
/// record's phase-breakdown field.  `resp`/`flush` are not yet known when
/// the record is written (they happen after `record_op`), so the packed
/// breakdown covers the server-side path up to and including the structure
/// execution.
pub(crate) fn pack_phases(scratch: &[u64; telemetry::trace::PHASE_COUNT]) -> u64 {
    let lane = |phase: u64| -> u64 {
        (scratch[phase as usize] / PHASE_LANE_UNIT_NS).min(0xFFFF)
    };
    lane(telemetry::trace::PHASE_READY)
        | lane(telemetry::trace::PHASE_DECODE) << 16
        | lane(telemetry::trace::PHASE_SHARD) << 32
        | lane(telemetry::trace::PHASE_KCAS) << 48
}

/// Unpack one lane of a packed phase field back to approximate nanoseconds.
fn unpack_lane(phases: u64, lane: u32) -> u64 {
    ((phases >> (16 * lane)) & 0xFFFF) * PHASE_LANE_UNIT_NS
}

/// The slow-op flight recorder's current contents as `# slowop ...` lines,
/// oldest first.  Also dumped by `bench_service` when a quiescent audit
/// fails — the last slow ops before the inconsistency are exactly what you
/// want in the postmortem.
pub fn flight_dump() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "# slowops recorded={} capacity={}", FLIGHT.recorded(), FLIGHT_CAPACITY);
    for r in FLIGHT.snapshot() {
        let _ = write!(
            out,
            "# slowop ticket={} op={} key={} latency_ns={} shard={} backend={}",
            r.ticket,
            op_name(r.op),
            r.key,
            r.latency_ns,
            r.shard,
            backend_name(r.backend),
        );
        // Phase breakdown (64 ns granularity), present only when the slow
        // op was also trace-sampled.
        if r.phases != 0 {
            let _ = write!(
                out,
                " ready_ns={} decode_ns={} shard_ns={} kcas_ns={}",
                unpack_lane(r.phases, 0),
                unpack_lane(r.phases, 1),
                unpack_lane(r.phases, 2),
                unpack_lane(r.phases, 3),
            );
        } else {
            let _ = write!(out, " phases=-");
        }
        out.push('\n');
    }
    out
}

/// Render the full text exposition the `METRICS` verb answers with.
///
/// Layout (one metric per line, `name value`; `#` lines are annotations):
///
/// ```text
/// # pathcas-metrics v1 backend=reactor
/// kcas_ops_total 1024
/// ...registry lines, sorted by name...
/// srv_shard_point_ops{shard="0"} 217
/// srv_shard_scan_ops{shard="0"} 3
/// # slowops recorded=2 capacity=128
/// # slowop ticket=0 op=SCAN key=0 latency_ns=1980211 shard=0 backend=reactor
/// ```
///
/// The registry section is global; the `srv_shard_*` section reads the
/// *served map's* per-shard load counters (absent entirely when the map
/// doesn't track them).  Both backends produce this through the same code
/// path, so the byte layout is identical — only the values differ.
pub(crate) fn render(map: &dyn ConcurrentMap, backend: Backend) -> String {
    use std::fmt::Write;
    metrics();
    let mut out = String::new();
    let _ = writeln!(out, "# pathcas-metrics v{METRICS_VERSION} backend={}", backend.label());
    out.push_str(&telemetry::render());
    for (i, load) in map.shard_loads().iter().enumerate() {
        let _ = writeln!(out, "srv_shard_point_ops{{shard=\"{i}\"}} {}", load.point_ops);
        let _ = writeln!(out, "srv_shard_scan_ops{{shard=\"{i}\"}} {}", load.scan_ops);
    }
    out.push_str(&flight_dump());
    out
}

/// Render the span-trace exposition the `TRACE` verb answers with.
///
/// Layout:
///
/// ```text
/// # pathcas-trace v1 backend=reactor sample_every=64 sampled=3 spans=17 dropped=0
/// span trace=0 phase=ready start_ns=1201 dur_ns=802 retries=0 helps=0
/// span trace=0 phase=decode start_ns=2101 dur_ns=190 retries=0 helps=0
/// ...
/// ```
///
/// One line per retained span, sorted by `(trace, phase, start, ticket)` —
/// phase ids are pipeline-ordered, so the *line order* is a pure function
/// of which ops were sampled, never of raw timestamps; the differential
/// battery masks the `start_ns=`/`dur_ns=` digits and asserts the rest
/// byte-identical across backends.  Like METRICS, the dump is rendered
/// before the TRACE request's own post-execute spans exist.
pub(crate) fn render_trace(backend: Backend) -> String {
    use std::fmt::Write;
    metrics();
    let spans = telemetry::trace::snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# pathcas-trace v{TRACE_VERSION} backend={} sample_every={} sampled={} spans={} dropped={}",
        backend.label(),
        telemetry::trace::sample_every(),
        telemetry::trace::sampled_total(),
        spans.len(),
        telemetry::trace::dropped_total(),
    );
    for s in &spans {
        let _ = writeln!(
            out,
            "span trace={} phase={} start_ns={} dur_ns={} retries={} helps={}",
            s.trace_id,
            telemetry::trace::phase_name(s.phase),
            s.start_ns,
            s.dur_ns,
            telemetry::trace::retries_of(s.events),
            telemetry::trace::helps_of(s.events),
        );
    }
    out
}
