//! The epoll reactor backend: a fixed pool of event-loop threads
//! multiplexing every connection through readiness notifications
//! (DESIGN.md §10).
//!
//! Where the threaded backend spends an OS thread (stack, scheduler slot,
//! context switches) per connection, the reactor spends a few hundred
//! bytes of state machine: each connection is a nonblocking socket, an
//! incremental [`FrameDecoder`], and a staged write queue.  N reactor
//! threads (default 2, `PATHCAS_REACTOR_THREADS`) each run their own epoll
//! instance; the **accept fd is shared** — the nonblocking listener is
//! registered level-triggered in every loop, and whichever thread wins the
//! `accept` race owns that connection for its whole life (no cross-thread
//! migration, so a connection's frames are processed strictly in order
//! with no locking).
//!
//! The wire protocol, request execution, and error behavior are
//! byte-identical to the threaded backend — [`crate::srv::execute`] is
//! literally the same function — which is what lets the entire loopback /
//! fault / replication battery run differentially against both
//! (`tests/common/mod.rs::for_each_backend`).
//!
//! **Batching.**  A readability wakeup drains the socket until
//! `WouldBlock`, decodes every complete frame, stages all responses into
//! the connection's write queue, and only then writes — so a pipelined
//! burst of D requests is answered with one `write` syscall, exactly the
//! depth-D batching win the threaded backend gets from its
//! flush-when-drained rule, except here it compounds across thousands of
//! connections instead of thousands of threads.
//!
//! **Pooling.**  Decoders and write queues are recycled through per-thread
//! free lists when connections close, and both retain their capacity
//! across frames — the steady-state read path (fill → decode → execute →
//! encode) performs zero heap allocations, asserted by the
//! counting-allocator test in `tests/zero_alloc_wire.rs`.
//!
//! **Backpressure.**  A slow reader's write queue simply grows (staged
//! bytes, not blocked threads) while `EPOLLOUT` drains it as the peer
//! permits; no connection can wedge another, asserted by
//! `tests/reactor_faults.rs`.
//!
//! **Streaming.**  `SUBSCRIBE` flips a connection's mode: instead of
//! decoding requests, the loop polls the change log (bounded 10 ms epoll
//! timeout while any subscriber exists) and stages `EVENTS` frames
//! whenever the previous batch has fully drained — the in-flight batch is
//! the natural backpressure bound.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use epoll_shim::{Epoll, Events, Interest, WakeFd};
use mapapi::ConcurrentMap;

use crate::metrics::metrics;
use crate::proto::{self, FrameDecoder, Request, Response, MAX_EVENTS_PER_FRAME};
use crate::srv::{execute, is_write, Backend, ServerOpts, NO_LOG_MSG, READ_ONLY_MSG};

/// Token of the shared listener in every reactor thread's epoll set.
const TOK_LISTENER: u64 = 0;
/// Token of the per-thread shutdown eventfd.
const TOK_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const TOK_CONN0: u64 = 2;

/// Kernel events drained per `epoll_wait` call.
const WAIT_EVENTS: usize = 256;

/// Epoll timeout while any subscribed connection exists: the change-log
/// poll cadence (the threaded backend's condvar wait is 50 ms; the reactor
/// polls faster because one timeout serves every subscriber).
const STREAM_POLL_MS: i32 = 10;

/// The epoll-backend server handle.
pub(crate) struct ReactorServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    wakes: Vec<Arc<WakeFd>>,
}

impl ReactorServer {
    pub(crate) fn start(
        map: Arc<dyn ConcurrentMap>,
        opts: ServerOpts,
        addr: impl ToSocketAddrs,
    ) -> io::Result<ReactorServer> {
        assert!(opts.reactor_threads >= 1, "a reactor needs at least one thread");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::new();
        let mut wakes = Vec::new();
        for _ in 0..opts.reactor_threads {
            let wake = Arc::new(WakeFd::new()?);
            let epoll = Epoll::new()?;
            epoll.add(listener.as_raw_fd(), TOK_LISTENER, Interest::READ)?;
            epoll.add(wake.as_raw_fd(), TOK_WAKE, Interest::READ)?;
            let mut loop_ = ReactorLoop {
                epoll,
                wake: Arc::clone(&wake),
                listener: Arc::clone(&listener),
                map: Arc::clone(&map),
                opts: opts.clone(),
                shutdown: Arc::clone(&shutdown),
                conns: HashMap::new(),
                next_token: TOK_CONN0,
                streaming: 0,
                dec_pool: Vec::new(),
                out_pool: Vec::new(),
                dead: Vec::new(),
            };
            wakes.push(wake);
            threads.push(std::thread::spawn(move || loop_.run()));
        }
        Ok(ReactorServer { local_addr, shutdown, threads, wakes })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Flag every loop down, wake them out of `epoll_wait`, and join.
    /// Dropping the loops closes every connection socket (clients see
    /// EOF/reset) and the last listener Arc (the port stops accepting).
    pub(crate) fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        for wake in &self.wakes {
            wake.wake();
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// What a connection is currently doing.
enum Mode {
    /// Decoding requests, staging responses.
    Request,
    /// `SUBSCRIBE`d: the loop pushes `EVENTS` frames past this seqno.
    Streaming { after: u64 },
}

/// One connection's entire state — this is what replaces a thread.
struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Staged response bytes not yet accepted by the kernel.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    out_pos: usize,
    mode: Mode,
    /// No more requests will be processed; close once `out` drains.  Set
    /// on clean EOF and after a framing-error response is staged.
    closing: bool,
    /// Whether `EPOLLOUT` is currently registered.
    want_write: bool,
}

impl Conn {
    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// One reactor thread's state.  `run` is the event loop.
struct ReactorLoop {
    epoll: Epoll,
    wake: Arc<WakeFd>,
    listener: Arc<TcpListener>,
    map: Arc<dyn ConcurrentMap>,
    opts: ServerOpts,
    shutdown: Arc<AtomicBool>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Live `Mode::Streaming` connections owned by this thread.
    streaming: usize,
    /// Recycled decoders / write queues from closed connections.
    dec_pool: Vec<FrameDecoder>,
    out_pool: Vec<Vec<u8>>,
    /// Scratch list of tokens to close after an iteration phase.
    dead: Vec<u64>,
}

impl ReactorLoop {
    fn run(&mut self) {
        let mut events = Events::with_capacity(WAIT_EVENTS);
        loop {
            let timeout = if self.streaming > 0 { Some(STREAM_POLL_MS) } else { None };
            // The `epoll_wait` below is this backend's readiness wait; its
            // duration is charged, once, to the first frame decoded out of
            // this wakeup (if that frame is sampled) — a whole burst paid
            // one wait, so attributing it to one op *is* the amortized
            // per-op cost the attribution columns report.
            let wait_start = telemetry::trace::now_ns();
            if self.epoll.wait(&mut events, timeout).is_err() {
                // An unusable epoll fd means this loop cannot continue;
                // its connections die with it.
                break;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let mut ready =
                Some((wait_start, telemetry::trace::now_ns().saturating_sub(wait_start)));
            let mut any = false;
            let mut frames = 0u64;
            for ev in events.iter() {
                any = true;
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKE => {
                        self.wake.drain();
                    }
                    token => {
                        let Some(conn) = self.conns.get_mut(&token) else { continue };
                        // Hangup is handled through the read path: the
                        // socket stays readable until the error/EOF has
                        // been consumed, and buffered request bytes that
                        // raced the close are still served.
                        let was_streaming = matches!(conn.mode, Mode::Streaming { .. });
                        let mut dead = false;
                        if ev.readable || ev.hangup {
                            dead = handle_readable(
                                conn,
                                &*self.map,
                                &self.opts,
                                &mut frames,
                                &mut ready,
                            );
                        }
                        if !dead && (ev.writable || conn.pending_out() || conn.closing) {
                            // `flush` charges its `flush` span to the
                            // connection's last sampled frame, still in the
                            // thread's current-trace slot.
                            dead = flush(conn, &self.epoll, token);
                        }
                        // The trace context never outlives its event: an
                        // EPOLLOUT continuation for this connection in a
                        // later wakeup must not inherit it.
                        telemetry::trace::set_current(None);
                        if !was_streaming && matches!(conn.mode, Mode::Streaming { .. }) {
                            self.streaming += 1;
                        }
                        if dead {
                            self.close(token);
                        }
                    }
                }
            }
            // A wakeup that delivered events is the unit the batching story
            // is told in: frames-per-wakeup is the depth the pipeline
            // actually achieved (recorded only when frames arrived, so the
            // 10 ms streaming polls don't bury the distribution in zeros).
            if any {
                metrics().reactor_wakeups.inc();
            }
            if frames > 0 {
                metrics().reactor_frames_per_wakeup.record(frames);
            }
            if self.streaming > 0 {
                self.pump_streams();
            }
        }
        // Drop everything: sockets close, peers see EOF/reset.
        self.conns.clear();
    }

    /// Accept until the shared listener runs dry.  Losing the race to a
    /// sibling thread surfaces as `WouldBlock`, which is the load balancer.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Mirror the threaded accept loop: a connection that
                    // fails setup is dropped, the server keeps serving.
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err()
                    {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.epoll.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
                        continue;
                    }
                    let m = metrics();
                    m.conns_accepted.inc();
                    // Pool hit rate: a recycled decoder arrives warm (its
                    // buffers retain capacity), so a high hit rate is what
                    // keeps steady-state accepts allocation-light.
                    let dec = match self.dec_pool.pop() {
                        Some(dec) => {
                            m.reactor_pool_hits.inc();
                            dec
                        }
                        None => {
                            m.reactor_pool_misses.inc();
                            FrameDecoder::default()
                        }
                    };
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            dec,
                            out: self.out_pool.pop().unwrap_or_default(),
                            out_pos: 0,
                            mode: Mode::Request,
                            closing: false,
                            want_write: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // ECONNABORTED and friends: that one connection is gone,
                // the listener is fine.
                Err(_) => break,
            }
        }
    }

    /// Stage the next `EVENTS` batch on every subscriber whose previous
    /// batch has fully drained — the in-flight frame is the backpressure
    /// bound, so a stalled subscriber costs one batch of memory, not an
    /// unbounded queue.
    fn pump_streams(&mut self) {
        debug_assert!(self.dead.is_empty());
        for (&token, conn) in &mut self.conns {
            let Mode::Streaming { after } = conn.mode else { continue };
            if conn.pending_out() {
                continue;
            }
            let Some(log) = &self.opts.log else { continue };
            let entries = log.read_from(after, MAX_EVENTS_PER_FRAME);
            let Some(&(last, _)) = entries.last() else { continue };
            conn.mode = Mode::Streaming { after: last };
            // Each delivered batch is an op in the sampler's stream: a
            // sampled batch records one `deliver` span covering encode +
            // flush (explicit timestamps; no current trace is set here, so
            // the inner flush records no separate `flush` span).
            let tr = telemetry::trace::should_sample();
            let deliver_start = telemetry::trace::now_ns();
            conn.out.clear();
            conn.out_pos = 0;
            proto::encode_response(&Response::Events(entries), &mut conn.out);
            let dead = flush(conn, &self.epoll, token);
            if let Some(t) = tr {
                telemetry::trace::record_span(
                    t,
                    telemetry::trace::PHASE_DELIVER,
                    deliver_start,
                    telemetry::trace::now_ns().saturating_sub(deliver_start),
                    0,
                );
            }
            if dead {
                self.dead.push(token);
            }
        }
        while let Some(token) = self.dead.pop() {
            self.close(token);
        }
    }

    /// Tear a connection down and recycle its buffers.
    fn close(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else { return };
        if matches!(conn.mode, Mode::Streaming { .. }) {
            self.streaming -= 1;
        }
        // Closing the fd deregisters it from epoll implicitly; the explicit
        // delete keeps the set tidy if the stream clone semantics change.
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        conn.dec.reset();
        conn.out.clear();
        self.dec_pool.push(conn.dec);
        self.out_pool.push(conn.out);
        // `conn.stream` drops here: FIN (or RST if the peer sent bytes we
        // never read), exactly like the threaded handler's socket teardown.
    }
}

/// Drain the socket and process every complete frame, adding the number of
/// frames executed to `frames`.  Returns whether the connection is already
/// dead (reset, or EOF with nothing left to write).  `ready` is the
/// wakeup's epoll-wait window, consumed by the first frame processed in
/// this wakeup (see `process_frames`).
fn handle_readable(
    conn: &mut Conn,
    map: &dyn ConcurrentMap,
    opts: &ServerOpts,
    frames: &mut u64,
    ready: &mut Option<(u64, u64)>,
) -> bool {
    let mut eof = false;
    loop {
        metrics().reactor_read_syscalls.inc();
        match conn.dec.fill_from(&mut conn.stream) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(_) => {
                if matches!(conn.mode, Mode::Streaming { .. }) {
                    // Nothing may follow SUBSCRIBE; drop the bytes (the
                    // threaded backend simply never reads them).
                    conn.dec.reset();
                } else if !conn.closing {
                    *frames += process_frames(conn, map, opts, ready);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Reset mid-read: the connection is gone, staged output and
            // all — matching the threaded handler's `?` on a failed read.
            Err(_) => return true,
        }
    }
    if eof {
        // Clean EOF at a frame boundary: flush staged responses, then
        // close.  Mid-frame EOF (a torn frame) closes without a response,
        // like the threaded path's UnexpectedEof.
        conn.closing = true;
        if !conn.pending_out() {
            return true;
        }
    }
    false
}

/// Decode and execute every complete frame currently buffered, staging the
/// responses in order; returns how many frames were consumed.  Mirrors
/// `srv::handle_conn`'s dispatch exactly.
///
/// Tracing: every frame consults the sampler; a sampled frame becomes the
/// thread's current trace for the rest of its dispatch (so `execute`
/// records its `shard`/`kcas` spans and the later `flush` its span).  The
/// wakeup's `ready` window is consumed by the first frame of the wakeup —
/// sampled or not — so a burst never multiply-charges one epoll wait;
/// frames after the first record a zero-length `ready` span, keeping the
/// per-op phase *set* identical across backends.
fn process_frames(
    conn: &mut Conn,
    map: &dyn ConcurrentMap,
    opts: &ServerOpts,
    ready: &mut Option<(u64, u64)>,
) -> u64 {
    let mut frames = 0u64;
    while !conn.closing {
        // The decoded request is `Copy`, so the borrow on the decoder ends
        // before the response is staged into `conn.out`.
        let req = match conn.dec.next_frame() {
            Ok(Some(payload)) => {
                frames += 1;
                let first_wait = ready.take();
                let tr = telemetry::trace::should_sample();
                telemetry::trace::set_current(tr);
                if let Some(t) = tr {
                    let (wait_start, wait_ns) =
                        first_wait.unwrap_or((telemetry::trace::now_ns(), 0));
                    telemetry::trace::record_span(
                        t,
                        telemetry::trace::PHASE_READY,
                        wait_start,
                        wait_ns,
                        0,
                    );
                }
                let _decode_span = telemetry::trace::begin(telemetry::trace::PHASE_DECODE);
                proto::decode_request(payload)
            }
            Ok(None) => break,
            Err(_) => {
                // Hostile length prefix: torn connection, no response —
                // the same observable as the threaded read_frame error.
                conn.closing = true;
                conn.out.clear();
                conn.out_pos = 0;
                break;
            }
        };
        let resp = match req {
            Ok(Request::Subscribe(after)) => match &opts.log {
                Some(_) => {
                    // Pipelined responses ahead of the subscription stay
                    // staged in `out` and flush before the first EVENTS
                    // frame — same ordering as the threaded flush-then-
                    // stream.  Anything after SUBSCRIBE is undefined by
                    // the protocol; drop it.
                    conn.mode = Mode::Streaming { after };
                    conn.dec.reset();
                    return frames;
                }
                None => Response::Err(NO_LOG_MSG.into()),
            },
            Ok(req) if opts.read_only && is_write(&req) => Response::Err(READ_ONLY_MSG.into()),
            Ok(req) => execute(map, req, Backend::Reactor),
            Err(msg) => {
                // Framing error: answer, then close once it flushes.
                conn.closing = true;
                Response::Err(msg)
            }
        };
        {
            let _resp_span = telemetry::trace::begin(telemetry::trace::PHASE_RESP);
            proto::encode_response(&resp, &mut conn.out);
        }
    }
    frames
}

/// Write staged bytes until drained or the kernel pushes back.  Arms and
/// disarms `EPOLLOUT` as the queue transitions; returns whether the
/// connection is dead (write error, or drained with `closing` set).
///
/// When the thread carries a current trace (the burst's last sampled
/// frame), the whole write attempt is recorded as that trace's `flush`
/// span — explicit timestamps, because the write is a syscall and span
/// guards must never be held across blocking calls.  An `EPOLLOUT`
/// continuation in a later wakeup has no current trace and records
/// nothing (documented undercount: backpressured flushes attribute only
/// their first attempt).
fn flush(conn: &mut Conn, epoll: &Epoll, token: u64) -> bool {
    match telemetry::trace::current() {
        None => flush_inner(conn, epoll, token),
        Some(t) => {
            let flush_start = telemetry::trace::now_ns();
            let dead = flush_inner(conn, epoll, token);
            telemetry::trace::record_span(
                t,
                telemetry::trace::PHASE_FLUSH,
                flush_start,
                telemetry::trace::now_ns().saturating_sub(flush_start),
                0,
            );
            dead
        }
    }
}

fn flush_inner(conn: &mut Conn, epoll: &Epoll, token: u64) -> bool {
    let m = metrics();
    if conn.pending_out() {
        // Queue depth at flush time — the backpressure signal: staged
        // bytes a slow peer has not yet accepted.
        m.reactor_write_queue_bytes.record((conn.out.len() - conn.out_pos) as u64);
    }
    while conn.pending_out() {
        m.reactor_write_syscalls.inc();
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return true,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !conn.want_write {
                    // Counted once per stall (arming EPOLLOUT), not per
                    // retried write while already armed.
                    m.reactor_epollout_stalls.inc();
                    conn.want_write = true;
                    if epoll
                        .modify(conn.stream.as_raw_fd(), token, Interest::READ_WRITE)
                        .is_err()
                    {
                        return true;
                    }
                }
                return false;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    // Fully drained: recycle the staging buffer's window.
    conn.out.clear();
    conn.out_pos = 0;
    if conn.want_write {
        conn.want_write = false;
        if epoll.modify(conn.stream.as_raw_fd(), token, Interest::READ).is_err() {
            return true;
        }
    }
    conn.closing
}
