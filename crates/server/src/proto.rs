//! The wire protocol: small length-prefixed binary frames, no external
//! serialization crates.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes]
//! ```
//!
//! The first payload byte is the opcode (requests) or status tag
//! (responses); all integers are little-endian, fixed width.  Request
//! payloads:
//!
//! | op      | code | payload after the opcode                    |
//! |---------|------|---------------------------------------------|
//! | `GET`   | 1    | `key: u64`                                  |
//! | `PUT`   | 2    | `key: u64, value: u64`                      |
//! | `DEL`   | 3    | `key: u64`                                  |
//! | `RMW`   | 4    | `key: u64, delta: u64`                      |
//! | `SCAN`  | 5    | `start: u64, len: u32`                      |
//! | `STATS` | 6    | —                                           |
//! | `SUBSCRIBE` | 7 | `after: u64` (resume seqno)                |
//! | `METRICS` | 8  | `version: u8` (must be [`METRICS_VERSION`]) |
//! | `TRACE`   | 9  | `version: u8` (must be [`TRACE_VERSION`])   |
//!
//! Responses reuse the request's code as their tag (so a pipelined client
//! can sanity-check ordering) with tag `0` reserved for protocol errors:
//!
//! | resp    | tag  | payload after the tag                                    |
//! |---------|------|----------------------------------------------------------|
//! | `Err`   | 0    | `msg: [u8]` (UTF-8, rest of frame)                       |
//! | `GET`   | 1    | `found: u8, value: u64`                                  |
//! | `PUT`   | 2    | `inserted: u8`                                           |
//! | `DEL`   | 3    | `removed: u8`                                            |
//! | `RMW`   | 4    | `was_present: u8`                                        |
//! | `SCAN`  | 5    | `count: u32`, then `count × (key: u64, value: u64)`      |
//! | `STATS` | 6    | `key_count: u64, key_sum: u128, node_count: u64, key_depth_sum: u64, approx_bytes: u64` |
//! | `EVENTS`| 7    | `count: u32`, then `count × (seqno: u64, event: 17 bytes)` |
//! | `METRICS`| 8   | `text: [u8]` (UTF-8 exposition, rest of frame)           |
//! | `TRACE` | 9    | `text: [u8]` (UTF-8 exposition, rest of frame)           |
//!
//! `METRICS` and `TRACE` are versioned on the *request*: the client names
//! the exposition version it understands, and a version the server does not
//! speak answers with a semantic `Err` response (connection stays usable)
//! rather than a silently different format.  Both exposition bodies are
//! produced by code shared between both serving backends, so their byte
//! layout is a pure function of the registered instrument state — `TRACE`
//! dumps the sampled span rings (see `telemetry::trace`), one line per
//! span, ordered by `(trace, phase)` so the layout never depends on raw
//! timestamps.
//!
//! `SUBSCRIBE` switches the connection into streaming mode: the server
//! answers with `EVENTS` frames — each a batch of change-stream entries in
//! strict sequence order, encoded with [`replica::Event`]'s fixed-width
//! codec — for as long as the connection lives.  No other request may
//! follow a `SUBSCRIBE` on the same connection.
//!
//! `RMW` is deliberately a **verb with a delta**, not a shipped closure:
//! the server applies the workspace's canonical affine update
//! (`absent ↦ δ, present v ↦ (v + δ) & MAX_KEY` — the same shape as the
//! workload engine's in-process increment, mask included) atomically through
//! [`mapapi::ConcurrentMap::rmw`] — the same shape Redis `INCRBY` or a
//! Memcached `incr` exposes.  See DESIGN.md §8 for why arbitrary RMW
//! closures cannot cross a wire.

use std::io::{self, BufRead, Write};

use mapapi::{Key, MapStats, Value};
use replica::{Event, EVENT_WIRE_BYTES};

/// Hard ceiling on a frame's payload size; anything larger is a protocol
/// error (protects the server from a garbage length prefix committing it to
/// a multi-gigabyte read).
pub const MAX_FRAME: usize = 16 << 20;

/// Largest scan length the server accepts: the biggest window whose
/// response frame (tag + count + 16 bytes per pair) is guaranteed to fit
/// under [`MAX_FRAME`].  Larger walks must chunk — exactly what the
/// quiescent audit (`mapapi::suites::check_scan_matches_stats`, 4096 keys
/// per scan) already does.  A `SCAN` beyond this answers with a semantic
/// `Err` response, not a torn connection.
pub const MAX_SCAN_LEN: usize = (MAX_FRAME - 8) / 16;

/// Largest change-stream batch per `EVENTS` frame.  Well under the
/// [`MAX_FRAME`]-derived bound (tag + count + 25 bytes per entry); kept
/// small so a follower's visible staleness moves in modest steps.
pub const MAX_EVENTS_PER_FRAME: usize = 8192;

/// The text-exposition version this server speaks.  A `METRICS` request
/// carrying any other version gets a semantic `Err` response, so clients
/// can probe for compatibility without risking a misparse.
pub const METRICS_VERSION: u8 = 1;

/// The span-trace exposition version this server speaks (same contract as
/// [`METRICS_VERSION`]: any other version on a `TRACE` request answers with
/// a semantic `Err`, and the connection stays usable).
pub const TRACE_VERSION: u8 = 1;

/// One client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get(Key),
    /// Insert-if-absent.
    Put(Key, Value),
    /// Delete.
    Del(Key),
    /// Server-side atomic affine read-modify-write by `delta`.
    Rmw(Key, u64),
    /// Ordered range scan: first `len` pairs with key ≥ `start`.
    Scan(Key, u32),
    /// Quiescent structural statistics of the served structure.
    Stats,
    /// Switch this connection into change-stream mode, resuming after the
    /// given sequence number (0 = from the beginning).
    Subscribe(u64),
    /// Telemetry text exposition in the named version (see
    /// [`METRICS_VERSION`]).  A read: permitted on read-only servers.
    Metrics(u8),
    /// Sampled span-trace exposition in the named version (see
    /// [`TRACE_VERSION`]).  A read: permitted on read-only servers.
    Trace(u8),
}

/// One server response (same order as the request stream of a connection).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Value for a `Get`, if the key was present.
    Get(Option<Value>),
    /// Whether a `Put` inserted.
    Put(bool),
    /// Whether a `Del` removed.
    Del(bool),
    /// Whether the `Rmw` key was present before the update.
    Rmw(bool),
    /// The scanned window, ascending by key.
    Scan(Vec<(Key, Value)>),
    /// The structure's statistics.
    Stats(MapStats),
    /// A change-stream batch: `(seqno, event)` entries in strict sequence
    /// order.  Only sent on subscribed connections.
    Events(Vec<(u64, Event)>),
    /// The telemetry text exposition (UTF-8).
    Metrics(String),
    /// The sampled span-trace exposition (UTF-8).
    Trace(String),
    /// Protocol-level error; the server closes the connection after it.
    Err(String),
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Copy an exactly-`N`-byte slice into an array. Every caller passes a
/// slice produced by `take(N)`, so the lengths always match; a mismatch
/// would be an internal cursor bug, surfaced as a decode error (killing
/// just the frame) rather than a process abort.
fn array<const N: usize>(s: &[u8]) -> Result<[u8; N], String> {
    s.try_into().map_err(|_| format!("internal: expected {N} bytes, got {}", s.len()))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!("truncated frame: wanted {n} bytes at offset {}", self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(array::<4>(self.take(4)?)?))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(array::<8>(self.take(8)?)?))
    }
    fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(array::<16>(self.take(16)?)?))
    }
    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in frame", self.buf.len() - self.pos))
        }
    }
}

/// Append `req` to `buf` as one complete frame (length prefix included).
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    let at = buf.len();
    put_u32(buf, 0); // length back-patched below
    match *req {
        Request::Get(k) => {
            buf.push(1);
            put_u64(buf, k);
        }
        Request::Put(k, v) => {
            buf.push(2);
            put_u64(buf, k);
            put_u64(buf, v);
        }
        Request::Del(k) => {
            buf.push(3);
            put_u64(buf, k);
        }
        Request::Rmw(k, d) => {
            buf.push(4);
            put_u64(buf, k);
            put_u64(buf, d);
        }
        Request::Scan(start, len) => {
            buf.push(5);
            put_u64(buf, start);
            put_u32(buf, len);
        }
        Request::Stats => buf.push(6),
        Request::Subscribe(after) => {
            buf.push(7);
            put_u64(buf, after);
        }
        Request::Metrics(version) => {
            buf.push(8);
            buf.push(version);
        }
        Request::Trace(version) => {
            buf.push(9);
            buf.push(version);
        }
    }
    let len = (buf.len() - at - 4) as u32;
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decode one request payload (the frame body, length prefix stripped).
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        1 => Request::Get(c.u64()?),
        2 => Request::Put(c.u64()?, c.u64()?),
        3 => Request::Del(c.u64()?),
        4 => Request::Rmw(c.u64()?, c.u64()?),
        5 => Request::Scan(c.u64()?, c.u32()?),
        6 => Request::Stats,
        7 => Request::Subscribe(c.u64()?),
        8 => Request::Metrics(c.u8()?),
        9 => Request::Trace(c.u8()?),
        op => return Err(format!("unknown request opcode {op}")),
    };
    c.done()?;
    Ok(req)
}

/// Append `resp` to `buf` as one complete frame (length prefix included).
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    let at = buf.len();
    put_u32(buf, 0);
    match resp {
        Response::Err(msg) => {
            buf.push(0);
            buf.extend_from_slice(msg.as_bytes());
        }
        Response::Get(v) => {
            buf.push(1);
            buf.push(v.is_some() as u8);
            put_u64(buf, v.unwrap_or(0));
        }
        Response::Put(ok) => {
            buf.push(2);
            buf.push(*ok as u8);
        }
        Response::Del(ok) => {
            buf.push(3);
            buf.push(*ok as u8);
        }
        Response::Rmw(present) => {
            buf.push(4);
            buf.push(*present as u8);
        }
        Response::Scan(pairs) => {
            buf.push(5);
            put_u32(buf, pairs.len() as u32);
            for &(k, v) in pairs {
                put_u64(buf, k);
                put_u64(buf, v);
            }
        }
        Response::Stats(s) => {
            buf.push(6);
            put_u64(buf, s.key_count);
            buf.extend_from_slice(&s.key_sum.to_le_bytes());
            put_u64(buf, s.node_count);
            put_u64(buf, s.key_depth_sum);
            put_u64(buf, s.approx_bytes);
        }
        Response::Events(entries) => {
            buf.push(7);
            put_u32(buf, entries.len() as u32);
            for (seq, ev) in entries {
                put_u64(buf, *seq);
                ev.encode(buf);
            }
        }
        Response::Metrics(text) => {
            buf.push(8);
            buf.extend_from_slice(text.as_bytes());
        }
        Response::Trace(text) => {
            buf.push(9);
            buf.extend_from_slice(text.as_bytes());
        }
    }
    let len = (buf.len() - at - 4) as u32;
    buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decode one response payload (the frame body, length prefix stripped).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        0 => {
            let rest = c.take(payload.len() - 1)?;
            Response::Err(String::from_utf8_lossy(rest).into_owned())
        }
        1 => {
            let found = c.u8()? != 0;
            let v = c.u64()?;
            Response::Get(found.then_some(v))
        }
        2 => Response::Put(c.u8()? != 0),
        3 => Response::Del(c.u8()? != 0),
        4 => Response::Rmw(c.u8()? != 0),
        5 => {
            let n = c.u32()? as usize;
            let mut pairs = Vec::with_capacity(n.min(MAX_FRAME / 16));
            for _ in 0..n {
                pairs.push((c.u64()?, c.u64()?));
            }
            Response::Scan(pairs)
        }
        6 => Response::Stats(MapStats {
            key_count: c.u64()?,
            key_sum: c.u128()?,
            node_count: c.u64()?,
            key_depth_sum: c.u64()?,
            approx_bytes: c.u64()?,
        }),
        7 => {
            let n = c.u32()? as usize;
            let mut entries = Vec::with_capacity(n.min(MAX_FRAME / (8 + EVENT_WIRE_BYTES)));
            for _ in 0..n {
                let seq = c.u64()?;
                let raw = array::<EVENT_WIRE_BYTES>(c.take(EVENT_WIRE_BYTES)?)?;
                entries.push((seq, Event::decode(&raw)?));
            }
            Response::Events(entries)
        }
        8 => {
            let rest = c.take(payload.len() - 1)?;
            match String::from_utf8(rest.to_vec()) {
                Ok(text) => Response::Metrics(text),
                Err(_) => return Err("METRICS exposition is not valid UTF-8".into()),
            }
        }
        9 => {
            let rest = c.take(payload.len() - 1)?;
            match String::from_utf8(rest.to_vec()) {
                Ok(text) => Response::Trace(text),
                Err(_) => return Err("TRACE exposition is not valid UTF-8".into()),
            }
        }
        tag => return Err(format!("unknown response tag {tag}")),
    };
    c.done()?;
    Ok(resp)
}

/// Read one frame's payload into `payload` (cleared first).  Returns
/// `Ok(false)` on clean EOF at a frame boundary; propagates any other I/O
/// error (including mid-frame EOF, surfaced as `UnexpectedEof`).
pub fn read_frame<R: BufRead>(r: &mut R, payload: &mut Vec<u8>) -> io::Result<bool> {
    let mut prefix = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn prefix.
    match r.read(&mut prefix[..1])? {
        0 => return Ok(false),
        _ => r.read_exact(&mut prefix[1..])?,
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    payload.clear();
    payload.resize(len, 0);
    r.read_exact(payload)?;
    Ok(true)
}

/// Write raw pre-encoded frames.
pub fn write_frames<W: Write>(w: &mut W, frames: &[u8]) -> io::Result<()> {
    w.write_all(frames)
}

/// How many bytes [`FrameDecoder::fill_from`] asks the source for per call.
/// Big enough that a pipelined burst of point requests arrives in one read;
/// small enough that a connection's retained buffer stays modest.
pub const READ_CHUNK: usize = 64 << 10;

/// An **incremental** frame decoder: the nonblocking counterpart of
/// [`read_frame`], for readers that receive bytes in whatever pieces the
/// network delivers (the reactor's per-connection state machine).
///
/// Bytes accumulate in one internal buffer ([`FrameDecoder::fill_from`]
/// reads straight into its tail — no staging copy) and
/// [`FrameDecoder::next_frame`] yields each complete payload as a borrowed
/// slice.  Two properties the battery asserts:
///
/// * **chunking-oblivious**: any split of a byte stream — down to one byte
///   at a time — decodes to exactly the frame sequence the one-shot
///   [`read_frame`] oracle produces (proptest-differential);
/// * **bounded**: a frame's length prefix is validated against
///   [`MAX_FRAME`] *before* any buffer growth beyond the bytes actually
///   received, so a hostile length can never force an allocation past the
///   ceiling — and the buffer only ever grows toward the one frame it is
///   assembling (plus up to one [`READ_CHUNK`] of lookahead).
///
/// Consumed bytes are compacted away lazily; capacity is retained across
/// frames and connections (the reactor pools decoders), which is what makes
/// the steady-state read path allocation-free.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder (no buffer until the first fill).
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes by hand — the test-side entry point; socket readers use
    /// [`FrameDecoder::fill_from`].
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Read once from `r` into the buffer's tail, growing it by at most
    /// [`READ_CHUNK`].  Returns the byte count (0 = EOF); `WouldBlock` and
    /// friends propagate untouched.
    pub fn fill_from<R: io::Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        // Zero-fill the read window; with retained capacity this is a
        // memset, not an allocation.
        self.buf.resize(old + READ_CHUNK, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// The next complete frame payload, if the buffer holds one.
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// poisoned (hostile length prefix) and the connection must die —
    /// exactly when the [`read_frame`] oracle errors.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, String> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(array::<4>(&avail[..4])?) as usize;
        if len > MAX_FRAME {
            return Err(format!("frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        self.start += 4 + len;
        Ok(Some(&self.buf[self.start - len..self.start]))
    }

    /// Whether undecoded bytes remain — i.e. the stream ended mid-frame if
    /// no more input is coming.
    pub fn has_partial(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The buffer's capacity — what the allocation-bound property test
    /// checks against [`MAX_FRAME`] `+` [`READ_CHUNK`] slack.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Forget buffered bytes but keep the allocation: the pool-return path.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Drop the consumed prefix once it dominates the buffer, so the buffer
    /// tracks the frames in flight instead of the bytes ever received.
    /// Amortized O(1) per byte: each byte is copied at most once per
    /// half-buffer of consumption.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= READ_CHUNK.max(self.buf.len() / 2) {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(len, buf.len() - 4, "length prefix must cover the payload");
        assert_eq!(decode_request(&buf[4..]), Ok(req));
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(len, buf.len() - 4);
        assert_eq!(decode_response(&buf[4..]), Ok(resp));
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Get(42));
        roundtrip_req(Request::Put(1, u64::MAX));
        roundtrip_req(Request::Del(mapapi::MAX_KEY));
        roundtrip_req(Request::Rmw(7, 123));
        roundtrip_req(Request::Scan(10, 4096));
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Subscribe(0));
        roundtrip_req(Request::Subscribe(u64::MAX));
        roundtrip_req(Request::Metrics(METRICS_VERSION));
        roundtrip_req(Request::Metrics(0));
        roundtrip_req(Request::Metrics(u8::MAX));
        roundtrip_req(Request::Trace(TRACE_VERSION));
        roundtrip_req(Request::Trace(0));
        roundtrip_req(Request::Trace(u8::MAX));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Get(None));
        roundtrip_resp(Response::Get(Some(99)));
        roundtrip_resp(Response::Put(true));
        roundtrip_resp(Response::Del(false));
        roundtrip_resp(Response::Rmw(true));
        roundtrip_resp(Response::Scan(vec![]));
        roundtrip_resp(Response::Scan(vec![(1, 2), (3, 4), (u64::MAX, 0)]));
        roundtrip_resp(Response::Stats(MapStats {
            key_count: 5,
            key_sum: u128::MAX / 3,
            node_count: 9,
            key_depth_sum: 20,
            approx_bytes: 1000,
        }));
        roundtrip_resp(Response::Err("bad opcode".into()));
        roundtrip_resp(Response::Events(vec![]));
        roundtrip_resp(Response::Events(vec![
            (1, replica::Event::Put(5, 50)),
            (2, replica::Event::Del(5)),
            (3, replica::Event::Set(9, u64::MAX)),
        ]));
        roundtrip_resp(Response::Metrics(String::new()));
        roundtrip_resp(Response::Metrics("srv_ops_get_total 42\nsrv_ops_put_total 7\n".into()));
        roundtrip_resp(Response::Trace(String::new()));
        roundtrip_resp(Response::Trace(
            "# pathcas-trace v1 backend=reactor sample_every=64 sampled=1 spans=6 dropped=0\n"
                .into(),
        ));
        // Non-UTF-8 exposition bytes are rejected, not lossily decoded.
        assert!(decode_response(&[8, 0xFF, 0xFE]).is_err());
        assert!(decode_response(&[9, 0xFF, 0xFE]).is_err());
    }

    #[test]
    fn corrupt_event_frames_are_rejected() {
        let mut buf = Vec::new();
        encode_response(&Response::Events(vec![(7, replica::Event::Put(1, 2))]), &mut buf);
        let mut payload = buf[4..].to_vec();
        // Flip the event kind byte to an unknown value.
        payload[5 + 8] = 99;
        assert!(decode_response(&payload).is_err());
        // Truncate mid-entry.
        let cut = payload.len() - 3;
        assert!(decode_response(&payload[..cut]).is_err());
    }

    #[test]
    fn garbage_is_rejected_not_misparsed() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99, 0, 0]).is_err());
        // Truncated GET.
        assert!(decode_request(&[1, 1, 2]).is_err());
        // Trailing bytes.
        let mut buf = Vec::new();
        encode_request(&Request::Stats, &mut buf);
        let mut payload = buf[4..].to_vec();
        payload.push(0);
        assert!(decode_request(&payload).is_err());
        assert!(decode_response(&[77]).is_err());
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        use std::io::BufReader;
        let mut payload = Vec::new();
        // Clean EOF.
        let mut r = BufReader::new(&[][..]);
        assert!(!read_frame(&mut r, &mut payload).unwrap());
        // A full frame followed by clean EOF.
        let mut buf = Vec::new();
        encode_request(&Request::Get(5), &mut buf);
        let mut r = BufReader::new(&buf[..]);
        assert!(read_frame(&mut r, &mut payload).unwrap());
        assert_eq!(decode_request(&payload), Ok(Request::Get(5)));
        assert!(!read_frame(&mut r, &mut payload).unwrap());
        // Torn prefix is an error, not a silent EOF.
        let mut r = BufReader::new(&buf[..2]);
        assert!(read_frame(&mut r, &mut payload).is_err());
        // Oversized length prefix is rejected before allocating.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = BufReader::new(&huge[..]);
        assert!(read_frame(&mut r, &mut payload).is_err());
    }

    #[test]
    fn incremental_decoder_handles_any_split() {
        let reqs = [Request::Get(1), Request::Put(2, 20), Request::Scan(1, 8), Request::Stats];
        let mut stream = Vec::new();
        for r in &reqs {
            encode_request(r, &mut stream);
        }
        // Feed the whole stream one byte at a time; every frame must pop
        // out exactly once, in order, at the moment its last byte lands.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.feed(&[b]);
            while let Some(payload) = dec.next_frame().unwrap() {
                got.push(decode_request(payload).unwrap());
            }
        }
        assert_eq!(got, reqs);
        assert!(!dec.has_partial());
    }

    #[test]
    fn incremental_decoder_rejects_hostile_lengths_without_buffering() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(dec.next_frame().is_err());
        // The rejection happened at the prefix: four bytes buffered, no
        // multi-megabyte reservation.
        assert!(dec.capacity() < 1024, "hostile prefix grew the buffer");
    }

    #[test]
    fn incremental_decoder_retains_capacity_across_frames_and_reset() {
        let mut dec = FrameDecoder::new();
        let mut stream = Vec::new();
        encode_request(&Request::Put(1, 1), &mut stream);
        for _ in 0..100 {
            dec.feed(&stream);
            assert!(dec.next_frame().unwrap().is_some());
        }
        let cap = dec.capacity();
        assert!(cap > 0);
        dec.reset();
        assert_eq!(dec.capacity(), cap, "reset must keep the allocation");
        assert_eq!(dec.buffered(), 0);
        // Mid-frame state is visible: feed a prefix only.
        dec.feed(&stream[..3]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.has_partial());
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        use std::io::BufReader;
        let reqs =
            [Request::Get(1), Request::Put(2, 20), Request::Scan(1, 8), Request::Stats];
        let mut buf = Vec::new();
        for r in &reqs {
            encode_request(r, &mut buf);
        }
        let mut r = BufReader::new(&buf[..]);
        let mut payload = Vec::new();
        for want in &reqs {
            assert!(read_frame(&mut r, &mut payload).unwrap());
            assert_eq!(decode_request(&payload).as_ref(), Ok(want));
        }
        assert!(!read_frame(&mut r, &mut payload).unwrap());
    }
}
