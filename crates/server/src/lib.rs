//! # server — the pipelined KV service front-end
//!
//! Serves any [`mapapi::ConcurrentMap`] — in practice a registry structure
//! or a `shard::ShardedMap` composition — over TCP with a small
//! length-prefixed binary protocol (GET/PUT/DEL/RMW/SCAN/STATS/METRICS),
//! using nothing beyond `std::net`.  Three pieces:
//!
//! * [`proto`] — frame layout, opcodes, and the encode/decode pairs (the
//!   tables live in the module docs);
//! * [`Server`] — threaded acceptor + one handler per connection, with
//!   **per-connection request pipelining and batched responses**: a burst
//!   of N requests is answered with one batched write, so syscalls are
//!   paid per burst;
//! * [`Connection`] / [`ServiceMap`] — the loopback client side: a single
//!   pipelined connection, and a connection *pool* implementing
//!   [`mapapi::ConcurrentMap`] + [`workload::BatchApply`], which is the
//!   workload engine's **service mode** — every existing scenario (YCSB
//!   A–F, `txn-transfer`, `scan-heavy`, `contended-hot-set`) runs over the
//!   socket path with the same latency histograms, and
//!   `workload::run_scenario_batched` sweeps pipelining depth.
//!
//! The harness binary `bench_service` wires this to the registry
//! (`harness::try_make`, including `shardN(inner)` names) and emits the
//! same `BENCH_*.json`/CSV percentile schema as `bench_workloads`.  See
//! DESIGN.md §8 for the framing and batching rationale.
//!
//! **Replication** (PR 6): a server started with [`ServerOpts`] can publish
//! a [`replica::ChangeLog`] to `SUBSCRIBE`rs and/or run read-only as a
//! follower front-end; [`WireTail`] is the client half that keeps a
//! [`replica::Follower`] applying the stream.  DESIGN.md §9 has the model.

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
mod reactor;
mod srv;

pub use client::{Connection, ServiceMap, WireTail};
pub use proto::{
    FrameDecoder, Request, Response, MAX_EVENTS_PER_FRAME, MAX_FRAME, MAX_SCAN_LEN,
    METRICS_VERSION, TRACE_VERSION,
};
pub use srv::{Backend, Server, ServerOpts};
