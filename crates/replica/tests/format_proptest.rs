//! Property tests for the replication formats: arbitrary checkpoints and
//! event vectors round-trip exactly, and corrupted bytes are rejected with
//! an error — never a panic, never a silent misparse.

use proptest::prelude::*;
use replica::{Checkpoint, Event, EVENT_WIRE_BYTES};

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(k, v)| Event::Put(k, v)),
        any::<u64>().prop_map(Event::Del),
        (any::<u64>(), any::<u64>()).prop_map(|(k, v)| Event::Set(k, v)),
    ]
}

fn checkpoint_strategy() -> impl Strategy<Value = Checkpoint> {
    (
        any::<u64>(),
        proptest::collection::vec(
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..40),
            0..6,
        ),
    )
        .prop_map(|(seqno, sections)| Checkpoint { seqno, sections })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn checkpoints_roundtrip(ckpt in checkpoint_strategy()) {
        let bytes = ckpt.encode();
        assert_eq!(Checkpoint::decode(&bytes), Ok(ckpt));
    }

    #[test]
    fn corrupted_checkpoints_are_rejected_not_panicked(
        input in (checkpoint_strategy(), 0..4096usize, any::<u8>())
    ) {
        let (ckpt, pos, flip) = input;
        let mut bytes = ckpt.encode();
        let i = pos % bytes.len();
        // Any real bit flip must be caught by the trailing FNV checksum
        // (a zero flip leaves the file intact and must still decode).
        bytes[i] ^= flip;
        match Checkpoint::decode(&bytes) {
            Ok(got) => assert_eq!(got, ckpt, "decode succeeded, so the flip must have been zero"),
            Err(msg) => assert!(!msg.is_empty()),
        }
    }

    #[test]
    fn truncated_checkpoints_are_rejected(input in (checkpoint_strategy(), 0..4096usize)) {
        let (ckpt, cut) = input;
        let bytes = ckpt.encode();
        let len = cut % bytes.len(); // strictly shorter than the full file
        assert!(Checkpoint::decode(&bytes[..len]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Random garbage essentially never carries a valid FNV checksum;
        // the property under test is "no panic, no bogus success".
        if let Ok(ckpt) = Checkpoint::decode(&bytes) {
            assert_eq!(ckpt.encode(), bytes, "accepted input must be canonical");
        }
    }

    #[test]
    fn event_vectors_roundtrip(events in proptest::collection::vec(event_strategy(), 0..200)) {
        // The change stream's frame body is a flat run of fixed-width
        // events; encode the lot and decode it back element-wise.
        let mut buf = Vec::new();
        for ev in &events {
            ev.encode(&mut buf);
        }
        assert_eq!(buf.len(), events.len() * EVENT_WIRE_BYTES);
        let decoded: Vec<Event> = buf
            .chunks_exact(EVENT_WIRE_BYTES)
            .map(|c| Event::decode(c.try_into().unwrap()).expect("clean bytes must decode"))
            .collect();
        assert_eq!(decoded, events);
    }

    #[test]
    fn arbitrary_event_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), EVENT_WIRE_BYTES..(EVENT_WIRE_BYTES + 1))) {
        let arr: [u8; EVENT_WIRE_BYTES] = raw.as_slice().try_into().unwrap();
        // Kind bytes 1..=3 decode; everything else errors. Either way, no panic.
        let _ = Event::decode(&arr);
    }
}
