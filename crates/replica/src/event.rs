//! One committed mutation, as it travels through the change stream.

use mapapi::{Key, Value};

/// Encoded size of one [`Event`]: kind byte + key + argument, fixed width so
/// stream frames are trivially seekable.
pub const EVENT_WIRE_BYTES: usize = 17;

/// A committed mutation on the primary.
///
/// There is deliberately no "Rmw" variant: an RMW's closure cannot be
/// replayed (and over the wire never existed — see DESIGN.md §8), so the
/// primary logs the **committed post-value** as an absolute [`Event::Set`].
/// Replaying a `Set` is an upsert, which reproduces the exact state the
/// primary committed without re-running any computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A successful insert-if-absent (the primary's `insert` returned true).
    Put(Key, Value),
    /// A successful remove (the primary's `remove` returned true).
    Del(Key),
    /// The committed post-value of an RMW, replayed as an upsert.
    Set(Key, Value),
}

impl Event {
    /// The key this event mutates.
    pub fn key(&self) -> Key {
        match *self {
            Event::Put(k, _) | Event::Del(k) | Event::Set(k, _) => k,
        }
    }

    /// Append the fixed-width wire encoding (`kind: u8, key: u64 LE,
    /// arg: u64 LE`; `Del` carries a zero argument) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let (kind, key, arg) = match *self {
            Event::Put(k, v) => (1u8, k, v),
            Event::Del(k) => (2, k, 0),
            Event::Set(k, v) => (3, k, v),
        };
        buf.push(kind);
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&arg.to_le_bytes());
    }

    /// Decode one fixed-width event.  Unknown kind bytes are an error —
    /// never a panic — so corrupted streams surface as rejections.
    pub fn decode(bytes: &[u8; EVENT_WIRE_BYTES]) -> Result<Event, String> {
        let key = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
        let arg = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
        match bytes[0] {
            1 => Ok(Event::Put(key, arg)),
            2 => Ok(Event::Del(key)),
            3 => Ok(Event::Set(key, arg)),
            kind => Err(format!("unknown event kind {kind}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip() {
        for ev in [Event::Put(1, u64::MAX), Event::Del(mapapi::MAX_KEY), Event::Set(7, 0)] {
            let mut buf = Vec::new();
            ev.encode(&mut buf);
            assert_eq!(buf.len(), EVENT_WIRE_BYTES);
            let arr: [u8; EVENT_WIRE_BYTES] = buf.as_slice().try_into().unwrap();
            assert_eq!(Event::decode(&arr), Ok(ev));
        }
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let mut buf = [0u8; EVENT_WIRE_BYTES];
        for kind in [0u8, 4, 99, 255] {
            buf[0] = kind;
            assert!(Event::decode(&buf).is_err(), "kind {kind} must be rejected");
        }
    }
}
