//! Atomics facade: the one place this crate touches an atomics
//! implementation.
//!
//! Normal builds re-export `std::sync::atomic`. Under `--cfg pathcas_loom`
//! (see README "Verification") the same names resolve to `loom-shim`'s mock
//! atomics, so a model can drive the production follower/replica-set code
//! (the `applied` seqno publication and the round-robin read fan-out)
//! directly.

#[cfg(not(pathcas_loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(pathcas_loom)]
pub(crate) use loom_shim::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
