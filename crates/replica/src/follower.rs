//! Read-only replicas: bootstrap from a checkpoint, tail the stream.

use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use mapapi::{ConcurrentMap, Key, MapStats, Value};

use crate::checkpoint::Checkpoint;
use crate::event::Event;
use crate::log::ChangeLog;

/// A read-only replica of a [`crate::ReplicatedMap`].
///
/// A follower is a fresh structure loaded from a [`Checkpoint`] (exact at
/// the checkpoint's seqno) that then applies change-stream events **strictly
/// in sequence**.  Because application is sequential, the follower's state
/// after applying event `s` is exactly the primary's per-key history up to
/// `s` — so an atomic scan of the follower observes a consistent prefix of
/// the primary's history, just a (boundedly) stale one.  The staleness at
/// any instant is `primary.seqno() − follower.applied_seqno()`, which
/// `bench_service` samples into a percentile column.
///
/// `apply` must be driven by **one** thread (the in-process [`tail_log`]
/// helper or the wire tail in the `server` crate); the dense-seqno assert
/// catches any misuse.  Reads may come from any number of threads
/// concurrently — the follower implements [`ConcurrentMap`] with its write
/// methods panicking, and the server's read-only mode rejects write verbs
/// before they could reach the map.
pub struct Follower {
    name: &'static str,
    inner: Box<dyn ConcurrentMap>,
    applied: AtomicU64,
}

impl Follower {
    /// Load `inner` (which must be empty) from a checkpoint.  Shard
    /// ownership is recomputed on insert, so the follower's structure —
    /// plain, or sharded with any shard count — is independent of the
    /// primary's.
    pub fn bootstrap(inner: Box<dyn ConcurrentMap>, ckpt: &Checkpoint) -> Follower {
        let name = mapapi::intern_name(format!("follower({})", inner.name()));
        for section in &ckpt.sections {
            for &(k, v) in section {
                assert!(inner.insert(k, v), "bootstrap target already held key {k}");
            }
        }
        Follower { name, inner, applied: AtomicU64::new(ckpt.seqno) }
    }

    /// The sequence number of the last applied event.
    pub fn applied_seqno(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Apply one event; `seq` must be exactly `applied_seqno() + 1`.
    ///
    /// The asserts double as replay validation: a `Put` replayed onto a
    /// correct prefix must find its key absent and a `Del` must find it
    /// present, so any divergence (a gap, a reordering, a corrupted event)
    /// fails loudly instead of silently forking the replica.
    pub fn apply(&self, seq: u64, ev: Event) {
        let applied = self.applied.load(Ordering::Acquire);
        assert_eq!(seq, applied + 1, "{}: change stream gap", self.name);
        match ev {
            Event::Put(k, v) => {
                assert!(self.inner.insert(k, v), "{}: replayed Put({k}) found the key present", self.name);
            }
            Event::Del(k) => {
                assert!(self.inner.remove(k), "{}: replayed Del({k}) found the key absent", self.name);
            }
            Event::Set(k, v) => {
                self.inner.rmw(k, &mut |_| v);
            }
        }
        self.applied.store(seq, Ordering::Release);
        let m = crate::metrics::metrics();
        m.follower_applied_seqno.set(seq);
        m.events_applied.inc();
    }

    /// Drain everything the log currently holds beyond `applied_seqno()`.
    /// Used by crash recovery (checkpoint + full replay) and by tests that
    /// need a follower caught up to a known point.
    pub fn catch_up(&self, log: &ChangeLog) {
        loop {
            let batch = log.read_from(self.applied_seqno(), 4096);
            if batch.is_empty() {
                return;
            }
            for (seq, ev) in batch {
                self.apply(seq, ev);
            }
        }
    }
}

impl ConcurrentMap for Follower {
    fn name(&self) -> &'static str {
        self.name
    }

    fn insert(&self, _key: Key, _value: Value) -> bool {
        panic!("{}: followers are read-only", self.name)
    }

    fn remove(&self, _key: Key) -> bool {
        panic!("{}: followers are read-only", self.name)
    }

    fn contains(&self, key: Key) -> bool {
        self.inner.contains(key)
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.inner.get(key)
    }

    fn rmw(&self, _key: Key, _update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        panic!("{}: followers are read-only", self.name)
    }

    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.inner.scan(start, len)
    }

    fn stats(&self) -> MapStats {
        self.inner.stats()
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn shard_of(&self, key: Key) -> usize {
        self.inner.shard_of(key)
    }

    fn shard_stats(&self) -> Vec<MapStats> {
        self.inner.shard_stats()
    }

    fn shard_loads(&self) -> Vec<mapapi::ShardLoad> {
        self.inner.shard_loads()
    }
}

/// Tail `log` into `follower` until `stop` is set **and** the log is
/// drained — the in-process subscriber loop (the wire version lives in the
/// `server` crate).  Run it on a dedicated thread; it owns the follower's
/// apply stream.
pub fn tail_log(log: &ChangeLog, follower: &Follower, stop: &AtomicBool) {
    loop {
        let batch = log.wait_from(follower.applied_seqno(), 4096, Duration::from_millis(20));
        if batch.is_empty() && stop.load(Ordering::Acquire) {
            return;
        }
        for (seq, ev) in batch {
            follower.apply(seq, ev);
        }
    }
}

/// Primary + followers behind one [`ConcurrentMap`]: writes (and `stats`)
/// go to the primary, reads and scans fan out round-robin across the
/// followers.  This is the topology the `read-replica` scenario drives —
/// the read side scales with follower count while the write side stays a
/// single primary.
pub struct ReplicaSet {
    name: &'static str,
    primary: Box<dyn ConcurrentMap>,
    followers: Vec<Box<dyn ConcurrentMap>>,
    next: AtomicUsize,
}

impl ReplicaSet {
    /// Route reads across `followers` (or to the primary when empty).
    pub fn new(primary: Box<dyn ConcurrentMap>, followers: Vec<Box<dyn ConcurrentMap>>) -> ReplicaSet {
        let name = mapapi::intern_name(format!("replset({}+{}f)", primary.name(), followers.len()));
        ReplicaSet { name, primary, followers, next: AtomicUsize::new(0) }
    }

    fn reader(&self) -> &dyn ConcurrentMap {
        if self.followers.is_empty() {
            return &*self.primary;
        }
        // ORDERING: Relaxed — round-robin fan-out only needs a unique tick;
        // follower freshness is carried by `applied`'s Release/Acquire pair.
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.followers.len();
        &*self.followers[i]
    }
}

impl ConcurrentMap for ReplicaSet {
    fn name(&self) -> &'static str {
        self.name
    }

    fn insert(&self, key: Key, value: Value) -> bool {
        self.primary.insert(key, value)
    }

    fn remove(&self, key: Key) -> bool {
        self.primary.remove(key)
    }

    fn contains(&self, key: Key) -> bool {
        self.reader().contains(key)
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.reader().get(key)
    }

    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        self.primary.rmw(key, update)
    }

    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.reader().scan(start, len)
    }

    fn stats(&self) -> MapStats {
        self.primary.stats()
    }

    fn shard_count(&self) -> usize {
        self.primary.shard_count()
    }

    fn shard_of(&self, key: Key) -> usize {
        self.primary.shard_of(key)
    }

    fn shard_stats(&self) -> Vec<MapStats> {
        self.primary.shard_stats()
    }

    fn shard_loads(&self) -> Vec<mapapi::ShardLoad> {
        self.primary.shard_loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplicatedMap;
    use mapapi::reference::LockedBTreeMap;
    use std::sync::Arc;

    fn fresh() -> Box<dyn ConcurrentMap> {
        Box::new(LockedBTreeMap::new())
    }

    #[test]
    fn bootstrap_plus_replay_reaches_the_primary_state() {
        let primary = ReplicatedMap::new(fresh());
        for k in 1..=50u64 {
            primary.insert(k, k);
        }
        let ckpt = primary.checkpoint();
        // Mutate past the cut: the follower must replay these.
        primary.remove(10);
        primary.rmw(20, &mut |v| v.unwrap() + 100);
        primary.insert(51, 51);

        let f = Follower::bootstrap(fresh(), &ckpt);
        assert_eq!(f.applied_seqno(), 50);
        assert_eq!(f.get(10), Some(10), "pre-replay follower is exact at the cut");
        f.catch_up(&primary.log());
        assert_eq!(f.applied_seqno(), 53);
        assert_eq!(f.get(10), None);
        assert_eq!(f.get(20), Some(120));
        assert_eq!(f.get(51), Some(51));
        let (ps, fs) = (primary.stats(), f.stats());
        assert_eq!((ps.key_count, ps.key_sum), (fs.key_count, fs.key_sum));
    }

    #[test]
    #[should_panic(expected = "change stream gap")]
    fn out_of_order_apply_panics() {
        let f = Follower::bootstrap(fresh(), &Checkpoint { seqno: 0, sections: vec![] });
        f.apply(2, Event::Put(1, 1));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn follower_writes_panic() {
        let f = Follower::bootstrap(fresh(), &Checkpoint { seqno: 0, sections: vec![] });
        f.insert(1, 1);
    }

    #[test]
    fn tail_log_tracks_a_live_primary() {
        let primary = Arc::new(ReplicatedMap::new(fresh()));
        let follower = Arc::new(Follower::bootstrap(fresh(), &primary.checkpoint()));
        let stop = Arc::new(AtomicBool::new(false));
        let tail = {
            let (log, f, stop) = (primary.log(), follower.clone(), stop.clone());
            std::thread::spawn(move || tail_log(&log, &f, &stop))
        };
        for k in 1..=2000u64 {
            primary.insert(k, k);
            if k % 3 == 0 {
                primary.rmw(k, &mut |v| v.unwrap() * 2);
            }
        }
        stop.store(true, Ordering::Release);
        tail.join().unwrap();
        // tail_log drains before exiting, so the follower is fully caught up.
        assert_eq!(follower.applied_seqno(), primary.log().seqno());
        let (ps, fs) = (primary.stats(), follower.stats());
        assert_eq!((ps.key_count, ps.key_sum), (fs.key_count, fs.key_sum));
    }

    #[test]
    fn replica_set_routes_reads_to_followers_and_writes_to_the_primary() {
        let primary = ReplicatedMap::new(fresh());
        primary.insert(1, 1);
        let ckpt = primary.checkpoint();
        let f1 = Follower::bootstrap(fresh(), &ckpt);
        let f2 = Follower::bootstrap(fresh(), &ckpt);
        let set = ReplicaSet::new(Box::new(primary), vec![Box::new(f1), Box::new(f2)]);
        assert_eq!(set.name(), "replset(repl(locked-btreemap)+2f)");
        // Reads hit followers (which only know the checkpoint).
        assert_eq!(set.get(1), Some(1));
        // Writes hit the primary; the stale followers don't see them, which
        // is exactly the staleness the model allows.
        assert!(set.insert(2, 2));
        assert_eq!(set.get(2), None);
        assert_eq!(set.stats().key_count, 2, "stats are the primary's");
        // An empty set degenerates to the primary.
        let lone = ReplicaSet::new(fresh(), vec![]);
        lone.insert(9, 9);
        assert_eq!(lone.get(9), Some(9));
    }
}
