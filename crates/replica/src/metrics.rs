//! Replication telemetry: change-log and follower-progress gauges plus the
//! derived lag metric, registered with the global `telemetry` registry.
//!
//! The gauges are process-global and last-writer-wins: with one live
//! replicated topology (how the server and benches deploy replication) they
//! read as *the* log's seqno and *the* most recent follower apply; with
//! several followers the applied gauge tracks whichever applied last, so
//! the derived `replica_follower_lag` is a lower bound on the laggiest
//! follower's staleness. Exact per-follower staleness percentiles stay in
//! `bench_service`'s sampling columns — the gauge is the cheap live signal.

use std::sync::Once;

use telemetry::{Counter, Gauge, Handle};

/// Replication-layer instruments (see module docs for gauge semantics).
pub struct ReplicaMetrics {
    /// Seqno of the most recent change-log append. Seqnos are dense from 1,
    /// so this is also the change-log's length.
    pub log_seqno: Gauge,
    /// Seqno of the most recent follower apply (any follower).
    pub follower_applied_seqno: Gauge,
    /// Total change-stream events applied by followers.
    pub events_applied: Counter,
}

static METRICS: ReplicaMetrics = ReplicaMetrics {
    log_seqno: Gauge::new(),
    follower_applied_seqno: Gauge::new(),
    events_applied: Counter::new(),
};

fn lag() -> u64 {
    METRICS.log_seqno.get().saturating_sub(METRICS.follower_applied_seqno.get())
}

static REGISTER: Once = Once::new();

/// The global replication instruments, registering them on first call.
#[inline]
pub fn metrics() -> &'static ReplicaMetrics {
    REGISTER.call_once(|| {
        telemetry::register("replica_log_seqno", Handle::Gauge(&METRICS.log_seqno));
        telemetry::register(
            "replica_follower_applied_seqno",
            Handle::Gauge(&METRICS.follower_applied_seqno),
        );
        telemetry::register("replica_follower_lag", Handle::Func(lag));
        telemetry::register(
            "replica_events_applied_total",
            Handle::Counter(&METRICS.events_applied),
        );
    });
    &METRICS
}
