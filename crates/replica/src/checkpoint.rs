//! The checkpoint snapshot and its on-disk format.

use std::io;
use std::path::Path;

use mapapi::{Key, Value};

/// File magic: the first four bytes of every checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"PCKP";

/// Current format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Fixed bytes around the sections: magic + version + seqno + section count
/// up front, FNV-1a checksum at the end.
const ENVELOPE_BYTES: usize = 4 + 4 + 8 + 4 + 8;

/// An exact snapshot of a replicated map: the change-stream sequence number
/// of the cut, plus one sorted `(key, value)` section per shard (a single
/// section for unsharded maps).
///
/// The binary format is length-prefixed throughout — every section carries
/// its pair count, so a reader never scans for terminators:
///
/// ```text
/// magic:    "PCKP"                      (4 bytes)
/// version:  u32 LE                      (currently 1)
/// seqno:    u64 LE                      (change-stream cut)
/// sections: u32 LE                      (section count)
/// per section:
///   count:  u64 LE
///   pairs:  count × (key u64 LE, value u64 LE)
/// checksum: u64 LE                      (FNV-1a over all preceding bytes)
/// ```
///
/// [`Checkpoint::decode`] verifies magic, version, the checksum, every
/// count against the remaining length, and that no trailing bytes follow —
/// corruption is always a `Result::Err`, never a panic or a silent
/// misparse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The change-stream sequence number this snapshot is exact at: the
    /// snapshot contains precisely the effects of events `1..=seqno`.
    pub seqno: u64,
    /// Per-shard sorted `(key, value)` runs.  Section boundaries are a
    /// storage detail: restore re-inserts every pair and recomputes shard
    /// ownership, so a checkpoint moves freely between shard counts.
    pub sections: Vec<Vec<(Key, Value)>>,
}

/// FNV-1a over a byte slice — same constants as `shard::fnv1a`, but over
/// the serialized stream rather than a single key.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Checkpoint {
    /// Total number of pairs across all sections.
    pub fn key_count(&self) -> u64 {
        self.sections.iter().map(|s| s.len() as u64).sum()
    }

    /// Serialize to the on-disk format (see the type docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let pairs: usize = self.sections.iter().map(Vec::len).sum();
        let mut buf = Vec::with_capacity(ENVELOPE_BYTES + self.sections.len() * 8 + pairs * 16);
        buf.extend_from_slice(&CHECKPOINT_MAGIC);
        buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.seqno.to_le_bytes());
        buf.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for section in &self.sections {
            buf.extend_from_slice(&(section.len() as u64).to_le_bytes());
            for &(k, v) in section {
                buf.extend_from_slice(&k.to_le_bytes());
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let checksum = fnv1a_bytes(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Parse a serialized checkpoint, rejecting any corruption with an
    /// error.  The checksum is verified before anything is parsed, and
    /// every count is bounds-checked against the remaining bytes before
    /// allocation — a garbage count cannot commit the reader to a huge
    /// allocation any more than a garbage frame length can commit the
    /// server to one.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, String> {
        if bytes.len() < ENVELOPE_BYTES {
            return Err(format!("checkpoint too short: {} bytes", bytes.len()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let computed = fnv1a_bytes(body);
        if stored != computed {
            return Err(format!("checkpoint checksum mismatch: stored {stored:#x}, computed {computed:#x}"));
        }
        if body[..4] != CHECKPOINT_MAGIC {
            return Err(format!("bad checkpoint magic {:?}", &body[..4]));
        }
        let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let seqno = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let section_count = u32::from_le_bytes(body[16..20].try_into().unwrap()) as usize;
        let mut rest = &body[20..];
        let mut sections = Vec::new();
        for i in 0..section_count {
            if rest.len() < 8 {
                return Err(format!("section {i}: truncated count"));
            }
            let count = u64::from_le_bytes(rest[..8].try_into().unwrap()) as usize;
            rest = &rest[8..];
            let Some(pair_bytes) = count.checked_mul(16).filter(|&n| n <= rest.len()) else {
                return Err(format!("section {i}: count {count} exceeds remaining {} bytes", rest.len()));
            };
            let mut pairs = Vec::with_capacity(count);
            for chunk in rest[..pair_bytes].chunks_exact(16) {
                let k = u64::from_le_bytes(chunk[..8].try_into().unwrap());
                let v = u64::from_le_bytes(chunk[8..].try_into().unwrap());
                pairs.push((k, v));
            }
            rest = &rest[pair_bytes..];
            sections.push(pairs);
        }
        if !rest.is_empty() {
            return Err(format!("{} trailing bytes after the last section", rest.len()));
        }
        Ok(Checkpoint { seqno, sections })
    }

    /// Write the serialized checkpoint to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Read and parse a checkpoint file; format errors surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_from(path: impl AsRef<Path>) -> io::Result<Checkpoint> {
        let bytes = std::fs::read(path)?;
        Checkpoint::decode(&bytes).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seqno: 42,
            sections: vec![vec![(1, 10), (5, 50)], vec![], vec![(2, 2)]],
        }
    }

    #[test]
    fn roundtrips_exactly() {
        for ckpt in [sample(), Checkpoint { seqno: 0, sections: vec![] }] {
            assert_eq!(Checkpoint::decode(&ckpt.encode()), Ok(ckpt));
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            // FNV-1a over the body catches every body flip; a flipped
            // checksum byte mismatches the recomputed body hash.
            assert!(Checkpoint::decode(&bad).is_err(), "flip at byte {i} must be rejected");
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..len]).is_err(), "prefix of {len} bytes");
        }
    }

    #[test]
    fn garbage_counts_do_not_allocate() {
        // A forged frame with a valid checksum but an absurd section count:
        // build it by hand so only the count is hostile.
        let mut body = Vec::new();
        body.extend_from_slice(&CHECKPOINT_MAGIC);
        body.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&u64::MAX.to_le_bytes()); // section "count"
        let mut bytes = body.clone();
        bytes.extend_from_slice(&fnv1a_bytes(&body).to_le_bytes());
        let err = Checkpoint::decode(&bytes).unwrap_err();
        assert!(err.contains("exceeds remaining"), "got: {err}");
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join(format!("replica-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ckpt");
        let ckpt = sample();
        ckpt.write_to(&path).unwrap();
        assert_eq!(Checkpoint::read_from(&path).unwrap(), ckpt);
        std::fs::write(&path, b"not a checkpoint").unwrap();
        assert_eq!(Checkpoint::read_from(&path).unwrap_err().kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
