//! The sequence-numbered change stream.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::event::Event;

/// An append-only, sequence-numbered log of committed mutations.
///
/// Sequence numbers start at 1 and are dense: event `s` sits at index
/// `s - 1`.  Readers address the log by "everything after seqno `after`",
/// which makes resumption trivial — a follower that has applied up to `s`
/// asks for `read_from(s, ..)` and can never skip or double-apply an event.
///
/// The log retains its full history so late subscribers (and the
/// crash-recovery path, which replays from a checkpoint's cut) can always
/// catch up; a long-lived deployment would truncate below the minimum
/// follower seqno, which the bounded bench/test runs here never need.
#[derive(Default)]
pub struct ChangeLog {
    events: Mutex<Vec<Event>>,
    grew: Condvar,
}

impl ChangeLog {
    /// An empty log (seqno 0).
    pub fn new() -> ChangeLog {
        ChangeLog::default()
    }

    /// Append one committed event; returns its sequence number.  Callers
    /// (the [`crate::ReplicatedMap`] mutation paths) hold the key's stripe
    /// lock across apply + append, which is what makes per-key log order
    /// equal per-key application order.
    pub(crate) fn append(&self, ev: Event) -> u64 {
        let mut events = self.events.lock().unwrap();
        events.push(ev);
        let seq = events.len() as u64;
        drop(events);
        crate::metrics::metrics().log_seqno.set(seq);
        self.grew.notify_all();
        seq
    }

    /// The sequence number of the most recent event (0 when empty).
    pub fn seqno(&self) -> u64 {
        self.events.lock().unwrap().len() as u64
    }

    /// Up to `max` events after seqno `after`, paired with their sequence
    /// numbers.  Empty when the log has nothing newer.
    pub fn read_from(&self, after: u64, max: usize) -> Vec<(u64, Event)> {
        Self::slice(&self.events.lock().unwrap(), after, max)
    }

    /// Like [`ChangeLog::read_from`], but blocks up to `timeout` for new
    /// events when nothing is newer than `after`.  May return empty on
    /// timeout — subscribers loop, re-checking their own stop conditions.
    pub fn wait_from(&self, after: u64, max: usize, timeout: Duration) -> Vec<(u64, Event)> {
        let mut events = self.events.lock().unwrap();
        if events.len() as u64 <= after {
            (events, _) = self.grew.wait_timeout(events, timeout).unwrap();
        }
        Self::slice(&events, after, max)
    }

    fn slice(events: &[Event], after: u64, max: usize) -> Vec<(u64, Event)> {
        let start = (after as usize).min(events.len());
        events[start..]
            .iter()
            .take(max)
            .enumerate()
            .map(|(i, &ev)| (after + 1 + i as u64, ev))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqnos_are_dense_from_one() {
        let log = ChangeLog::new();
        assert_eq!(log.seqno(), 0);
        assert!(log.read_from(0, 100).is_empty());
        assert_eq!(log.append(Event::Put(1, 1)), 1);
        assert_eq!(log.append(Event::Del(1)), 2);
        assert_eq!(log.append(Event::Set(2, 9)), 3);
        assert_eq!(log.seqno(), 3);
        let all = log.read_from(0, 100);
        assert_eq!(
            all,
            vec![(1, Event::Put(1, 1)), (2, Event::Del(1)), (3, Event::Set(2, 9))]
        );
        // Resumption addressing: everything after 2 is exactly event 3.
        assert_eq!(log.read_from(2, 100), vec![(3, Event::Set(2, 9))]);
        assert_eq!(log.read_from(3, 100), vec![]);
        // A reader ahead of the log (can only happen with a corrupted
        // resume point) gets nothing rather than a panic.
        assert_eq!(log.read_from(99, 100), vec![]);
        // `max` caps the batch.
        assert_eq!(log.read_from(0, 2).len(), 2);
    }

    #[test]
    fn wait_from_wakes_on_append() {
        let log = std::sync::Arc::new(ChangeLog::new());
        let waiter = {
            let log = log.clone();
            std::thread::spawn(move || log.wait_from(0, 10, Duration::from_secs(5)))
        };
        // Give the waiter a moment to block, then publish.
        std::thread::sleep(Duration::from_millis(20));
        log.append(Event::Put(5, 5));
        let got = waiter.join().unwrap();
        assert_eq!(got, vec![(1, Event::Put(5, 5))]);
        // And an already-satisfied wait returns immediately.
        assert_eq!(log.wait_from(0, 10, Duration::from_millis(1)).len(), 1);
    }
}
