//! The primary-side wrapper: apply + log under a per-key stripe lock.

use std::sync::{Arc, Mutex};

use mapapi::{ConcurrentMap, Key, MapStats, Value};
use shard::ShardedMap;

use crate::checkpoint::Checkpoint;
use crate::event::Event;
use crate::log::ChangeLog;

/// Stripe count: enough to keep 8–16 writer threads from colliding while a
/// full-table lock (the checkpoint cut) stays cheap.
const STRIPES: usize = 64;

/// Chunk size for checkpoint scans — matches the quiescent audit's chunking
/// so every chunk is far under the wire protocol's frame ceiling too.
const SNAPSHOT_CHUNK: usize = 4096;

/// What a [`ReplicatedMap`] wraps: either one structure or a sharded
/// composition (kept as the concrete type so checkpoints can snapshot each
/// shard as its own section).
enum Backing {
    /// A single structure; checkpoints have one section.
    Plain(Box<dyn ConcurrentMap>),
    /// A sharded composition; checkpoints have one section per shard.
    Sharded(ShardedMap),
}

impl Backing {
    fn map(&self) -> &dyn ConcurrentMap {
        match self {
            Backing::Plain(m) => &**m,
            Backing::Sharded(s) => s,
        }
    }
}

/// A [`ConcurrentMap`] that logs every committed mutation to a
/// [`ChangeLog`], giving followers a replayable, sequence-numbered history.
///
/// Mutations serialize per key through a small FNV-keyed stripe table: the
/// stripe lock is held across *apply to the inner structure* **and** *append
/// to the log*, so for any single key the log order equals the application
/// order — the property follower replay depends on.  Mutations on different
/// keys proceed in parallel on different stripes, and since same-key
/// operations are totally ordered while different-key operations commute,
/// replaying the log in sequence reproduces exactly the primary's state.
/// Reads and scans take no locks at all and keep the inner structure's full
/// concurrency (scans stay validated snapshots).
///
/// RMW is logged as its committed **post-value** ([`Event::Set`]); see the
/// [`Event`] docs for why closures cannot be replayed.
pub struct ReplicatedMap {
    name: &'static str,
    backing: Backing,
    stripes: Vec<Mutex<()>>,
    log: Arc<ChangeLog>,
}

impl ReplicatedMap {
    /// Wrap a single structure.
    pub fn new(inner: Box<dyn ConcurrentMap>) -> ReplicatedMap {
        let name = mapapi::intern_name(format!("repl({})", inner.name()));
        Self::build(name, Backing::Plain(inner))
    }

    /// Wrap a sharded composition; checkpoints snapshot each shard as its
    /// own section.
    pub fn from_sharded(inner: ShardedMap) -> ReplicatedMap {
        let name = mapapi::intern_name(format!("repl({})", inner.name()));
        Self::build(name, Backing::Sharded(inner))
    }

    fn build(name: &'static str, backing: Backing) -> ReplicatedMap {
        ReplicatedMap {
            name,
            backing,
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            log: Arc::new(ChangeLog::new()),
        }
    }

    /// The change stream fed by this map's mutations.
    pub fn log(&self) -> Arc<ChangeLog> {
        Arc::clone(&self.log)
    }

    fn stripe(&self, key: Key) -> &Mutex<()> {
        &self.stripes[(shard::fnv1a(key) % STRIPES as u64) as usize]
    }

    /// Append one committed mutation to the change log, recording the
    /// append as a `commit` span when the calling thread carries a sampled
    /// trace (the server sets one per sampled wire op).  Explicit
    /// timestamps, not a guard: the caller holds a stripe lock here, and
    /// span guards must never sit across lock-shaped calls.
    fn append_committed(&self, ev: Event) {
        match telemetry::trace::current() {
            None => {
                self.log.append(ev);
            }
            Some(t) => {
                let start = telemetry::trace::now_ns();
                self.log.append(ev);
                telemetry::trace::record_span(
                    t,
                    telemetry::trace::PHASE_COMMIT,
                    start,
                    telemetry::trace::now_ns().saturating_sub(start),
                    0,
                );
            }
        }
    }

    /// Take an exact checkpoint: every stripe locked (so no mutation is
    /// between apply and append), the log's seqno recorded, then one
    /// validated chunked scan per shard.  The result contains precisely the
    /// effects of events `1..=seqno` — the invariant crash recovery and
    /// follower bootstrap rely on.
    ///
    /// Readers are unaffected (they never touch the stripes); writers stall
    /// for the duration of the scans.
    pub fn checkpoint(&self) -> Checkpoint {
        let _cut: Vec<_> = self.stripes.iter().map(|s| s.lock().unwrap()).collect();
        let seqno = self.log.seqno();
        let sections = match &self.backing {
            Backing::Plain(m) => vec![snapshot(&**m)],
            Backing::Sharded(s) => s.shards().iter().map(|sh| snapshot(&**sh)).collect(),
        };
        Checkpoint { seqno, sections }
    }
}

/// Full sorted contents of one structure via chunked validated scans.
fn snapshot(map: &dyn ConcurrentMap) -> Vec<(Key, Value)> {
    let mut out = Vec::new();
    let mut start = 0u64;
    loop {
        let chunk = map.scan(start, SNAPSHOT_CHUNK);
        let n = chunk.len();
        let last = chunk.last().map(|&(k, _)| k);
        out.extend(chunk);
        match last {
            Some(k) if n == SNAPSHOT_CHUNK && k < u64::MAX => start = k + 1,
            _ => return out,
        }
    }
}

impl ConcurrentMap for ReplicatedMap {
    fn name(&self) -> &'static str {
        self.name
    }

    fn insert(&self, key: Key, value: Value) -> bool {
        let _g = self.stripe(key).lock().unwrap();
        let inserted = self.backing.map().insert(key, value);
        if inserted {
            self.append_committed(Event::Put(key, value));
        }
        inserted
    }

    fn remove(&self, key: Key) -> bool {
        let _g = self.stripe(key).lock().unwrap();
        let removed = self.backing.map().remove(key);
        if removed {
            self.append_committed(Event::Del(key));
        }
        removed
    }

    fn contains(&self, key: Key) -> bool {
        self.backing.map().contains(key)
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.backing.map().get(key)
    }

    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        let _g = self.stripe(key).lock().unwrap();
        let was_present = self.backing.map().rmw(key, update);
        // The stripe lock makes this thread the only writer of `key`, so
        // the read-back is exactly the value the rmw committed.
        let committed = self
            .backing
            .map()
            .get(key)
            .expect("rmw must leave the key present");
        self.append_committed(Event::Set(key, committed));
        was_present
    }

    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        self.backing.map().scan(start, len)
    }

    fn stats(&self) -> MapStats {
        self.backing.map().stats()
    }

    fn shard_count(&self) -> usize {
        self.backing.map().shard_count()
    }

    fn shard_of(&self, key: Key) -> usize {
        self.backing.map().shard_of(key)
    }

    fn shard_stats(&self) -> Vec<MapStats> {
        self.backing.map().shard_stats()
    }

    fn shard_loads(&self) -> Vec<mapapi::ShardLoad> {
        self.backing.map().shard_loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::reference::LockedBTreeMap;

    fn plain() -> ReplicatedMap {
        ReplicatedMap::new(Box::new(LockedBTreeMap::new()))
    }

    #[test]
    fn only_committed_mutations_are_logged() {
        let m = plain();
        assert_eq!(m.name(), "repl(locked-btreemap)");
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11), "duplicate insert must not log");
        assert!(!m.remove(2), "no-op remove must not log");
        assert!(m.remove(1));
        assert!(!m.rmw(3, &mut |v| v.unwrap_or(0) + 5));
        let log = m.log();
        assert_eq!(
            log.read_from(0, 100),
            vec![(1, Event::Put(1, 10)), (2, Event::Del(1)), (3, Event::Set(3, 5))]
        );
    }

    #[test]
    fn rmw_logs_the_committed_post_value() {
        let m = plain();
        m.insert(7, 7);
        assert!(m.rmw(7, &mut |v| v.unwrap() * 3));
        assert_eq!(m.log().read_from(1, 10), vec![(2, Event::Set(7, 21))]);
        assert_eq!(m.get(7), Some(21));
    }

    #[test]
    fn checkpoint_is_an_exact_cut_per_shard() {
        let m = ReplicatedMap::from_sharded(ShardedMap::from_fn(4, |_| {
            Box::new(LockedBTreeMap::new()) as Box<dyn ConcurrentMap>
        }));
        for k in 1..=100u64 {
            assert!(m.insert(k, k * 2));
        }
        let ckpt = m.checkpoint();
        assert_eq!(ckpt.seqno, 100);
        assert_eq!(ckpt.sections.len(), 4);
        assert_eq!(ckpt.key_count(), 100);
        let mut all: Vec<(Key, Value)> = ckpt.sections.concat();
        all.sort_unstable();
        assert_eq!(all, (1..=100u64).map(|k| (k, k * 2)).collect::<Vec<_>>());
        // Sections really are per shard: each sorted, none holding all keys.
        for s in &ckpt.sections {
            assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(s.len() < 100);
        }
    }

    #[test]
    fn concurrent_per_key_log_order_matches_final_state() {
        // Hammer a small key set from several threads, then replay the log
        // into a fresh map: it must land on the primary's exact state.
        let m = std::sync::Arc::new(plain());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = m.clone();
                s.spawn(move || {
                    let mut x = 0x9E37 + t;
                    for _ in 0..2000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let k = 1 + x % 16;
                        match x % 3 {
                            0 => drop(m.insert(k, x >> 8 & 0xFFFF)),
                            1 => drop(m.remove(k)),
                            _ => drop(m.rmw(k, &mut |v| v.unwrap_or(0).wrapping_add(1))),
                        }
                    }
                });
            }
        });
        let replayed = LockedBTreeMap::new();
        for (_, ev) in m.log().read_from(0, usize::MAX) {
            match ev {
                Event::Put(k, v) => assert!(replayed.insert(k, v)),
                Event::Del(k) => assert!(replayed.remove(k)),
                Event::Set(k, v) => drop(replayed.rmw(k, &mut |_| v)),
            }
        }
        assert_eq!(snapshot(&replayed), snapshot(&*m));
    }
}
