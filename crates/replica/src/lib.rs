//! # replica — checkpoints, change stream, and read-only followers
//!
//! Replication built directly on the workspace's validated-scan primitive:
//! because every structure (and every shard of a [`shard::ShardedMap`])
//! answers `scan` with an atomic snapshot, a **checkpoint** is nothing more
//! than a per-shard chunked scan taken at a known sequence number, and a
//! **follower** is a fresh structure that loads a checkpoint and replays the
//! sequence-numbered **change stream** from that point on.  Three pieces:
//!
//! * [`ReplicatedMap`] — wraps any [`mapapi::ConcurrentMap`] (plain or
//!   sharded), serializes mutations per key through a small stripe-lock
//!   table, and appends every *committed* mutation to a [`ChangeLog`] while
//!   the stripe is still held — so for any single key the log order **is**
//!   the application order.  Reads and scans bypass the stripes entirely and
//!   stay as concurrent as the inner structure allows.
//! * [`Checkpoint`] — an exact cut: all stripes locked, the log's sequence
//!   number recorded, then one validated chunked scan per shard.  Encodes to
//!   a length-prefixed binary file format (magic `PCKP`, per-section pair
//!   counts, trailing FNV-1a checksum) that [`Checkpoint::decode`] rejects
//!   with an error — never a panic — on any corruption.
//! * [`Follower`] — bootstraps a fresh structure from a checkpoint and
//!   applies stream events strictly in sequence, so its state after event
//!   `s` is *exactly* the primary's per-key history up to `s`; any atomic
//!   scan of a follower therefore observes a consistent prefix of the
//!   primary's history.  [`ReplicaSet`] fans reads out across followers
//!   round-robin while routing writes to the primary — the `read-replica`
//!   workload scenario drives exactly that split.
//!
//! The wire half (a `SUBSCRIBE` verb streaming [`Event`] frames, and a
//! read-only server mode for followers) lives in the `server` crate;
//! DESIGN.md §9 has the format tables and the ordering argument.

#![warn(missing_docs)]

mod checkpoint;
mod event;
mod follower;
mod log;
mod map;
pub mod metrics;
pub(crate) mod sync;

pub use checkpoint::{Checkpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use event::{Event, EVENT_WIRE_BYTES};
pub use follower::{tail_log, Follower, ReplicaSet};
pub use log::ChangeLog;
pub use map::ReplicatedMap;
