//! # shard — the sharded composition layer
//!
//! [`ShardedMap`] composes N inner [`ConcurrentMap`] instances into one map
//! by hash-partitioning the key space: every key is owned by exactly one
//! shard (FNV-1a of the key, modulo the shard count), so point operations —
//! `get`, `insert`, `remove`, `contains`, `rmw` — delegate to the owning
//! shard with **no cross-shard coordination** and inherit that shard's
//! linearizability unchanged.  This is the classic route past a single
//! structure instance's scalability ceiling: N independent synchronization
//! domains, N independent KCAS/validation hot paths, and (on the PathCAS
//! trees) N shallower trees.
//!
//! Ordered semantics survive partitioning through the scan path:
//! [`ShardedMap::scan`] asks every shard for its first `len` keys ≥ `start`
//! (each a validated per-shard snapshot on the PathCAS structures) and
//! k-way-merges the sorted runs, keeping the globally smallest `len` keys.
//! Because every key is owned by exactly one shard the merge can never
//! produce duplicates, and because each per-shard run is itself sorted and
//! complete-for-that-shard, the merged prefix is exactly the global answer
//! at quiescence.  Under concurrency the result is a *composition of
//! per-shard atomic snapshots* taken at slightly different times — the same
//! relaxation the `hashmap-pathcas` per-bucket merge documents — rather
//! than one global snapshot.  DESIGN.md §8 spells out the argument.
//!
//! Shards may be different algorithms (`stats` aggregation and the scan
//! merge only rely on the trait), which the mixed-shard tests exercise; the
//! harness registry's `shardN(inner)` names build homogeneous instances.

#![warn(missing_docs)]

use mapapi::{ConcurrentMap, Key, MapStats, ShardLoad, Value};
use telemetry::Counter;

/// 64-bit FNV-1a over the key's little-endian bytes — cheap, deterministic,
/// and unrelated to the FNV *rank scrambling* the workload samplers use, so
/// skewed scenarios don't accidentally align their hot set with one shard.
///
/// Public because the replication layer reuses the same canonical key hash
/// for its mutation-serializing stripes.
#[inline]
pub fn fnv1a(key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A [`ConcurrentMap`] hash-partitioned over N inner maps.
///
/// See the crate docs for the partitioning and scan-merge semantics.
pub struct ShardedMap {
    name: &'static str,
    shards: Vec<Box<dyn ConcurrentMap>>,
    /// Per-shard cumulative point-op counts (insert/remove/contains/get/rmw
    /// routed to the shard). Striped wait-free counters: routing stays on
    /// the zero-allocation warm path and scales with writer threads.
    point_ops: Vec<Counter>,
    /// Per-shard scan-visit counts (each k-way-merged scan touches every
    /// shard once).
    scan_ops: Vec<Counter>,
}

impl ShardedMap {
    /// Compose `shards` into one map.  The name is derived canonically:
    /// `shardN(inner)` when every shard reports the same name, otherwise
    /// `shardN(mixed)`.
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<Box<dyn ConcurrentMap>>) -> Self {
        assert!(!shards.is_empty(), "ShardedMap needs at least one shard");
        let first = shards[0].name();
        let inner = if shards.iter().all(|s| s.name() == first) { first } else { "mixed" };
        let name = mapapi::intern_name(format!("shard{}({})", shards.len(), inner));
        let point_ops = (0..shards.len()).map(|_| Counter::new()).collect();
        let scan_ops = (0..shards.len()).map(|_| Counter::new()).collect();
        ShardedMap { name, shards, point_ops, scan_ops }
    }

    /// Build `n` shards from a factory (`build` receives the shard index).
    pub fn from_fn(n: usize, mut build: impl FnMut(usize) -> Box<dyn ConcurrentMap>) -> Self {
        Self::new((0..n).map(&mut build).collect())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The composed shards in index order (shard `i` owns the keys with
    /// `fnv1a(k) % n == i`).  The replication layer checkpoints each shard's
    /// validated snapshot as its own section through this.
    pub fn shards(&self) -> &[Box<dyn ConcurrentMap>] {
        &self.shards
    }

    /// The index of the shard owning `key`.
    #[inline]
    fn owner_idx(&self, key: Key) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// The shard owning `key`, counting the routed point op.
    #[inline]
    fn owner(&self, key: Key) -> &dyn ConcurrentMap {
        let i = self.owner_idx(key);
        self.point_ops[i].inc();
        &*self.shards[i]
    }
}

impl ConcurrentMap for ShardedMap {
    fn name(&self) -> &'static str {
        self.name
    }

    fn insert(&self, key: Key, value: Value) -> bool {
        self.owner(key).insert(key, value)
    }

    fn remove(&self, key: Key) -> bool {
        self.owner(key).remove(key)
    }

    fn contains(&self, key: Key) -> bool {
        self.owner(key).contains(key)
    }

    fn get(&self, key: Key) -> Option<Value> {
        self.owner(key).get(key)
    }

    fn rmw(&self, key: Key, update: &mut dyn FnMut(Option<Value>) -> Value) -> bool {
        // Single-key, single-owner: the inner structure's atomicity (or its
        // documented composed default) carries over unchanged.
        self.owner(key).rmw(key, update)
    }

    fn scan(&self, start: Key, len: usize) -> Vec<(Key, Value)> {
        if len == 0 {
            return Vec::new();
        }
        // Per-shard validated snapshots: each run is sorted and holds that
        // shard's first `len` keys >= start, so the global first `len` keys
        // are contained in the union of the runs.
        let runs: Vec<Vec<(Key, Value)>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                self.scan_ops[i].inc();
                s.scan(start, len)
            })
            .collect();
        // k-way merge of the sorted runs; keys are disjoint across shards,
        // so ties cannot occur and the output is duplicate-free.
        let mut heads = vec![0usize; runs.len()];
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let mut best: Option<usize> = None;
            for (i, run) in runs.iter().enumerate() {
                if heads[i] < run.len()
                    && best.is_none_or(|b| run[heads[i]].0 < runs[b][heads[b]].0)
                {
                    best = Some(i);
                }
            }
            match best {
                Some(i) => {
                    out.push(runs[i][heads[i]]);
                    heads[i] += 1;
                }
                None => break, // every run exhausted
            }
        }
        out
    }

    fn stats(&self) -> MapStats {
        // Aggregation over quiescent per-shard traversals; `key_depth_sum`
        // sums each key's depth *within its own shard* (N shallow trees, not
        // one deep one — exactly what the sharding buys).  The per-shard
        // breakdown this sums over is public as `shard_stats()`.
        let mut agg = MapStats::default();
        for st in self.shard_stats() {
            agg.key_count += st.key_count;
            agg.key_sum += st.key_sum;
            agg.node_count += st.node_count;
            agg.key_depth_sum += st.key_depth_sum;
            agg.approx_bytes += st.approx_bytes;
        }
        agg
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: Key) -> usize {
        self.owner_idx(key)
    }

    fn shard_stats(&self) -> Vec<MapStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.point_ops
            .iter()
            .zip(&self.scan_ops)
            .map(|(p, s)| ShardLoad { point_ops: p.get(), scan_ops: s.get() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::reference::LockedBTreeMap;

    fn oracle_shards(n: usize) -> ShardedMap {
        ShardedMap::from_fn(n, |_| Box::new(LockedBTreeMap::new()))
    }

    #[test]
    fn name_is_canonical_and_interned() {
        let a = oracle_shards(4);
        assert_eq!(a.name(), "shard4(locked-btreemap)");
        let b = oracle_shards(4);
        assert!(std::ptr::eq(a.name(), b.name()), "same name must be interned once");
        assert_eq!(a.shard_count(), 4);
    }

    #[test]
    fn mixed_shards_get_the_mixed_name() {
        let m = ShardedMap::new(vec![
            Box::new(LockedBTreeMap::new()),
            Box::new(pathcas_ds::PathCasBst::new()),
        ]);
        assert_eq!(m.name(), "shard2(mixed)");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedMap::new(Vec::new());
    }

    #[test]
    fn keys_route_to_exactly_one_shard() {
        let m = oracle_shards(8);
        for k in 1..=512u64 {
            assert!(m.insert(k, k * 2));
            assert!(!m.insert(k, k * 3), "duplicate insert must fail through the owner");
        }
        // Every key present exactly once in the aggregate.
        let s = m.stats();
        assert_eq!(s.key_count, 512);
        assert_eq!(s.key_sum, (1..=512u128).sum::<u128>());
        // The hash actually spreads keys: no shard owns everything.
        assert!(m.shards.iter().all(|sh| sh.stats().key_count < 512));
        for k in 1..=512u64 {
            assert_eq!(m.get(k), Some(k * 2));
            assert!(m.remove(k));
            assert!(!m.remove(k));
        }
        assert_eq!(m.stats().key_count, 0);
    }

    #[test]
    fn single_shard_degenerates_to_the_inner_map() {
        let m = oracle_shards(1);
        assert_eq!(m.name(), "shard1(locked-btreemap)");
        for k in [5u64, 1, 3] {
            m.insert(k, k);
        }
        assert_eq!(m.scan(1, 10), vec![(1, 1), (3, 3), (5, 5)]);
    }

    #[test]
    fn per_shard_stats_and_loads_sum_to_the_aggregate() {
        let m = oracle_shards(4);
        for k in 1..=256u64 {
            m.insert(k, k); // 256 point ops
        }
        for k in 1..=256u64 {
            assert_eq!(m.get(k), Some(k)); // 256 more
        }
        let _ = m.scan(1, 16); // one scan visit per shard

        // shard_stats: the per-shard breakdown sums exactly to stats().
        let per = m.shard_stats();
        assert_eq!(per.len(), 4);
        let agg = m.stats();
        assert_eq!(per.iter().map(|s| s.key_count).sum::<u64>(), agg.key_count);
        assert_eq!(per.iter().map(|s| s.key_sum).sum::<u128>(), agg.key_sum);
        assert!(per.iter().all(|s| s.key_count > 0), "FNV-1a must spread 256 keys: {per:?}");

        // shard_loads: per-shard point ops sum to the total routed, and the
        // scan visited every shard exactly once.
        let loads = ConcurrentMap::shard_loads(&m);
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().map(|l| l.point_ops).sum::<u64>(), 512);
        assert!(loads.iter().all(|l| l.scan_ops == 1), "{loads:?}");

        // shard_of agrees with where the keys actually landed: replaying the
        // ownership map reproduces each shard's key count.
        let mut owned = [0u64; 4];
        for k in 1..=256u64 {
            owned[ConcurrentMap::shard_of(&m, k)] += 1;
        }
        for (i, st) in per.iter().enumerate() {
            assert_eq!(owned[i], st.key_count, "shard {i}");
        }

        // The trait defaults on an unsharded structure: one shard, untracked
        // loads.
        let plain = LockedBTreeMap::new();
        assert_eq!(ConcurrentMap::shard_count(&plain), 1);
        assert_eq!(ConcurrentMap::shard_of(&plain, 99), 0);
        assert_eq!(plain.shard_stats().len(), 1);
        assert!(plain.shard_loads().is_empty());
    }

    #[test]
    fn rmw_delegates_to_the_owning_shard() {
        let m = oracle_shards(4);
        assert!(!m.rmw(9, &mut |v| v.unwrap_or(0) + 7));
        assert_eq!(m.get(9), Some(7));
        assert!(m.rmw(9, &mut |v| v.unwrap_or(0) + 7));
        assert_eq!(m.get(9), Some(14));
    }
}
