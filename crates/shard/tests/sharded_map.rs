//! The full `mapapi` suite battery over sharded compositions — homogeneous
//! PathCAS shards, oracle shards, and a deliberately mixed set — plus the
//! dedicated cross-shard-boundary scan tests: the k-way merge must return
//! globally sorted, duplicate-free results no matter how the keys scatter
//! over the shards.

use mapapi::reference::LockedBTreeMap;
use mapapi::suites::*;
use mapapi::ConcurrentMap;
use shard::ShardedMap;

fn sharded_avl(n: usize) -> ShardedMap {
    ShardedMap::from_fn(n, |_| Box::new(pathcas_ds::PathCasAvl::new()))
}

fn sharded_oracle(n: usize) -> ShardedMap {
    ShardedMap::from_fn(n, |_| Box::new(LockedBTreeMap::new()))
}

/// Shards of four different algorithms: the aggregation and the scan merge
/// only rely on the `ConcurrentMap` trait, so a heterogeneous composition
/// must behave identically to a homogeneous one.
fn sharded_mixed() -> ShardedMap {
    ShardedMap::new(vec![
        Box::new(pathcas_ds::PathCasAvl::new()),
        Box::new(pathcas_ds::PathCasBst::new()),
        Box::new(baselines::TicketBst::new()),
        Box::new(LockedBTreeMap::new()),
    ])
}

#[test]
fn sharded_maps_pass_basic_semantics() {
    check_basic_semantics(&sharded_avl(8));
    check_basic_semantics(&sharded_oracle(3));
    check_basic_semantics(&sharded_mixed());
}

#[test]
fn sharded_maps_pass_ordered_patterns() {
    check_ordered_patterns(&sharded_avl(8));
    check_ordered_patterns(&sharded_mixed());
}

#[test]
fn sharded_maps_match_the_oracle() {
    check_random_against_oracle(&sharded_avl(8), 3000, 96, 0x5A4D);
    check_stats_consistency(&sharded_avl(8), 96);
    check_random_against_oracle(&sharded_mixed(), 3000, 96, 0x5A4E);
}

#[test]
fn sharded_maps_pass_scan_semantics() {
    check_scan_semantics(&sharded_avl(8));
    check_scan_semantics(&sharded_oracle(5));
    check_scan_semantics(&sharded_mixed());
}

#[test]
fn sharded_scans_match_the_oracle() {
    check_scan_against_oracle(&sharded_avl(8), 128, 0xD1FF);
    check_scan_against_oracle(&sharded_mixed(), 128, 0xD200);
}

/// The dedicated cross-shard case: dense and sparse key sets whose scans
/// must cross shard boundaries constantly — with 8 shards and FNV routing,
/// consecutive keys land on different shards, so every merged window is
/// assembled from several runs.  Asserts global sortedness, duplicate
/// freedom, and exact agreement with the expected window.
#[test]
fn cross_shard_scans_are_sorted_and_duplicate_free() {
    let m = sharded_avl(8);
    let n: u64 = 2_000;
    for k in 1..=n {
        assert!(m.insert(k, k * 10));
    }
    for (start, len) in [(1u64, 64usize), (137, 100), (n - 50, 200), (1, n as usize + 10)] {
        let got = m.scan(start, len);
        // Strictly ascending keys <=> sorted AND duplicate-free.
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0, "scan({start},{len}) not strictly sorted: {w:?}");
        }
        let expected: Vec<(u64, u64)> =
            (start.max(1)..=n).take(len).map(|k| (k, k * 10)).collect();
        assert_eq!(got, expected, "scan({start},{len}) window mismatch");
    }
    // Sparse keys: gaps force the merge to resume past exhausted runs.
    let sparse = sharded_avl(8);
    let keys: Vec<u64> = (1..=600u64).map(|i| i * 7 + (i % 5)).collect();
    for &k in &keys {
        sparse.insert(k, k);
    }
    let got = sparse.scan(50, 300);
    for w in got.windows(2) {
        assert!(w[0].0 < w[1].0, "sparse scan not strictly sorted: {w:?}");
    }
    let mut expected: Vec<u64> = keys.iter().copied().filter(|&k| k >= 50).collect();
    expected.sort_unstable();
    expected.truncate(300);
    assert_eq!(got.iter().map(|&(k, _)| k).collect::<Vec<_>>(), expected);
}

/// The chunked quiescent audit (the harness runs this after every scan
/// trial) must hold across shards too.
#[test]
fn sharded_full_scan_agrees_with_stats() {
    let m = sharded_avl(4);
    for k in (1..=5_000u64).filter(|k| k % 3 != 0) {
        m.insert(k, k);
    }
    check_scan_matches_stats(&m, &m.stats());
}

/// Multi-threaded keysum validation (Setbench methodology) over the
/// composition: per-shard linearizability must compose for point ops.
#[test]
fn sharded_map_passes_keysum_stress() {
    let m = sharded_avl(8);
    mapapi::stress::prefill(&m, 256, 128, 11);
    mapapi::stress::stress_keysum(&m, 4, 256, 50, std::time::Duration::from_millis(150), 0xABBA);
}
