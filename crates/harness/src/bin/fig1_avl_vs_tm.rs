//! Figure 1: AVL trees using PathCAS vs state-of-the-art transactional
//! memory. 10% updates, 1M-key trees (scaled by PATHCAS_KEYRANGE_SCALE),
//! thread sweep; values are millions of operations per second.
//!
//! The paper's Intel HTM-assisted variants (int-avl-pathcas+, hynorec,
//! rhnorec) are not reproducible without HTM; the software algorithms carry
//! the comparison (see DESIGN.md §4).

use harness::{print_throughput_table, run_trials, Config, Workload};

fn main() {
    let cfg = Config::from_env();
    let key_range = cfg.scaled_keyrange(2_000_000);
    let algos = ["int-avl-pathcas", "int-avl-norec", "int-avl-tl2", "int-avl-tle"];
    let mut rows = Vec::new();
    for name in algos {
        let mut summaries = Vec::new();
        for &threads in &cfg.threads {
            let w = Workload::paper(key_range, 10, threads, cfg.duration).with_seed(cfg.seed);
            let s = run_trials(|| harness::make(name), &w, cfg.trials);
            summaries.push(s);
        }
        rows.push((name.to_string(), summaries));
    }
    print_throughput_table(
        &format!("Figure 1 — AVL on PathCAS vs TM (10% updates, {key_range} keys)"),
        &cfg.threads,
        &rows,
    );
}
