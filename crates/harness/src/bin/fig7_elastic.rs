//! Figure 7 / Figure 15: elastic-transaction ("speculation-friendly") tree vs
//! a handcrafted tree at 1% updates on a large key range. Elastic STM is not
//! reproduced; its role — a transaction-structured tree losing badly to a
//! handcrafted tree even in a read-mostly workload — is played by the NOrec
//! transactional BST, compared against the handcrafted external BST and the
//! PathCAS BST (DESIGN.md §4).

use harness::{print_throughput_table, run_trials, Config, Workload};

fn main() {
    let cfg = Config::from_env();
    let key_range = cfg.scaled_keyrange(20_000_000);
    let algos = ["ext-bst-locks", "int-bst-pathcas", "int-bst-norec"];
    let mut rows = Vec::new();
    for name in algos {
        let mut summaries = Vec::new();
        for &threads in &cfg.threads {
            let w = Workload::paper(key_range, 1, threads, cfg.duration).with_seed(cfg.seed);
            summaries.push(run_trials(|| harness::make(name), &w, cfg.trials));
        }
        rows.push((name.to_string(), summaries));
    }
    print_throughput_table(
        &format!("Figure 7 — transaction-structured tree vs handcrafted trees (1% updates, {key_range} keys)"),
        &cfg.threads,
        &rows,
    );
}
