//! Figure 3 (top row): unbalanced BSTs at 1%, 10% and 100% updates.
//!
//! The paper's AMD runs use 20M-key ranges; PATHCAS_KEYRANGE_SCALE shrinks
//! them to fit this machine. Of the handcrafted unbalanced baselines, the
//! ASCY-style ext-bst-locks tree is reproduced; the Ellen et al. and
//! Natarajan-Mittal lock-free external BSTs are not (DESIGN.md §4).

use harness::{print_throughput_table, run_trials, Config, Workload};

fn main() {
    let cfg = Config::from_env();
    let key_range = cfg.scaled_keyrange(20_000_000);
    let algos = ["int-bst-pathcas", "ext-bst-locks", "int-bst-norec"];
    for update_percent in [1u32, 10, 100] {
        let mut rows = Vec::new();
        for name in algos {
            let mut summaries = Vec::new();
            for &threads in &cfg.threads {
                let w = Workload::paper(key_range, update_percent, threads, cfg.duration).with_seed(cfg.seed);
                summaries.push(run_trials(|| harness::make(name), &w, cfg.trials));
            }
            rows.push((name.to_string(), summaries));
        }
        print_throughput_table(
            &format!("Figure 3 (top) — unbalanced BSTs, {update_percent}% updates, {key_range} keys"),
            &cfg.threads,
            &rows,
        );
    }
}
