//! Figure 6: an internal BST implemented with PathCAS vs the same tree
//! implemented with MCMS (software path), on a 100k-key tree, for a 100%
//! update and a 100% search workload. The HTM-assisted MCMS+ variant is not
//! reproducible without HTM; MCMS- (the software path) is the comparison
//! that exists on the paper's AMD machine as well.

use harness::{print_throughput_table, run_trials, Config, Workload};

fn main() {
    let cfg = Config::from_env();
    let key_range = cfg.scaled_keyrange(100_000).max(10_000);
    let algos = ["int-bst-pathcas", "int-bst-mcms"];
    for (label, update_percent) in [("100% update", 100u32), ("100% search", 0u32)] {
        let mut rows = Vec::new();
        for name in algos {
            let mut summaries = Vec::new();
            for &threads in &cfg.threads {
                let w = Workload::paper(key_range, update_percent, threads, cfg.duration).with_seed(cfg.seed);
                summaries.push(run_trials(|| harness::make(name), &w, cfg.trials));
            }
            rows.push((name.to_string(), summaries));
        }
        print_throughput_table(
            &format!("Figure 6 — PathCAS vs MCMS, {label}, {key_range} keys"),
            &cfg.threads,
            &rows,
        );
    }
}
