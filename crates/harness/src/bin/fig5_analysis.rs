//! Figure 5: detailed analysis of the 100% update workload at the maximum
//! thread count — throughput plus structural metrics. Hardware performance
//! counters (LLC misses, cycles, instructions) are replaced by the software
//! proxies recorded in DESIGN.md §4: average key depth, node count and
//! approximate resident memory, which are the quantities the paper uses the
//! counters to explain.

use harness::{run_trial, Config, Workload};

fn main() {
    let cfg = Config::from_env();
    let key_range = cfg.scaled_keyrange(20_000_000);
    let threads = *cfg.threads.iter().max().unwrap_or(&4);
    let algos = [
        "int-bst-pathcas",
        "ext-bst-locks",
        "int-avl-pathcas",
        "int-avl-norec",
        "int-avl-tl2",
        "int-bst-mcms",
    ];
    println!("\n## Figure 5 — detailed analysis (100% updates, {threads} threads, {key_range} keys)");
    println!("| algorithm | Mops/s | avg key depth | keys | nodes | approx MiB |");
    println!("|---|---|---|---|---|---|");
    for name in algos {
        let map = harness::make(name);
        let w = Workload::paper(key_range, 100, threads, cfg.duration).with_seed(cfg.seed);
        let r = run_trial(&map, &w);
        let s = map.stats();
        println!(
            "| {name} | {:.3} | {:.2} | {} | {} | {:.2} |",
            r.mops(),
            s.avg_key_depth(),
            s.key_count,
            s.node_count,
            s.approx_bytes as f64 / (1024.0 * 1024.0),
        );
    }
}
