//! Descriptor-reuse microbenchmark (DESIGN.md §3, README "Reproducing the
//! descriptor-reuse speedup").
//!
//! Measures the same workload — each thread performs random 4-word KCAS
//! increments over a shared array — through both publication paths:
//!
//! * **reuse**: the pooled fast path (`kcas::execute`), which recycles
//!   per-thread descriptor slots and performs zero per-operation heap
//!   allocations;
//! * **alloc**: the legacy baseline (`kcas::execute_alloc`), which
//!   heap-allocates a descriptor per operation and retires it through the
//!   epoch collector.
//!
//! The binary runs under a counting global allocator and *asserts* that the
//! reuse arm allocates nothing inside the timed region, then writes the
//! alloc-vs-reuse throughput comparison to `BENCH_descriptor_reuse.json`
//! (override the path with `PATHCAS_BENCH_JSON`).  Thread counts, trial
//! duration and trial count follow the usual `PATHCAS_*` knobs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use harness::alloc_count::{heap_allocations, CountingAllocator};
use harness::Config;
use kcas::{CasWord, KcasArg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Number of shared words the workload spreads its operations over.
const WORDS: usize = 1024;
/// Width of each multi-word CAS.
const K: usize = 4;

#[derive(Clone, Copy)]
enum Arm {
    Reuse,
    Alloc,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Reuse => "reuse",
            Arm::Alloc => "alloc",
        }
    }
}

struct TrialOutcome {
    ops: u64,
    successes: u64,
    allocations: u64,
    elapsed_secs: f64,
}

/// One fixed-duration trial: `threads` workers hammer the shared array, the
/// allocation counter is sampled strictly inside the barrier-delimited
/// region (thread-exit bookkeeping happens outside it).
fn run_trial(arm: Arm, threads: usize, cfg: &Config) -> TrialOutcome {
    let base_seed = cfg.seed;
    let words: Vec<CasWord> = (0..WORDS).map(|_| CasWord::new(0)).collect();
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(threads + 1);
    let end_barrier = Barrier::new(threads + 1);
    let exit_barrier = Barrier::new(threads + 1);
    let (ops, successes, allocations, elapsed) = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let words = &words;
            let stop = &stop;
            let start_barrier = &start_barrier;
            let end_barrier = &end_barrier;
            let exit_barrier = &exit_barrier;
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(base_seed ^ 0xDE5C ^ ((t as u64) << 20));
                // Warm up this thread's descriptor pool, epoch participant
                // record and rng before the measured region.
                for _ in 0..64 {
                    one_op(arm, words, &mut rng);
                }
                start_barrier.wait();
                let mut ops = 0u64;
                let mut successes = 0u64;
                // ORDERING: Relaxed — a stop flag polled in a loop; the end
                // barrier below provides the actual synchronization.
                while !stop.load(Ordering::Relaxed) {
                    ops += 1;
                    if one_op(arm, words, &mut rng) {
                        successes += 1;
                    }
                }
                end_barrier.wait();
                // Hold every worker here until the main thread has sampled
                // the allocation counter: thread teardown (TLS destructors
                // returning pool slots, epoch deregistration) allocates, and
                // must not land inside the measured window.
                exit_barrier.wait();
                (ops, successes)
            }));
        }
        start_barrier.wait();
        let allocs_before = heap_allocations();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        // ORDERING: Relaxed — pairs with the Relaxed poll above; workers
        // rendezvous at `end_barrier` for real synchronization.
        stop.store(true, Ordering::Relaxed);
        end_barrier.wait();
        // Every worker has finished its loop and is parked at exit_barrier.
        let elapsed = start.elapsed().as_secs_f64();
        let allocs_after = heap_allocations();
        exit_barrier.wait();
        let mut ops = 0u64;
        let mut successes = 0u64;
        for h in handles {
            let (o, s_) = h.join().expect("worker panicked");
            ops += o;
            successes += s_;
        }
        (ops, successes, allocs_after - allocs_before, elapsed)
    });
    TrialOutcome { ops, successes, allocations, elapsed_secs: elapsed }
}

/// One 4-word KCAS increment over random distinct indices. Returns success.
fn one_op(arm: Arm, words: &[CasWord], rng: &mut StdRng) -> bool {
    let guard = crossbeam_epoch::pin();
    let mut idx = [0usize; K];
    for i in 0..K {
        loop {
            let cand = rng.gen_range(0..words.len());
            if !idx[..i].contains(&cand) {
                idx[i] = cand;
                break;
            }
        }
    }
    let mut args = [KcasArg { addr: &words[0], old: 0, new: 0 }; K];
    for (arg, &i) in args.iter_mut().zip(idx.iter()) {
        let old = kcas::read(&words[i], &guard);
        *arg = KcasArg { addr: &words[i], old, new: old + 1 };
    }
    match arm {
        Arm::Reuse => kcas::execute(&args, &[], &guard),
        Arm::Alloc => kcas::execute_alloc(&args, &[], &guard),
    }
}

struct Row {
    threads: usize,
    reuse_mops: f64,
    alloc_mops: f64,
    reuse_allocs_per_op: f64,
    alloc_allocs_per_op: f64,
    reuse_success_rate: f64,
}

fn main() {
    let cfg = Config::from_env();
    println!("# descriptor-reuse microbenchmark");
    println!(
        "workload: {K}-word KCAS increments over {WORDS} shared words, \
         {} trial(s) x {:?} per configuration\n",
        cfg.trials, cfg.duration
    );
    let mut rows = Vec::new();
    for &threads in &cfg.threads {
        let mut per_arm = Vec::new();
        for arm in [Arm::Reuse, Arm::Alloc] {
            let mut total_ops = 0u64;
            let mut total_successes = 0u64;
            let mut total_allocs = 0u64;
            let mut mops = Vec::new();
            for _ in 0..cfg.trials.max(1) {
                let t = run_trial(arm, threads, &cfg);
                mops.push(t.ops as f64 / t.elapsed_secs / 1e6);
                total_ops += t.ops;
                total_successes += t.successes;
                total_allocs += t.allocations;
            }
            let avg_mops = mops.iter().sum::<f64>() / mops.len() as f64;
            let allocs_per_op = total_allocs as f64 / total_ops.max(1) as f64;
            if matches!(arm, Arm::Reuse) {
                assert_eq!(
                    total_allocs, 0,
                    "the pooled KCAS path must perform zero heap allocations \
                     inside the timed region (saw {total_allocs} over {total_ops} ops \
                     at {threads} threads)"
                );
            }
            println!(
                "{:>2} thr  {:5}: {:8.3} Mops/s  {:6.2} allocs/op  {:5.1}% success",
                threads,
                arm.name(),
                avg_mops,
                allocs_per_op,
                100.0 * total_successes as f64 / total_ops.max(1) as f64
            );
            per_arm.push((avg_mops, allocs_per_op, total_successes as f64 / total_ops.max(1) as f64));
        }
        rows.push(Row {
            threads,
            reuse_mops: per_arm[0].0,
            alloc_mops: per_arm[1].0,
            reuse_allocs_per_op: per_arm[0].1,
            alloc_allocs_per_op: per_arm[1].1,
            reuse_success_rate: per_arm[0].2,
        });
    }

    println!("\n## speedup (reuse vs alloc)");
    println!("| threads | reuse Mops/s | alloc Mops/s | speedup | alloc allocs/op |");
    println!("|---|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {:.3} | {:.3} | {:.2}x | {:.2} |",
            r.threads,
            r.reuse_mops,
            r.alloc_mops,
            r.reuse_mops / r.alloc_mops,
            r.alloc_allocs_per_op
        );
    }

    let json_path = std::env::var("PATHCAS_BENCH_JSON")
        .unwrap_or_else(|_| "BENCH_descriptor_reuse.json".to_string());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"descriptor_reuse\",\n");
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!("  \"words\": {WORDS},\n"));
    json.push_str(&format!("  \"duration_ms\": {},\n", cfg.duration.as_millis()));
    json.push_str(&format!("  \"trials\": {},\n", cfg.trials));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"reuse_mops\": {:.4}, \"alloc_mops\": {:.4}, \
             \"speedup\": {:.4}, \"reuse_allocs_per_op\": {:.4}, \
             \"alloc_allocs_per_op\": {:.4}, \"reuse_success_rate\": {:.4}}}{}\n",
            r.threads,
            r.reuse_mops,
            r.alloc_mops,
            r.reuse_mops / r.alloc_mops,
            r.reuse_allocs_per_op,
            r.alloc_allocs_per_op,
            r.reuse_success_rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&json_path, json).expect("writing bench JSON");
    println!("\nwrote {json_path}");
}
