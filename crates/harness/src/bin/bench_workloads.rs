//! YCSB-style workload sweep (DESIGN.md §6, README "Workload scenarios").
//!
//! Runs every scenario in [`workload::all_scenarios`] — YCSB A–F,
//! `txn-transfer`, `contended-hot-set` — against every structure in the
//! algorithm [`harness::registry()`], over the `PATHCAS_THREADS` thread
//! counts, and reports throughput **and** per-op latency percentiles
//! (p50/p90/p99/p99.9) per (scenario, structure, threads).  Results go to
//! stdout as Markdown tables and to `BENCH_workloads.json` +
//! `BENCH_workloads.csv` (override with `PATHCAS_BENCH_JSON` /
//! `PATHCAS_BENCH_CSV`).
//!
//! Knobs: the usual `PATHCAS_THREADS`, `PATHCAS_DURATION_MS`,
//! `PATHCAS_TRIALS`, `PATHCAS_KEYRANGE_SCALE`, `PATHCAS_SEED`, plus
//! `PATHCAS_SCENARIOS` / `PATHCAS_ALGOS` (comma-separated **substring**
//! filters — `PATHCAS_SCENARIOS=ycsb` keeps all six YCSB scenarios,
//! `PATHCAS_ALGOS=shard` keeps every sharded variant; prefix a token with
//! `=` for an exact match, e.g. `=int-avl-pathcas` selects the unsharded
//! tree without its `shard8(...)` wrapper; default: everything) and
//! `PATHCAS_SCAN_LEN` (`"16"` or `"8:64"`; rewrites the `scan-heavy`
//! scenario's scan-length distribution).  CI uses the scenario filter to
//! smoke a representative subset instead of the full
//! scenario × structure × threads cube.
//!
//! Scenarios with a scan component run the structures' **native validated
//! range scans** and report the scan-only latency percentiles in their own
//! JSON columns (`scan_p50_ns`…), since scans are much longer than point
//! ops and would vanish into the combined histogram's tail.  After each
//! scan-scenario trial the (now quiescent) structure is audited: a
//! full-range scan must see exactly the keys that `stats()` reports.
//!
//! The `txn-transfer` scenario additionally asserts its conserved-sum
//! linearizability invariant after every trial: atomic two-key transfers
//! through `mapapi::get` + a 2-word `kcas::execute` must neither create nor
//! destroy balance.

use harness::{env_name_filter, name_passes, registry, Config};
use workload::{all_scenarios, run_scenario, LatencyHistogram, Meta, Row, RunParams, ScanLen};

fn main() {
    let cfg = Config::from_env();
    // The YCSB default record count is 1M keys; scaled like the paper's
    // ranges (default scale 100 ⇒ 10k keys).
    let key_range = cfg.scaled_keyrange(1_000_000);
    let warmup = cfg.duration / 5;

    let scenario_filter = env_name_filter("PATHCAS_SCENARIOS");
    let algo_filter = env_name_filter("PATHCAS_ALGOS");
    let scan_len_override = std::env::var("PATHCAS_SCAN_LEN").ok().map(|s| {
        ScanLen::parse(&s).unwrap_or_else(|| panic!("PATHCAS_SCAN_LEN: cannot parse '{s}'"))
    });
    let scenarios: Vec<_> = all_scenarios()
        .into_iter()
        .map(|s| match scan_len_override {
            // The knob tunes the scan-length distribution of the dedicated
            // scan scenario; YCSB-E keeps its canonical fixed 16.
            Some(sl) if s.name == "scan-heavy" => s.with_scan_len(sl),
            _ => s,
        })
        .filter(|s| name_passes(&scenario_filter, s.name))
        .collect();
    let algos: Vec<_> =
        registry().into_iter().filter(|f| name_passes(&algo_filter, f.name)).collect();
    assert!(!scenarios.is_empty(), "PATHCAS_SCENARIOS matched nothing");
    assert!(!algos.is_empty(), "PATHCAS_ALGOS matched nothing");

    println!("# workload scenarios");
    println!(
        "key range {key_range}, {} trial(s) x {:?} (+{:?} warmup), seed {:#x}\n",
        cfg.trials, cfg.duration, warmup, cfg.seed
    );

    let mut rows: Vec<Row> = Vec::new();
    for sc in &scenarios {
        println!("## {} — {}", sc.name, sc.summary);
        println!("| structure | threads | Mops/s | p50 | p90 | p99 | p99.9 | scan p50 | scan p99 |");
        println!("|---|---|---|---|---|---|---|---|---|");
        for algo in &algos {
            for &threads in &cfg.threads {
                let mut hist = LatencyHistogram::new();
                let mut scan_hist = LatencyHistogram::new();
                let mut total_ops = 0u64;
                let mut mops_sum = 0.0f64;
                let mut imbalance_sum = 0.0f64;
                // KCAS retries are a process-global telemetry counter, so
                // the row value is the delta around its own trial loop.
                let retries0 = harness::counter("kcas_retries_total");
                for trial in 0..cfg.trials.max(1) {
                    let map = (algo.build)();
                    let params = RunParams {
                        threads,
                        key_range,
                        prefill: key_range / 2,
                        warmup,
                        duration: cfg.duration,
                        seed: cfg.seed ^ ((trial as u64) << 40),
                    };
                    let out = run_scenario(&map, sc, &params);
                    if let Some(bank) = out.bank {
                        assert!(
                            bank.conserved(),
                            "{} on {} ({} thr): bank sum {} != {} after {} commits — \
                             transfers are not linearizable",
                            sc.name,
                            algo.name,
                            threads,
                            bank.actual_sum,
                            bank.expected_sum,
                            bank.committed
                        );
                    }
                    if sc.mix.scan > 0 {
                        // Quiescent scan audit (the executor joined every
                        // worker before collecting `final_stats`, so both
                        // sides observe the same frozen structure).
                        mapapi::suites::check_scan_matches_stats(&map, &out.final_stats);
                    }
                    hist.merge(&out.hist);
                    scan_hist.merge(&out.scan_hist);
                    total_ops += out.total_ops;
                    mops_sum += out.mops();
                    imbalance_sum += harness::shard_imbalance(&map.shard_loads());
                }
                let p = hist.percentiles();
                let sp = scan_hist.percentiles();
                let mops = mops_sum / cfg.trials.max(1) as f64;
                println!(
                    "| {} | {} | {:.3} | {} | {} | {} | {} | {} | {} |",
                    algo.name,
                    threads,
                    mops,
                    workload::report::fmt_ns(p.p50),
                    workload::report::fmt_ns(p.p90),
                    workload::report::fmt_ns(p.p99),
                    workload::report::fmt_ns(p.p999),
                    workload::report::fmt_ns(sp.p50),
                    workload::report::fmt_ns(sp.p99),
                );
                rows.push(Row {
                    scenario: sc.name.to_string(),
                    structure: algo.name.to_string(),
                    threads,
                    mops,
                    total_ops,
                    mean_ns: hist.mean(),
                    percentiles: p,
                    max_ns: hist.max(),
                    saturated: hist.saturated_count(),
                    scan_ops: scan_hist.count(),
                    scan_percentiles: sp,
                    // In-process runs have no replica, hence no staleness;
                    // the columns exist so every BENCH_*.{json,csv} shares
                    // one row schema (bench_service fills them).
                    staleness_samples: 0,
                    staleness_percentiles: workload::Percentiles::default(),
                    backend: "inproc".to_string(),
                    // No sockets in-process; the wire columns stay 0 so the
                    // schema matches bench_service exactly.
                    wire_read_syscalls: 0,
                    wire_write_syscalls: 0,
                    reactor_wakeups: 0,
                    kcas_retries: harness::counter("kcas_retries_total") - retries0,
                    shard_imbalance: imbalance_sum / cfg.trials.max(1) as f64,
                    // Wire-path phase attribution is service-mode only:
                    // in-process ops never touch the tracer.
                    attr_ready_ns: 0.0,
                    attr_decode_ns: 0.0,
                    attr_shard_ns: 0.0,
                    attr_kcas_ns: 0.0,
                    attr_commit_ns: 0.0,
                    attr_resp_ns: 0.0,
                    attr_flush_ns: 0.0,
                });
            }
        }
        println!();
    }

    let meta = Meta {
        duration_ms: cfg.duration.as_millis() as u64,
        warmup_ms: warmup.as_millis() as u64,
        trials: cfg.trials,
        key_range,
        seed: cfg.seed,
    };
    let json_path = std::env::var("PATHCAS_BENCH_JSON")
        .unwrap_or_else(|_| "BENCH_workloads.json".to_string());
    let csv_path =
        std::env::var("PATHCAS_BENCH_CSV").unwrap_or_else(|_| "BENCH_workloads.csv".to_string());
    std::fs::write(&json_path, workload::to_json(&meta, &rows)).expect("writing bench JSON");
    std::fs::write(&csv_path, workload::to_csv(&rows)).expect("writing bench CSV");
    println!("wrote {json_path} and {csv_path} ({} rows)", rows.len());
}
