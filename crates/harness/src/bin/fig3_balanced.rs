//! Figure 3 (bottom row): balanced BSTs at 1%, 10% and 100% updates.
//!
//! The BCCO optimistic AVL (pext-avl-occ) and the LLX/SCX chromatic tree are
//! not reproduced; the comparison runs int-avl-pathcas against the
//! transactional AVL trees and the handcrafted external BST as a reference
//! point (DESIGN.md §4 records the substitution).

use harness::{print_throughput_table, run_trials, Config, Workload};

fn main() {
    let cfg = Config::from_env();
    let key_range = cfg.scaled_keyrange(20_000_000);
    let algos = ["int-avl-pathcas", "int-avl-norec", "int-avl-tl2", "ext-bst-locks"];
    for update_percent in [1u32, 10, 100] {
        let mut rows = Vec::new();
        for name in algos {
            let mut summaries = Vec::new();
            for &threads in &cfg.threads {
                let w = Workload::paper(key_range, update_percent, threads, cfg.duration).with_seed(cfg.seed);
                summaries.push(run_trials(|| harness::make(name), &w, cfg.trials));
            }
            rows.push((name.to_string(), summaries));
        }
        print_throughput_table(
            &format!("Figure 3 (bottom) — balanced BSTs, {update_percent}% updates, {key_range} keys"),
            &cfg.threads,
            &rows,
        );
    }
}
