//! Service-mode workload sweep: the same scenarios and percentile schema as
//! `bench_workloads`, but every operation crosses a real loopback socket
//! into the threaded KV server (`crates/server`) instead of calling the
//! structure in-process.
//!
//! Per trial, the binary builds a fresh structure by name through
//! [`harness::try_make`] — including sharded compositions like the default
//! `shard8(int-avl-pathcas)` — starts a `server::Server` on an ephemeral
//! loopback port, connects a `server::ServiceMap` pool (one connection per
//! worker thread), runs the scenario through the unchanged
//! `workload::run_scenario`, and shuts the server down cleanly.  The
//! `service-mixed` scenario is additionally swept over pipelining depths
//! through `workload::run_scenario_batched`, where each worker ships whole
//! op batches as one pipelined burst and the server answers with one
//! batched write (rows labeled `svc(...)@d<depth>`).
//!
//! Scan scenarios are audited after every trial like in `bench_workloads`
//! — over the wire: a chunked full `SCAN` walk must agree exactly with the
//! `STATS` verb.
//!
//! Output: Markdown tables on stdout plus `BENCH_service.json` /
//! `BENCH_service.csv` (override with `PATHCAS_SERVICE_JSON` /
//! `PATHCAS_SERVICE_CSV`) in exactly the `BENCH_workloads` row schema.
//!
//! The `read-replica` scenario takes the **replication** path instead
//! (DESIGN.md §9): the served structure becomes a `replica::ReplicatedMap`
//! primary, `PATHCAS_FOLLOWERS` read-only followers bootstrap from a
//! checkpoint and tail the primary's change stream over `SUBSCRIBE`, and a
//! `replica::ReplicaSet` fans the scenario's reads across the follower
//! sockets while its writes go to the primary socket.  A sampler thread
//! records each follower's staleness (primary seqno − follower applied
//! seqno, in sequence numbers) throughout the run into the row's
//! `staleness_*` columns; after the run every follower is required to
//! drain the stream and match the primary's key count and keysum exactly,
//! plus pass the full-scan-vs-stats audit.
//!
//! Knobs: the usual `PATHCAS_THREADS` / `PATHCAS_DURATION_MS` /
//! `PATHCAS_TRIALS` / `PATHCAS_KEYRANGE_SCALE` / `PATHCAS_SEED`, plus:
//!
//! * first CLI argument or `PATHCAS_SERVICE_ALGO` — the served structure
//!   (default `shard8(int-avl-pathcas)`); unknown names print the valid
//!   list and exit 2 instead of panicking;
//! * `PATHCAS_SCENARIOS` — substring filter over all scenarios (default
//!   for this binary: `ycsb-b`, `scan-heavy`, `service-mixed`,
//!   `read-replica`);
//! * `PATHCAS_PIPELINE_DEPTHS` — comma-separated depths for the
//!   `service-mixed` pipelining sweep (default `1,8,32`);
//! * `PATHCAS_FOLLOWERS` — follower count for `read-replica` (default 2);
//! * `PATHCAS_BACKEND` — `threads` or `reactor` to measure one serving
//!   backend; unset (or `both`) sweeps both in one run.  Every row carries
//!   the backend in the schema-appended `backend` column.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use harness::{env_name_filter, name_passes, Config};
use mapapi::ConcurrentMap;
use replica::{Follower, ReplicaSet};
use server::{Backend, Server, ServerOpts, ServiceMap, WireTail};
use workload::{
    all_scenarios, run_scenario, run_scenario_batched, LatencyHistogram, Meta, Row, RunParams,
    Scenario,
};

/// Scenarios served by default when `PATHCAS_SCENARIOS` is unset: the
/// read-mostly YCSB point workload, the range-scan regime, the pipelining
/// stressor, and the replicated read-fan-out topology.
const DEFAULT_SCENARIOS: [&str; 4] = ["ycsb-b", "scan-heavy", "service-mixed", "read-replica"];

/// Span-tracer registry names for the per-phase time sums, in the Row
/// `attr_*` column order (ready, decode, shard, kcas, commit, resp, flush).
/// `deliver` is deliberately absent: SUBSCRIBE batches are their own
/// sampler ops, not part of any client request's latency.
const TRACE_SUM_METRICS: [&str; 7] = [
    "trace_ready_ns_sum",
    "trace_decode_ns_sum",
    "trace_shard_ns_sum",
    "trace_kcas_ns_sum",
    "trace_commit_ns_sum",
    "trace_resp_ns_sum",
    "trace_flush_ns_sum",
];

/// One reading of the tracer: sampled-op count plus the seven phase sums.
type TraceSnap = (u64, [u64; 7]);

/// Mean sampled nanoseconds per sampled op (0.0 when nothing was sampled,
/// e.g. tracing disabled via `PATHCAS_TRACE_SAMPLE=0`).
fn attr(sum_ns: u64, sampled: u64) -> f64 {
    if sampled == 0 {
        0.0
    } else {
        sum_ns as f64 / sampled as f64
    }
}

/// Current tracer totals (0s before the server first registers them).
fn trace_snapshot() -> TraceSnap {
    (harness::counter("trace_sampled_total"), TRACE_SUM_METRICS.map(harness::counter))
}

/// Tracer movement since `t0`.  Taken around the measured run only — the
/// quiescent audits also cross the wire and would otherwise pollute the
/// attribution with their giant scans.
fn trace_delta(t0: &TraceSnap) -> TraceSnap {
    let t1 = trace_snapshot();
    let mut sums = [0u64; 7];
    for (i, s) in sums.iter_mut().enumerate() {
        *s = t1.1[i].saturating_sub(t0.1[i]);
    }
    (t1.0.saturating_sub(t0.0), sums)
}

/// Run an audit closure; if it panics, dump the slow-op flight recorder to
/// stderr first — the last slow ops before the inconsistency are exactly
/// the postmortem context a failed audit wants — then re-panic.
fn audit_with_flight_dump(f: impl FnOnce()) {
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        eprintln!("audit failed — slow-op flight recorder:\n{}", server::metrics::flight_dump());
        std::panic::resume_unwind(payload);
    }
}

/// One (scenario, threads, depth) measurement over a fresh server+pool.
/// `depth` 0 means point mode (plain `run_scenario`); >= 1 is batched mode.
/// Returns the outcome plus the served map's shard imbalance (0.0 when the
/// structure doesn't track per-shard loads).
fn run_service_trial(
    algo: &str,
    sc: &Scenario,
    params: &RunParams,
    depth: usize,
    backend: Backend,
) -> (workload::Outcome, f64, TraceSnap) {
    let map = harness::try_make(algo).expect("algo name was validated at startup");
    let map: Arc<dyn ConcurrentMap> = Arc::from(map);
    let server = Server::start_with(
        Arc::clone(&map),
        ServerOpts { backend, ..ServerOpts::default() },
        "127.0.0.1:0",
    )
    .expect("binding a loopback port");
    let svc = ServiceMap::connect(server.local_addr(), params.threads, algo)
        .expect("connecting the loopback pool");
    let t0 = trace_snapshot();
    let out = if depth == 0 {
        run_scenario(&svc, sc, params)
    } else {
        run_scenario_batched(&svc, &svc, sc, params, depth)
    };
    let trace = trace_delta(&t0);
    if sc.mix.scan > 0 {
        // Quiescent wire audit: chunked SCAN walk vs the STATS verb.
        audit_with_flight_dump(|| {
            mapapi::suites::check_scan_matches_stats(&svc, &out.final_stats)
        });
    }
    drop(svc);
    server.shutdown();
    let imbalance = harness::shard_imbalance(&map.shard_loads());
    (out, imbalance, trace)
}

/// One `read-replica` trial: a replicated primary behind its own server, a
/// checkpoint-bootstrapped wire-tailing follower fleet behind read-only
/// servers, and the scenario driven through a [`ReplicaSet`] over the whole
/// topology.  Returns the workload outcome plus the staleness samples.
fn run_replica_trial(
    algo: &str,
    sc: &Scenario,
    params: &RunParams,
    n_followers: usize,
    backend: Backend,
) -> (workload::Outcome, LatencyHistogram, f64, TraceSnap) {
    // The primary, prefilled in-process so the checkpoint cut already
    // carries the working set (the scenario's own prefill then sees the
    // target met and does nothing).
    let rep = Arc::new(
        harness::try_make_replicated(algo).expect("algo name was validated at startup"),
    );
    mapapi::stress::prefill(
        &*rep,
        params.key_range,
        params.prefill,
        mapapi::stress::prefill_seed(params.seed),
    );
    let ckpt = rep.checkpoint();
    let log = rep.log();
    let srv = Server::start_with(
        Arc::clone(&rep) as Arc<dyn ConcurrentMap>,
        ServerOpts { log: Some(rep.log()), backend, ..ServerOpts::default() },
        "127.0.0.1:0",
    )
    .expect("binding the primary port");
    let primary_svc = ServiceMap::connect(srv.local_addr(), params.threads, algo)
        .expect("connecting the primary pool");

    // Followers: bootstrap from the checkpoint, tail the primary over the
    // wire, serve reads through a read-only server and their own pool.
    let mut followers = Vec::new();
    let mut tails = Vec::new();
    let mut fsrvs = Vec::new();
    let mut fsvcs: Vec<Box<dyn ConcurrentMap>> = Vec::new();
    for i in 0..n_followers {
        let f = Arc::new(Follower::bootstrap(harness::make(algo), &ckpt));
        tails.push(
            WireTail::start(srv.local_addr(), Arc::clone(&f)).expect("subscribing a follower"),
        );
        let fsrv = Server::start_with(
            Arc::clone(&f) as Arc<dyn ConcurrentMap>,
            ServerOpts { log: None, read_only: true, backend, ..ServerOpts::default() },
            "127.0.0.1:0",
        )
        .expect("binding a follower port");
        let fsvc = ServiceMap::connect(fsrv.local_addr(), params.threads, &format!("{algo}#f{i}"))
            .expect("connecting a follower pool");
        fsvcs.push(Box::new(fsvc));
        fsrvs.push(fsrv);
        followers.push(f);
    }
    let set = ReplicaSet::new(Box::new(primary_svc), fsvcs);

    // Staleness sampler: primary head seqno minus each follower's applied
    // seqno, recorded for every follower at each sampling instant.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let (log, followers, stop) = (Arc::clone(&log), followers.clone(), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut h = LatencyHistogram::new();
            while !stop.load(Ordering::Acquire) {
                let head = log.seqno();
                for f in &followers {
                    h.record(head.saturating_sub(f.applied_seqno()));
                }
                std::thread::sleep(Duration::from_micros(250));
            }
            h
        })
    };

    let t0 = trace_snapshot();
    let out = run_scenario(&set, sc, params);
    let trace = trace_delta(&t0);
    stop.store(true, Ordering::Release);
    let staleness = sampler.join().expect("joining the staleness sampler");

    // The workers are quiescent, so the log head is final: every follower
    // must drain to it and then agree with the primary *exactly* — same
    // key count, same keysum, and a clean full-scan-vs-stats audit.
    let head = log.seqno();
    let deadline = Instant::now() + Duration::from_secs(30);
    for f in &followers {
        while f.applied_seqno() < head {
            assert!(
                Instant::now() < deadline,
                "follower stuck at seqno {} < {head}",
                f.applied_seqno()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        audit_with_flight_dump(|| {
            let (ps, fs) = (rep.stats(), f.stats());
            assert_eq!(
                (ps.key_count, ps.key_sum),
                (fs.key_count, fs.key_sum),
                "{}: drained follower diverged from the primary",
                f.name()
            );
            mapapi::suites::check_scan_matches_stats(&**f, &fs);
        });
    }

    drop(set);
    for t in tails {
        t.stop();
    }
    for s in fsrvs {
        s.shutdown();
    }
    srv.shutdown();
    let imbalance = harness::shard_imbalance(&rep.shard_loads());
    (out, staleness, imbalance, trace)
}

fn main() {
    let cfg = Config::from_env();
    let algo = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("PATHCAS_SERVICE_ALGO").ok())
        .unwrap_or_else(|| "shard8(int-avl-pathcas)".to_string());
    // Validate the name once, up front, with the registry's error message
    // (lists every valid name) instead of a panic mid-run.
    if let Err(e) = harness::try_make(&algo) {
        eprintln!("bench_service: {e}");
        std::process::exit(2);
    }
    let key_range = cfg.scaled_keyrange(1_000_000);
    let warmup = cfg.duration / 5;

    let scenario_filter = env_name_filter("PATHCAS_SCENARIOS");
    let scenarios: Vec<Scenario> = all_scenarios()
        .into_iter()
        .filter(|s| match &scenario_filter {
            Some(_) => name_passes(&scenario_filter, s.name),
            None => DEFAULT_SCENARIOS.contains(&s.name),
        })
        .collect();
    assert!(!scenarios.is_empty(), "PATHCAS_SCENARIOS matched nothing");
    let depths: Vec<usize> = std::env::var("PATHCAS_PIPELINE_DEPTHS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).filter(|&d| d >= 1).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 8, 32]);
    let n_followers: usize = std::env::var("PATHCAS_FOLLOWERS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2);
    // Both serving backends in one sweep by default; PATHCAS_BACKEND
    // restricts the run to one of them.
    let backends: Vec<Backend> = match Backend::from_env() {
        Some(b) => vec![b],
        None => Backend::ALL.to_vec(),
    };

    println!("# service mode: {algo} over loopback TCP");
    println!(
        "key range {key_range}, {} trial(s) x {:?} (+{:?} warmup), seed {:#x}, \
         pipeline depths {depths:?}, {n_followers} follower(s), backends {:?}\n",
        cfg.trials,
        cfg.duration,
        warmup,
        cfg.seed,
        backends.iter().map(|b| b.label()).collect::<Vec<_>>()
    );

    let mut rows: Vec<Row> = Vec::new();
    for sc in &scenarios {
        let replicated = sc.name == "read-replica";
        println!("## {} — {}", sc.name, sc.summary);
        if replicated {
            // The staleness columns are in sequence numbers (events behind
            // the primary head), not time.
            println!(
                "| structure | backend | threads | Mops/s | p50 | p90 | p99 | p99.9 | scan p50 \
                 | scan p99 | stale p50 | stale p99 |"
            );
            println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
        } else {
            println!(
                "| structure | backend | threads | Mops/s | p50 | p90 | p99 | p99.9 | scan p50 \
                 | scan p99 |"
            );
            println!("|---|---|---|---|---|---|---|---|---|---|");
        }
        // Point mode always; the pipelining sweep only where it's the
        // point of the scenario (and transfers can't batch at all).  The
        // replicated scenario has exactly one mode: the whole topology.
        let mut modes: Vec<(usize, String)> = if replicated {
            vec![(0, format!("replset(svc({algo})+{n_followers}f)"))]
        } else {
            vec![(0, format!("svc({algo})"))]
        };
        if sc.name == "service-mixed" {
            modes.extend(depths.iter().map(|&d| (d, format!("svc({algo})@d{d}"))));
        }
        for (depth, label) in &modes {
            for &backend in &backends {
                for &threads in &cfg.threads {
                    let mut hist = LatencyHistogram::new();
                    let mut scan_hist = LatencyHistogram::new();
                    let mut stale_hist = LatencyHistogram::new();
                    let mut total_ops = 0u64;
                    let mut mops_sum = 0.0f64;
                    let mut imbalance_sum = 0.0f64;
                    let mut trace_sampled = 0u64;
                    let mut trace_sums = [0u64; 7];
                    // Telemetry counters are process-global, so per-row
                    // numbers are deltas around the row's trial loop.
                    let reads0 = harness::counter("reactor_read_syscalls_total");
                    let writes0 = harness::counter("reactor_write_syscalls_total");
                    let wakeups0 = harness::counter("reactor_wakeups_total");
                    let retries0 = harness::counter("kcas_retries_total");
                    for trial in 0..cfg.trials.max(1) {
                        let params = RunParams {
                            threads,
                            key_range,
                            prefill: key_range / 2,
                            warmup,
                            duration: cfg.duration,
                            seed: cfg.seed ^ ((trial as u64) << 40),
                        };
                        let out = if replicated {
                            let (out, stale, imbalance, trace) =
                                run_replica_trial(&algo, sc, &params, n_followers, backend);
                            stale_hist.merge(&stale);
                            imbalance_sum += imbalance;
                            trace_sampled += trace.0;
                            for (acc, d) in trace_sums.iter_mut().zip(trace.1) {
                                *acc += d;
                            }
                            out
                        } else {
                            let (out, imbalance, trace) =
                                run_service_trial(&algo, sc, &params, *depth, backend);
                            imbalance_sum += imbalance;
                            trace_sampled += trace.0;
                            for (acc, d) in trace_sums.iter_mut().zip(trace.1) {
                                *acc += d;
                            }
                            out
                        };
                        hist.merge(&out.hist);
                        scan_hist.merge(&out.scan_hist);
                        total_ops += out.total_ops;
                        mops_sum += out.mops();
                    }
                    let p = hist.percentiles();
                    let sp = scan_hist.percentiles();
                    let st = stale_hist.percentiles();
                    let mops = mops_sum / cfg.trials.max(1) as f64;
                    let stale_cols = if replicated {
                        // Raw sequence numbers, not formatted as time.
                        format!(" {} | {} |", st.p50, st.p99)
                    } else {
                        String::new()
                    };
                    println!(
                        "| {} | {} | {} | {:.3} | {} | {} | {} | {} | {} | {} |{}",
                        label,
                        backend.label(),
                        threads,
                        mops,
                        workload::report::fmt_ns(p.p50),
                        workload::report::fmt_ns(p.p90),
                        workload::report::fmt_ns(p.p99),
                        workload::report::fmt_ns(p.p999),
                        workload::report::fmt_ns(sp.p50),
                        workload::report::fmt_ns(sp.p99),
                        stale_cols,
                    );
                    rows.push(Row {
                        scenario: sc.name.to_string(),
                        structure: label.clone(),
                        threads,
                        mops,
                        total_ops,
                        mean_ns: hist.mean(),
                        percentiles: p,
                        max_ns: hist.max(),
                        saturated: hist.saturated_count(),
                        scan_ops: scan_hist.count(),
                        scan_percentiles: sp,
                        staleness_samples: stale_hist.count(),
                        staleness_percentiles: st,
                        backend: backend.label().to_string(),
                        wire_read_syscalls: harness::counter("reactor_read_syscalls_total")
                            - reads0,
                        wire_write_syscalls: harness::counter("reactor_write_syscalls_total")
                            - writes0,
                        reactor_wakeups: harness::counter("reactor_wakeups_total") - wakeups0,
                        kcas_retries: harness::counter("kcas_retries_total") - retries0,
                        shard_imbalance: imbalance_sum / cfg.trials.max(1) as f64,
                        // Per-sampled-op means: each phase's total sampled
                        // nanoseconds over the sampled-op count.  Bursty
                        // phases (flush per batch, ready per wakeup) come
                        // out amortized, which is exactly the per-op share.
                        attr_ready_ns: attr(trace_sums[0], trace_sampled),
                        attr_decode_ns: attr(trace_sums[1], trace_sampled),
                        attr_shard_ns: attr(trace_sums[2], trace_sampled),
                        attr_kcas_ns: attr(trace_sums[3], trace_sampled),
                        attr_commit_ns: attr(trace_sums[4], trace_sampled),
                        attr_resp_ns: attr(trace_sums[5], trace_sampled),
                        attr_flush_ns: attr(trace_sums[6], trace_sampled),
                    });
                }
            }
        }
        println!();
    }

    let meta = Meta {
        duration_ms: cfg.duration.as_millis() as u64,
        warmup_ms: warmup.as_millis() as u64,
        trials: cfg.trials,
        key_range,
        seed: cfg.seed,
    };
    let json_path = std::env::var("PATHCAS_SERVICE_JSON")
        .unwrap_or_else(|_| "BENCH_service.json".to_string());
    let csv_path =
        std::env::var("PATHCAS_SERVICE_CSV").unwrap_or_else(|_| "BENCH_service.csv".to_string());
    std::fs::write(&json_path, workload::to_json(&meta, &rows)).expect("writing bench JSON");
    std::fs::write(&csv_path, workload::to_csv(&rows)).expect("writing bench CSV");
    println!("wrote {json_path} and {csv_path} ({} rows); all servers shut down cleanly", rows.len());
}
