//! Service-mode workload sweep: the same scenarios and percentile schema as
//! `bench_workloads`, but every operation crosses a real loopback socket
//! into the threaded KV server (`crates/server`) instead of calling the
//! structure in-process.
//!
//! Per trial, the binary builds a fresh structure by name through
//! [`harness::try_make`] — including sharded compositions like the default
//! `shard8(int-avl-pathcas)` — starts a `server::Server` on an ephemeral
//! loopback port, connects a `server::ServiceMap` pool (one connection per
//! worker thread), runs the scenario through the unchanged
//! `workload::run_scenario`, and shuts the server down cleanly.  The
//! `service-mixed` scenario is additionally swept over pipelining depths
//! through `workload::run_scenario_batched`, where each worker ships whole
//! op batches as one pipelined burst and the server answers with one
//! batched write (rows labeled `svc(...)@d<depth>`).
//!
//! Scan scenarios are audited after every trial like in `bench_workloads`
//! — over the wire: a chunked full `SCAN` walk must agree exactly with the
//! `STATS` verb.
//!
//! Output: Markdown tables on stdout plus `BENCH_service.json` /
//! `BENCH_service.csv` (override with `PATHCAS_SERVICE_JSON` /
//! `PATHCAS_SERVICE_CSV`) in exactly the `BENCH_workloads` row schema.
//!
//! Knobs: the usual `PATHCAS_THREADS` / `PATHCAS_DURATION_MS` /
//! `PATHCAS_TRIALS` / `PATHCAS_KEYRANGE_SCALE` / `PATHCAS_SEED`, plus:
//!
//! * first CLI argument or `PATHCAS_SERVICE_ALGO` — the served structure
//!   (default `shard8(int-avl-pathcas)`); unknown names print the valid
//!   list and exit 2 instead of panicking;
//! * `PATHCAS_SCENARIOS` — substring filter over all scenarios (default
//!   for this binary: `ycsb-b`, `scan-heavy`, `service-mixed`);
//! * `PATHCAS_PIPELINE_DEPTHS` — comma-separated depths for the
//!   `service-mixed` pipelining sweep (default `1,8,32`).

use std::sync::Arc;

use harness::{env_name_filter, name_passes, Config};
use mapapi::ConcurrentMap;
use server::{Server, ServiceMap};
use workload::{
    all_scenarios, run_scenario, run_scenario_batched, LatencyHistogram, Meta, Row, RunParams,
    Scenario,
};

/// Scenarios served by default when `PATHCAS_SCENARIOS` is unset: the
/// read-mostly YCSB point workload, the range-scan regime, and the
/// pipelining stressor.
const DEFAULT_SCENARIOS: [&str; 3] = ["ycsb-b", "scan-heavy", "service-mixed"];

/// One (scenario, threads, depth) measurement over a fresh server+pool.
/// `depth` 0 means point mode (plain `run_scenario`); >= 1 is batched mode.
fn run_service_trial(
    algo: &str,
    sc: &Scenario,
    params: &RunParams,
    depth: usize,
) -> workload::Outcome {
    let map = harness::try_make(algo).expect("algo name was validated at startup");
    let map: Arc<dyn ConcurrentMap> = Arc::from(map);
    let server = Server::start(map, "127.0.0.1:0").expect("binding a loopback port");
    let svc = ServiceMap::connect(server.local_addr(), params.threads, algo)
        .expect("connecting the loopback pool");
    let out = if depth == 0 {
        run_scenario(&svc, sc, params)
    } else {
        run_scenario_batched(&svc, &svc, sc, params, depth)
    };
    if sc.mix.scan > 0 {
        // Quiescent wire audit: chunked SCAN walk vs the STATS verb.
        mapapi::suites::check_scan_matches_stats(&svc, &out.final_stats);
    }
    drop(svc);
    server.shutdown();
    out
}

fn main() {
    let cfg = Config::from_env();
    let algo = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("PATHCAS_SERVICE_ALGO").ok())
        .unwrap_or_else(|| "shard8(int-avl-pathcas)".to_string());
    // Validate the name once, up front, with the registry's error message
    // (lists every valid name) instead of a panic mid-run.
    if let Err(e) = harness::try_make(&algo) {
        eprintln!("bench_service: {e}");
        std::process::exit(2);
    }
    let key_range = cfg.scaled_keyrange(1_000_000);
    let warmup = cfg.duration / 5;

    let scenario_filter = env_name_filter("PATHCAS_SCENARIOS");
    let scenarios: Vec<Scenario> = all_scenarios()
        .into_iter()
        .filter(|s| match &scenario_filter {
            Some(_) => name_passes(&scenario_filter, s.name),
            None => DEFAULT_SCENARIOS.contains(&s.name),
        })
        .collect();
    assert!(!scenarios.is_empty(), "PATHCAS_SCENARIOS matched nothing");
    let depths: Vec<usize> = std::env::var("PATHCAS_PIPELINE_DEPTHS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).filter(|&d| d >= 1).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 8, 32]);

    println!("# service mode: {algo} over loopback TCP");
    println!(
        "key range {key_range}, {} trial(s) x {:?} (+{:?} warmup), seed {:#x}, \
         pipeline depths {depths:?}\n",
        cfg.trials, cfg.duration, warmup, cfg.seed
    );

    let mut rows: Vec<Row> = Vec::new();
    for sc in &scenarios {
        println!("## {} — {}", sc.name, sc.summary);
        println!("| structure | threads | Mops/s | p50 | p90 | p99 | p99.9 | scan p50 | scan p99 |");
        println!("|---|---|---|---|---|---|---|---|---|");
        // Point mode always; the pipelining sweep only where it's the
        // point of the scenario (and transfers can't batch at all).
        let mut modes: Vec<(usize, String)> = vec![(0, format!("svc({algo})"))];
        if sc.name == "service-mixed" {
            modes.extend(depths.iter().map(|&d| (d, format!("svc({algo})@d{d}"))));
        }
        for (depth, label) in &modes {
            for &threads in &cfg.threads {
                let mut hist = LatencyHistogram::new();
                let mut scan_hist = LatencyHistogram::new();
                let mut total_ops = 0u64;
                let mut mops_sum = 0.0f64;
                for trial in 0..cfg.trials.max(1) {
                    let params = RunParams {
                        threads,
                        key_range,
                        prefill: key_range / 2,
                        warmup,
                        duration: cfg.duration,
                        seed: cfg.seed ^ ((trial as u64) << 40),
                    };
                    let out = run_service_trial(&algo, sc, &params, *depth);
                    hist.merge(&out.hist);
                    scan_hist.merge(&out.scan_hist);
                    total_ops += out.total_ops;
                    mops_sum += out.mops();
                }
                let p = hist.percentiles();
                let sp = scan_hist.percentiles();
                let mops = mops_sum / cfg.trials.max(1) as f64;
                println!(
                    "| {} | {} | {:.3} | {} | {} | {} | {} | {} | {} |",
                    label,
                    threads,
                    mops,
                    workload::report::fmt_ns(p.p50),
                    workload::report::fmt_ns(p.p90),
                    workload::report::fmt_ns(p.p99),
                    workload::report::fmt_ns(p.p999),
                    workload::report::fmt_ns(sp.p50),
                    workload::report::fmt_ns(sp.p99),
                );
                rows.push(Row {
                    scenario: sc.name.to_string(),
                    structure: label.clone(),
                    threads,
                    mops,
                    total_ops,
                    mean_ns: hist.mean(),
                    percentiles: p,
                    max_ns: hist.max(),
                    saturated: hist.saturated_count(),
                    scan_ops: scan_hist.count(),
                    scan_percentiles: sp,
                });
            }
        }
        println!();
    }

    let meta = Meta {
        duration_ms: cfg.duration.as_millis() as u64,
        warmup_ms: warmup.as_millis() as u64,
        trials: cfg.trials,
        key_range,
        seed: cfg.seed,
    };
    let json_path = std::env::var("PATHCAS_SERVICE_JSON")
        .unwrap_or_else(|_| "BENCH_service.json".to_string());
    let csv_path =
        std::env::var("PATHCAS_SERVICE_CSV").unwrap_or_else(|_| "BENCH_service.csv".to_string());
    std::fs::write(&json_path, workload::to_json(&meta, &rows)).expect("writing bench JSON");
    std::fs::write(&csv_path, workload::to_csv(&rows)).expect("writing bench CSV");
    println!("wrote {json_path} and {csv_path} ({} rows); all servers shut down cleanly", rows.len());
}
