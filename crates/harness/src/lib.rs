//! # harness — Setbench-style benchmark harness
//!
//! Reproduces the experimental methodology of §5 of the PathCAS paper: each
//! trial pre-fills the structure to half its key range, then runs a timed
//! mixed workload of uniformly random operations and reports throughput in
//! millions of operations per second, averaged over several trials with
//! min/max recorded.
//!
//! The per-figure experiment drivers live in `src/bin/` (one binary per
//! table/figure, see DESIGN.md §2); they share the [`Workload`] /
//! [`run_trials`] machinery and the [`registry`](mod@registry) of algorithm
//! factories.

#![warn(missing_docs)]

pub mod alloc_count;
pub mod registry;
pub mod runner;

pub use registry::{make, registry, try_make, try_make_replicated, AlgoFactory, MAX_SHARDS};
pub use runner::{run_trial, run_trials, Summary, TrialResult, Workload};

use std::time::Duration;

/// The seed used when `PATHCAS_SEED` is unset (the historical hard-coded
/// constant, so default runs match pre-knob behaviour).
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// Global knobs read from the environment so the same binaries scale from a
/// laptop-class container (the defaults) up to a large server.
///
/// * `PATHCAS_THREADS` — comma-separated thread counts (default `1,2,4,8`)
/// * `PATHCAS_DURATION_MS` — per-trial duration in milliseconds (default 500)
/// * `PATHCAS_TRIALS` — trials per configuration (default 2)
/// * `PATHCAS_KEYRANGE_SCALE` — divide the paper's key ranges by this factor
///   (default 100, i.e. "10M keys" experiments run with 100k keys)
/// * `PATHCAS_SEED` — base seed for every trial RNG (default `0xC0FFEE`).
///   Prefill contents, per-thread operation streams and the workload
///   engine's samplers all derive from it, so two runs with the same seed
///   (and thread/duration settings) draw identical key sequences.
#[derive(Debug, Clone)]
pub struct Config {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Duration of each timed trial.
    pub duration: Duration,
    /// Number of trials per configuration.
    pub trials: usize,
    /// Divisor applied to the paper's key-range sizes.
    pub keyrange_scale: u64,
    /// Base seed every trial RNG derives from (`PATHCAS_SEED`).
    pub seed: u64,
}

impl Config {
    /// Read the configuration from the environment (see the struct docs).
    pub fn from_env() -> Self {
        let threads = std::env::var("PATHCAS_THREADS")
            .ok()
            .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect::<Vec<_>>())
            .filter(|v: &Vec<usize>| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        let duration = Duration::from_millis(
            std::env::var("PATHCAS_DURATION_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(500),
        );
        let trials =
            std::env::var("PATHCAS_TRIALS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
        let keyrange_scale = std::env::var("PATHCAS_KEYRANGE_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(100)
            .max(1);
        let seed = std::env::var("PATHCAS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Config { threads, duration, trials, keyrange_scale, seed }
    }

    /// Scale one of the paper's key ranges (e.g. 2×10⁷) by the configured
    /// divisor, keeping at least 1024 keys.
    pub fn scaled_keyrange(&self, paper_range: u64) -> u64 {
        (paper_range / self.keyrange_scale).max(1024)
    }
}

/// Read a comma-separated name filter from environment variable `var`:
/// `None` means "keep everything", otherwise keep items whose name
/// *contains* any of the listed substrings.  A token prefixed with `=`
/// demands an **exact** match instead — needed because registered names
/// nest (`int-avl-pathcas` is a substring of `shard8(int-avl-pathcas)`,
/// so only `=int-avl-pathcas` selects the unsharded tree alone).  Shared
/// by `bench_workloads` and `bench_service` for the `PATHCAS_SCENARIOS` /
/// `PATHCAS_ALGOS` knobs.
pub fn env_name_filter(var: &str) -> Option<Vec<String>> {
    std::env::var(var)
        .ok()
        .map(|s| s.split(',').map(|t| t.trim().to_string()).filter(|t| !t.is_empty()).collect())
        .filter(|v: &Vec<String>| !v.is_empty())
}

/// Apply an [`env_name_filter`] result to a name (see its docs for the
/// substring / `=`-exact token grammar).
pub fn name_passes(filter: &Option<Vec<String>>, name: &str) -> bool {
    filter.as_ref().is_none_or(|f| {
        f.iter().any(|t| match t.strip_prefix('=') {
            Some(exact) => name == exact,
            None => name.contains(t.as_str()),
        })
    })
}

/// A registered telemetry counter's current value, 0 when the subsystem
/// that registers it has not run yet — the form the bench binaries want
/// for before/after deltas around a trial loop.
pub fn counter(name: &str) -> u64 {
    telemetry::value(name).unwrap_or(0)
}

/// Shard load imbalance from a map's per-shard point-op counters: max over
/// shards divided by the mean.  1.0 is perfectly even, higher is skewed;
/// 0.0 means the structure doesn't track per-shard loads (unsharded) or
/// saw no point ops at all.  Fills the `shard_imbalance` bench column.
pub fn shard_imbalance(loads: &[mapapi::ShardLoad]) -> f64 {
    let total: u64 = loads.iter().map(|l| l.point_ops).sum();
    if total == 0 {
        return 0.0;
    }
    let max = loads.iter().map(|l| l.point_ops).max().unwrap_or(0);
    max as f64 * loads.len() as f64 / total as f64
}

/// Print a Markdown-style table: one row per algorithm, one column per thread
/// count, entries in millions of operations per second.
pub fn print_throughput_table(
    title: &str,
    threads: &[usize],
    rows: &[(String, Vec<Summary>)],
) {
    println!("\n## {title}");
    print!("| algorithm |");
    for t in threads {
        print!(" {t} thr |");
    }
    println!();
    print!("|---|");
    for _ in threads {
        print!("---|");
    }
    println!();
    for (name, summaries) in rows {
        print!("| {name} |");
        for s in summaries {
            print!(" {:.3} ({:.3}-{:.3}) |", s.avg_mops, s.min_mops, s.max_mops);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = Config::from_env();
        assert!(!c.threads.is_empty());
        assert!(c.trials >= 1);
        assert!(c.scaled_keyrange(20_000_000) >= 1024);
    }

    #[test]
    fn name_filters_support_substrings_and_exact_anchors() {
        assert!(name_passes(&None, "anything"));
        let f = Some(vec!["ycsb".to_string(), "=int-avl-pathcas".to_string()]);
        assert!(name_passes(&f, "ycsb-a"));
        assert!(name_passes(&f, "int-avl-pathcas"));
        // The exact anchor must NOT leak into sharded names...
        assert!(!name_passes(&f, "shard8(int-avl-pathcas)"));
        // ...while a plain substring token does match them.
        let sub = Some(vec!["int-avl-pathcas".to_string()]);
        assert!(name_passes(&sub, "shard8(int-avl-pathcas)"));
        assert!(!name_passes(&f, "scan-heavy"));
    }

    #[test]
    fn scaled_keyrange_has_floor() {
        let c = Config { threads: vec![1], duration: Duration::from_millis(1), trials: 1, keyrange_scale: 1_000_000_000, seed: DEFAULT_SEED };
        assert_eq!(c.scaled_keyrange(20_000_000), 1024);
    }
}
