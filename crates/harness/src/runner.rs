//! Timed throughput trials (the Setbench measurement loop).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use mapapi::{ConcurrentMap, Key};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One workload configuration (one point of a figure).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Keys are drawn uniformly from `1..=key_range`.
    pub key_range: Key,
    /// Percentage of operations that are updates (split evenly between
    /// inserts and deletes); the rest (minus `scan_percent`) are `contains`.
    pub update_percent: u32,
    /// Percentage of operations that are native validated range scans
    /// ([`mapapi::ConcurrentMap::scan`]) of `scan_len` keys from a uniformly
    /// random start.  0 in the paper's standard mixes; the scan-enabled
    /// figure sweeps set it through [`Workload::with_scans`].
    pub scan_percent: u32,
    /// Number of keys each scan requests.
    pub scan_len: usize,
    /// Number of worker threads.
    pub threads: usize,
    /// Timed duration of the trial.
    pub duration: Duration,
    /// Number of keys inserted before the timer starts (the paper pre-fills
    /// to half the key range).
    pub prefill: u64,
    /// Base seed: the prefill RNG and every worker thread's RNG derive from
    /// it, so a trial is reproducible given the same seed and thread count
    /// (set via `PATHCAS_SEED`, see [`crate::Config`]).
    pub seed: u64,
}

impl Workload {
    /// The paper's standard workload: prefill to half the key range, seeded
    /// with the default seed (override with [`Workload::with_seed`]).
    pub fn paper(key_range: Key, update_percent: u32, threads: usize, duration: Duration) -> Self {
        Workload {
            key_range,
            update_percent,
            scan_percent: 0,
            scan_len: 16,
            threads,
            duration,
            prefill: key_range / 2,
            seed: crate::DEFAULT_SEED,
        }
    }

    /// Replace the base seed (builder style), e.g. with [`crate::Config::seed`].
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a range-scan component (builder style): `percent` of operations
    /// become `scan(key, len)` calls, carved out of the `contains` share.
    pub fn with_scans(mut self, percent: u32, len: usize) -> Self {
        assert!(
            self.update_percent + percent <= 100,
            "update_percent + scan_percent must not exceed 100"
        );
        self.scan_percent = percent;
        self.scan_len = len;
        self
    }
}

/// The outcome of a single timed trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// Total completed operations across all threads.
    pub total_ops: u64,
    /// Wall-clock time actually spent in the timed region.
    pub elapsed: Duration,
}

impl TrialResult {
    /// Millions of operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Aggregate of several trials of the same configuration.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean throughput (Mops/s).
    pub avg_mops: f64,
    /// Fastest trial.
    pub max_mops: f64,
    /// Slowest trial.
    pub min_mops: f64,
    /// Total operations across all trials.
    pub total_ops: u64,
}

/// Run one timed trial of `workload` against `map`.
///
/// The map is pre-filled to `workload.prefill` keys if it is not already, so
/// repeated trials on the same map skip redundant prefilling (matching the
/// Setbench behaviour of reusing the structure across trials in a step).
pub fn run_trial<M: ConcurrentMap + ?Sized>(map: &M, workload: &Workload) -> TrialResult {
    mapapi::stress::prefill(
        map,
        workload.key_range,
        workload.prefill,
        mapapi::stress::prefill_seed(workload.seed),
    );
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(workload.threads + 1);
    let ops: Vec<u64> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workload.threads);
        for t in 0..workload.threads {
            let stop = &stop;
            let barrier = &barrier;
            let map = &*map;
            let workload = workload.clone();
            handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(workload.seed ^ (t as u64) << 17);
                let mut ops = 0u64;
                barrier.wait();
                // ORDERING: Relaxed — stop flag polled in a loop; the join
                // below is the real synchronization point.
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(1..=workload.key_range);
                    let roll = rng.gen_range(0..100u32);
                    if roll < workload.update_percent / 2 {
                        let _ = map.insert(key, key);
                    } else if roll < workload.update_percent {
                        let _ = map.remove(key);
                    } else if roll < workload.update_percent + workload.scan_percent {
                        let _ = map.scan(key, workload.scan_len);
                    } else {
                        let _ = map.contains(key);
                    }
                    ops += 1;
                }
                ops
            }));
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(workload.duration);
        // ORDERING: Relaxed — pairs with the Relaxed poll above; thread join
        // synchronizes the per-thread op counts.
        stop.store(true, Ordering::Relaxed);
        let ops = handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        let elapsed = start.elapsed();
        // Return elapsed through a side channel by re-measuring below.
        let _ = elapsed;
        ops
    });
    TrialResult { total_ops: ops.iter().sum(), elapsed: workload.duration }
}

/// Run `trials` trials on freshly created maps and summarize.
pub fn run_trials<M, F>(make_map: F, workload: &Workload, trials: usize) -> Summary
where
    M: ConcurrentMap,
    F: Fn() -> M,
{
    let mut mops = Vec::with_capacity(trials);
    let mut total = 0u64;
    for _ in 0..trials.max(1) {
        let map = make_map();
        let r = run_trial(&map, workload);
        mops.push(r.mops());
        total += r.total_ops;
    }
    Summary {
        avg_mops: mops.iter().sum::<f64>() / mops.len() as f64,
        max_mops: mops.iter().cloned().fold(f64::MIN, f64::max),
        min_mops: mops.iter().cloned().fold(f64::MAX, f64::min),
        total_ops: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapapi::reference::LockedBTreeMap;

    #[test]
    fn trial_measures_operations() {
        let w = Workload::paper(256, 20, 2, Duration::from_millis(50));
        let map = LockedBTreeMap::new();
        let r = run_trial(&map, &w);
        assert!(r.total_ops > 0);
        assert!(r.mops() > 0.0);
        // Prefill happened.
        assert!(map.stats().key_count > 0);
    }

    #[test]
    fn summary_aggregates_trials() {
        let w = Workload::paper(128, 50, 2, Duration::from_millis(30));
        let s = run_trials(LockedBTreeMap::new, &w, 2);
        assert!(s.avg_mops > 0.0);
        assert!(s.max_mops >= s.min_mops);
        assert!(s.total_ops > 0);
    }

    #[test]
    fn scan_component_runs_in_trials() {
        let w = Workload::paper(256, 20, 2, Duration::from_millis(30)).with_scans(30, 8);
        assert_eq!(w.scan_percent, 30);
        let map = LockedBTreeMap::new();
        let r = run_trial(&map, &w);
        assert!(r.total_ops > 0);
    }

    #[test]
    #[should_panic(expected = "must not exceed 100")]
    fn oversubscribed_scan_share_panics() {
        let _ = Workload::paper(256, 60, 1, Duration::from_millis(1)).with_scans(50, 8);
    }
}
