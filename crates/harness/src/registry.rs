//! Factories for every algorithm in the evaluation (the analogue of the
//! paper's Figure 4 list), so the figure drivers and the Criterion benches
//! can instantiate structures by name.
//!
//! Beyond the flat list, [`try_make`] understands the **sharded
//! composition** grammar `shardN(inner)` — e.g. `shard8(int-avl-pathcas)`
//! — building a [`shard::ShardedMap`] over `N` fresh instances of any
//! resolvable inner name (recursively, so `shard2(shard4(x))` works too).
//! Two canonical sharded variants are registered by name so the workload
//! sweeps and the registry-driven stress/differential suites cover the
//! composition layer with zero extra glue.

use mapapi::ConcurrentMap;

/// A named factory producing a fresh instance of one algorithm.
pub struct AlgoFactory {
    /// The algorithm's name as used in the paper / DESIGN.md.
    pub name: &'static str,
    /// Build a fresh, empty instance.
    pub build: fn() -> Box<dyn ConcurrentMap>,
}

fn b<M: ConcurrentMap + 'static>(m: M) -> Box<dyn ConcurrentMap> {
    Box::new(m)
}

/// Build a homogeneous sharded composition over `n` fresh inner instances.
fn sharded(n: usize, inner: fn() -> Box<dyn ConcurrentMap>) -> Box<dyn ConcurrentMap> {
    b(shard::ShardedMap::from_fn(n, |_| inner()))
}

/// All algorithms available to the experiment drivers.
pub fn registry() -> Vec<AlgoFactory> {
    vec![
        AlgoFactory { name: "int-bst-pathcas", build: || b(pathcas_ds::PathCasBst::new()) },
        AlgoFactory { name: "int-avl-pathcas", build: || b(pathcas_ds::PathCasAvl::new()) },
        AlgoFactory { name: "hashmap-pathcas", build: || b(pathcas_ds::PathCasHashMap::new()) },
        AlgoFactory { name: "ext-bst-locks", build: || b(baselines::TicketBst::new()) },
        AlgoFactory { name: "int-bst-norec", build: || b(stm::TxBst::new(stm::Norec::new())) },
        AlgoFactory { name: "int-avl-norec", build: || b(stm::TxAvl::new(stm::Norec::new())) },
        AlgoFactory { name: "int-avl-tl2", build: || b(stm::TxAvl::new(stm::Tl2::new())) },
        AlgoFactory { name: "int-avl-tle", build: || b(stm::TxAvl::new(stm::Tle::new())) },
        AlgoFactory { name: "int-bst-mcms", build: || b(mcms::McmsBst::new()) },
        AlgoFactory { name: "locked-btreemap", build: || b(mapapi::reference::LockedBTreeMap::new()) },
        // Sharded compositions (crates/shard): hash-partitioned over N
        // inner instances, scans k-way merged.  Registered here so the
        // whole registry-driven battery — bench_workloads, cross-structure
        // suites, keysum stress, registry smoke — exercises the
        // composition layer for free.
        AlgoFactory {
            name: "shard8(int-avl-pathcas)",
            build: || sharded(8, || b(pathcas_ds::PathCasAvl::new())),
        },
        AlgoFactory {
            name: "shard4(int-bst-pathcas)",
            build: || sharded(4, || b(pathcas_ds::PathCasBst::new())),
        },
    ]
}

/// Maximum shard count [`try_make`] accepts in a `shardN(inner)` name —
/// far above any plausible core count, low enough that a typo like
/// `shard80000(x)` fails fast instead of building eighty thousand trees.
pub const MAX_SHARDS: usize = 1024;

/// Parse `shardN(inner)` into `(N, inner)`; `None` if `name` is not of
/// that shape.  The inner name is taken verbatim (it may itself contain
/// parentheses, so nesting parses).
fn parse_shard_name(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("shard")?;
    let open = rest.find('(')?;
    let n: usize = rest[..open].parse().ok()?;
    let inner = rest[open + 1..].strip_suffix(')')?;
    (1..=MAX_SHARDS).contains(&n).then_some((n, inner))
}

/// Instantiate one algorithm by name: either a registered name, or the
/// sharded-composition grammar `shardN(inner)` for any resolvable `inner`
/// (applied recursively).  On failure the error lists every valid registry
/// name — this is what server startup and the benchmark binaries print
/// instead of panicking.
pub fn try_make(name: &str) -> Result<Box<dyn ConcurrentMap>, String> {
    let reg = registry();
    if let Some(factory) = reg.iter().find(|f| f.name == name) {
        return Ok((factory.build)());
    }
    if let Some((n, inner)) = parse_shard_name(name) {
        let shards = (0..n)
            .map(|_| try_make(inner))
            .collect::<Result<Vec<_>, String>>()
            .map_err(|e| format!("in '{name}': {e}"))?;
        return Ok(Box::new(shard::ShardedMap::new(shards)));
    }
    let names: Vec<&str> = reg.iter().map(|f| f.name).collect();
    Err(format!(
        "unknown algorithm '{name}'; valid names: {}, or shardN(<valid name>) for 1 <= N <= {}",
        names.join(", "),
        MAX_SHARDS
    ))
}

/// Instantiate one algorithm by name.
///
/// # Panics
/// Panics if the name is unknown; [`try_make`] is the non-panicking
/// variant (its error message lists the valid names).
pub fn make(name: &str) -> Box<dyn ConcurrentMap> {
    try_make(name).unwrap_or_else(|e| panic!("{e}"))
}

/// Instantiate one algorithm by name **wrapped as a replication primary**
/// (`crates/replica`): every committed mutation goes to the wrapped map's
/// change log, and [`replica::ReplicatedMap::checkpoint`] cuts exact
/// snapshots.  `shardN(inner)` names take the sharded-aware path — the
/// shards are built individually and handed to
/// [`replica::ReplicatedMap::from_sharded`], so checkpoints keep one
/// section per shard and followers can bootstrap onto any shard count.
pub fn try_make_replicated(name: &str) -> Result<replica::ReplicatedMap, String> {
    if let Some((n, inner)) = parse_shard_name(name) {
        let shards = (0..n)
            .map(|_| try_make(inner))
            .collect::<Result<Vec<_>, String>>()
            .map_err(|e| format!("in '{name}': {e}"))?;
        return Ok(replica::ReplicatedMap::from_sharded(shard::ShardedMap::new(shards)));
    }
    Ok(replica::ReplicatedMap::new(try_make(name)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_algorithm_works() {
        for f in registry() {
            let m = (f.build)();
            assert_eq!(m.name(), f.name, "factory name mismatch");
            assert!(m.insert(10, 1));
            assert!(m.contains(10));
            assert!(m.remove(10));
            assert!(!m.contains(10));
        }
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_name_panics() {
        let _ = make("no-such-tree");
    }

    // `Box<dyn ConcurrentMap>` has no Debug impl, so unwrap the error arm
    // by hand instead of `unwrap_err`.
    fn expect_err(name: &str) -> String {
        match try_make(name) {
            Ok(m) => panic!("'{name}' unexpectedly resolved to {}", m.name()),
            Err(e) => e,
        }
    }

    #[test]
    fn try_make_errors_list_the_valid_names() {
        let err = expect_err("no-such-tree");
        assert!(err.contains("unknown algorithm 'no-such-tree'"), "{err}");
        assert!(err.contains("int-avl-pathcas"), "{err}");
        assert!(err.contains("locked-btreemap"), "{err}");
        assert!(err.contains("shardN("), "{err}");
        // A bad *inner* name points at the enclosing composition.
        let err = expect_err("shard4(no-such-tree)");
        assert!(err.contains("in 'shard4(no-such-tree)'"), "{err}");
        assert!(err.contains("unknown algorithm 'no-such-tree'"), "{err}");
    }

    #[test]
    fn shard_names_parse_and_build() {
        // Registered variant: exact factory.
        let m = make("shard8(int-avl-pathcas)");
        assert_eq!(m.name(), "shard8(int-avl-pathcas)");
        // Unregistered counts and inners resolve through the grammar.
        let m = try_make("shard3(locked-btreemap)").unwrap();
        assert_eq!(m.name(), "shard3(locked-btreemap)");
        assert!(m.insert(5, 50));
        assert_eq!(m.get(5), Some(50));
        // Nesting.
        let m = try_make("shard2(shard2(int-bst-pathcas))").unwrap();
        assert_eq!(m.name(), "shard2(shard2(int-bst-pathcas))");
        assert!(m.insert(1, 2));
        assert!(m.contains(1));
    }

    #[test]
    fn replicated_factories_log_and_checkpoint() {
        for name in ["int-avl-pathcas", "shard4(int-bst-pathcas)"] {
            let rep = try_make_replicated(name).unwrap();
            assert!(rep.insert(1, 10));
            assert!(rep.insert(2, 20));
            assert!(rep.remove(2));
            assert_eq!(rep.log().seqno(), 3, "{name}");
            let ckpt = rep.checkpoint();
            assert_eq!(ckpt.seqno, 3, "{name}");
            assert_eq!(ckpt.key_count(), 1, "{name}");
        }
        // Sharded names keep one checkpoint section per shard.
        let rep = try_make_replicated("shard4(int-bst-pathcas)").unwrap();
        assert_eq!(rep.checkpoint().sections.len(), 4);
        assert_eq!(try_make_replicated("int-avl-pathcas").unwrap().checkpoint().sections.len(), 1);
        assert!(try_make_replicated("no-such-tree").is_err());
        assert!(try_make_replicated("shard4(no-such-tree)").is_err());
    }

    #[test]
    fn malformed_shard_names_are_rejected() {
        for bad in ["shard(int-avl-pathcas)", "shard0(int-avl-pathcas)", "shard4int-avl-pathcas",
                    "shard4(int-avl-pathcas", "shard99999(int-avl-pathcas)", "shardx(y)"] {
            assert!(try_make(bad).is_err(), "'{bad}' should not resolve");
        }
    }
}
