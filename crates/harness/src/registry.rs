//! Factories for every algorithm in the evaluation (the analogue of the
//! paper's Figure 4 list), so the figure drivers and the Criterion benches
//! can instantiate structures by name.

use mapapi::ConcurrentMap;

/// A named factory producing a fresh instance of one algorithm.
pub struct AlgoFactory {
    /// The algorithm's name as used in the paper / DESIGN.md.
    pub name: &'static str,
    /// Build a fresh, empty instance.
    pub build: fn() -> Box<dyn ConcurrentMap>,
}

fn b<M: ConcurrentMap + 'static>(m: M) -> Box<dyn ConcurrentMap> {
    Box::new(m)
}

/// All algorithms available to the experiment drivers.
pub fn registry() -> Vec<AlgoFactory> {
    vec![
        AlgoFactory { name: "int-bst-pathcas", build: || b(pathcas_ds::PathCasBst::new()) },
        AlgoFactory { name: "int-avl-pathcas", build: || b(pathcas_ds::PathCasAvl::new()) },
        AlgoFactory { name: "hashmap-pathcas", build: || b(pathcas_ds::PathCasHashMap::new()) },
        AlgoFactory { name: "ext-bst-locks", build: || b(baselines::TicketBst::new()) },
        AlgoFactory { name: "int-bst-norec", build: || b(stm::TxBst::new(stm::Norec::new())) },
        AlgoFactory { name: "int-avl-norec", build: || b(stm::TxAvl::new(stm::Norec::new())) },
        AlgoFactory { name: "int-avl-tl2", build: || b(stm::TxAvl::new(stm::Tl2::new())) },
        AlgoFactory { name: "int-avl-tle", build: || b(stm::TxAvl::new(stm::Tle::new())) },
        AlgoFactory { name: "int-bst-mcms", build: || b(mcms::McmsBst::new()) },
        AlgoFactory { name: "locked-btreemap", build: || b(mapapi::reference::LockedBTreeMap::new()) },
    ]
}

/// Instantiate one algorithm by name.
///
/// # Panics
/// Panics if the name is unknown (the registry lists the valid names).
pub fn make(name: &str) -> Box<dyn ConcurrentMap> {
    let reg = registry();
    let factory = reg
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("unknown algorithm '{name}'"));
    (factory.build)()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_algorithm_works() {
        for f in registry() {
            let m = (f.build)();
            assert_eq!(m.name(), f.name, "factory name mismatch");
            assert!(m.insert(10, 1));
            assert!(m.contains(10));
            assert!(m.remove(10));
            assert!(!m.contains(10));
        }
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_name_panics() {
        let _ = make("no-such-tree");
    }
}
