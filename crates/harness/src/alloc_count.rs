//! A heap-allocation-counting global allocator for the allocation-sensitive
//! benchmarks (the descriptor-reuse microbenchmark asserts that the pooled
//! KCAS hot path performs zero per-operation allocations).
//!
//! A binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: harness::alloc_count::CountingAllocator =
//!     harness::alloc_count::CountingAllocator;
//! ```
//!
//! and then brackets measured regions with [`heap_allocations`].  The
//! counter is process-global and monotonically increasing; concurrent
//! allocations from unrelated threads are included, so measured regions
//! should quiesce everything except the workload under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts calls to `alloc`/`realloc`.
pub struct CountingAllocator;

// SAFETY: defers to `System` for every operation; only adds counting.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ORDERING: Relaxed — an allocation tally read only at quiescent
        // measurement points; no happens-before relationship is needed.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // ORDERING: Relaxed — allocation tally (see `alloc`).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // ORDERING: Relaxed — allocation tally (see `alloc`).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's — delegated to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Total number of heap allocations performed by the process so far
/// (0 forever unless the binary installed [`CountingAllocator`]).
pub fn heap_allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}
