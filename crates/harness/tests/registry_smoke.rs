//! Smoke coverage for everything the figure binaries depend on: every
//! algorithm in [`harness::registry`] must round-trip a small deterministic
//! insert/get/remove sequence, agree with a `BTreeMap` model, and survive a
//! short multi-threaded [`harness::run_trial`]. This keeps the harness
//! binaries covered by `cargo test`, not only by manual runs.

use std::collections::BTreeMap;
use std::time::Duration;

use harness::{registry, run_trial, Workload};

/// A deterministic mixed sequence over a small key universe: inserts,
/// re-inserts (must fail), point lookups, removes and double-removes.
fn round_trip_sequence(map: &dyn mapapi::ConcurrentMap) {
    let name = map.name();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();

    // Phase 1: insert 1..=64 with value 10*k; odd keys twice (second fails).
    for k in 1..=64u64 {
        assert!(map.insert(k, 10 * k), "{name}: fresh insert({k}) must succeed");
        model.insert(k, 10 * k);
        if k % 2 == 1 {
            assert!(!map.insert(k, 11 * k), "{name}: duplicate insert({k}) must fail");
        }
    }

    // Phase 2: every key readable, absent keys not.
    for k in 1..=64u64 {
        assert!(map.contains(k), "{name}: contains({k}) after insert");
        assert_eq!(map.get(k), Some(10 * k), "{name}: get({k}) after insert");
    }
    // Key 0 is excluded: mapapi reserves it (and the max) for sentinels.
    for k in [65u64, 100, 1000] {
        assert!(!map.contains(k), "{name}: contains({k}) of absent key");
        assert_eq!(map.get(k), None, "{name}: get({k}) of absent key");
    }

    // Phase 3: remove every third key; a second remove must fail.
    for k in (3..=64u64).step_by(3) {
        assert!(map.remove(k), "{name}: remove({k}) of present key");
        model.remove(&k);
        assert!(!map.remove(k), "{name}: double remove({k}) must fail");
        assert!(!map.contains(k), "{name}: contains({k}) after remove");
    }

    // Phase 4: structure statistics agree with the model (Setbench keysum).
    let stats = map.stats();
    assert_eq!(stats.key_count, model.len() as u64, "{name}: key count");
    assert_eq!(
        stats.key_sum,
        model.keys().map(|&k| k as u128).sum::<u128>(),
        "{name}: key sum"
    );
    for (&k, &v) in &model {
        assert_eq!(map.get(k), Some(v), "{name}: get({k}) at quiescence");
    }
}

#[test]
fn every_registered_structure_round_trips() {
    let reg = registry();
    assert!(reg.len() >= 10, "registry unexpectedly shrank: {} entries", reg.len());
    for factory in reg {
        let map = (factory.build)();
        assert_eq!(map.name(), factory.name, "factory/name mismatch");
        round_trip_sequence(&*map);
    }
}

#[test]
fn every_registered_structure_survives_a_short_trial() {
    // The same code path the fig* binaries take: build by name, prefill,
    // hammer from several threads, then check the structure is still sane.
    let workload = Workload::paper(512, 40, 3, Duration::from_millis(40));
    for factory in registry() {
        let map = (factory.build)();
        let result = run_trial(&*map, &workload);
        assert!(
            result.total_ops > 0,
            "{}: trial completed no operations",
            factory.name
        );
        let stats = map.stats();
        // Prefill plus a churn of inserts/removes: the structure must stay
        // within the key universe and keep count/sum consistent.
        assert!(stats.key_count <= 512, "{}: more keys than the universe", factory.name);
        let mut sum = 0u128;
        for k in 1..=512u64 {
            if map.contains(k) {
                sum += k as u128;
            }
        }
        assert_eq!(stats.key_sum, sum, "{}: key sum inconsistent at quiescence", factory.name);
    }
}
