//! Figure 5 (micro): per-operation cost of the 100%-update workload for every
//! algorithm in the detailed-analysis table; structural metrics are printed
//! by the fig5_analysis harness binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let key_range = 50_000;
    let mut g = c.benchmark_group("fig5_100pct_updates");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));
    for name in
        ["int-bst-pathcas", "ext-bst-locks", "int-avl-pathcas", "int-avl-norec", "int-avl-tl2", "int-bst-mcms"]
    {
        let map = bench::prefilled(name, key_range);
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                bench::run_ops(&map, key_range, 100, 1_000, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
