//! Workload scenarios (micro): single-threaded per-operation cost of
//! representative YCSB-style scenarios across the PathCAS structures and an
//! STM baseline.  Generator and bank state live outside the timed closure so
//! Criterion measures operation cost, not setup.  The multi-threaded
//! throughput/latency sweep over the full scenario suite is
//! `cargo run --release -p harness --bin bench_workloads`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kcas::CasWord;
use workload::{apply, OpGen, SharedState, INITIAL_BALANCE};

fn bench(c: &mut Criterion) {
    let key_range = 20_000u64;
    for scenario_name in ["ycsb-a", "ycsb-c", "ycsb-f", "contended-hot-set", "txn-transfer"] {
        let sc = workload::scenario(scenario_name);
        let mut g = c.benchmark_group(format!("workload_{scenario_name}"));
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(1));
        g.warm_up_time(Duration::from_millis(300));
        for name in ["int-avl-pathcas", "int-bst-pathcas", "hashmap-pathcas", "int-avl-norec"] {
            let map = bench::prefilled(name, key_range);
            let kr = if sc.uses_bank() { sc.accounts } else { key_range };
            let bank: Option<Vec<CasWord>> = sc.uses_bank().then(|| {
                for i in 0..sc.accounts {
                    let _ = map.insert(i + 1, INITIAL_BALANCE);
                }
                (0..sc.accounts).map(|_| CasWord::new(INITIAL_BALANCE)).collect()
            });
            let shared = SharedState::new(kr);
            let mut gen = OpGen::new(&sc, kr, 42);
            g.bench_function(name, |b| {
                b.iter(|| {
                    let mut ok = 0u64;
                    for _ in 0..1_000 {
                        ok += apply(&map, bank.as_deref(), gen.next_op(&shared)) as u64;
                    }
                    ok
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
