//! Figure 3, top row (micro): unbalanced BSTs at 1%, 10% and 100% updates.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let key_range = 50_000;
    for pct in [1u32, 10, 100] {
        let mut g = c.benchmark_group(format!("fig3_unbalanced_{pct}pct_updates"));
        g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));
        for name in ["int-bst-pathcas", "ext-bst-locks", "int-bst-norec"] {
            let map = bench::prefilled(name, key_range);
            let mut seed = 0u64;
            g.bench_function(name, |b| {
                b.iter(|| {
                    seed += 1;
                    bench::run_ops(&map, key_range, pct, 1_000, seed)
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
