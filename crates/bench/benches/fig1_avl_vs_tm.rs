//! Figure 1 (micro): per-operation cost of the balanced trees under the
//! 10%-update workload (PathCAS AVL vs the TM-based AVL trees).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let key_range = 20_000;
    let mut g = c.benchmark_group("fig1_avl_vs_tm_10pct_updates");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));
    for name in ["int-avl-pathcas", "int-avl-norec", "int-avl-tl2", "int-avl-tle"] {
        let map = bench::prefilled(name, key_range);
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                bench::run_ops(&map, key_range, 10, 1_000, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
