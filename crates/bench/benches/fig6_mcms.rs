//! Figure 6 (micro): PathCAS BST vs MCMS BST under 100% updates and 100%
//! searches on a 100k-key-range tree (scaled down).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let key_range = 20_000;
    for (label, pct) in [("100pct_update", 100u32), ("100pct_search", 0u32)] {
        let mut g = c.benchmark_group(format!("fig6_mcms_{label}"));
        g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));
        for name in ["int-bst-pathcas", "int-bst-mcms"] {
            let map = bench::prefilled(name, key_range);
            let mut seed = 0u64;
            g.bench_function(name, |b| {
                b.iter(|| {
                    seed += 1;
                    bench::run_ops(&map, key_range, pct, 1_000, seed)
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
