//! Figure 7 (micro): transaction-structured BST vs handcrafted trees at 1%
//! updates (the role of the elastic-transaction tree is played by the NOrec
//! BST; see DESIGN.md §4).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let key_range = 100_000;
    let mut g = c.benchmark_group("fig7_elastic_1pct_updates");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));
    for name in ["ext-bst-locks", "int-bst-pathcas", "int-bst-norec"] {
        let map = bench::prefilled(name, key_range);
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                bench::run_ops(&map, key_range, 1, 1_000, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
