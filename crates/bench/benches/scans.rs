//! Native validated range scans (DESIGN.md §7): single-threaded per-scan
//! cost across the registry structures, swept over scan length.  The scan
//! starts are drawn uniformly so every length pays a realistic traversal,
//! and the map is prefilled outside the timed closure so Criterion measures
//! the scan itself.  The multi-threaded scan-heavy sweep (scans racing
//! updates, retry amplification) is
//! `PATHCAS_SCENARIOS=scan-heavy cargo run --release -p harness --bin bench_workloads`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let key_range = 20_000u64;
    for scan_len in [16usize, 128] {
        let mut g = c.benchmark_group(format!("scan_{scan_len}"));
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(1));
        g.warm_up_time(Duration::from_millis(300));
        for name in [
            "int-avl-pathcas",
            "int-bst-pathcas",
            "hashmap-pathcas",
            "int-avl-norec",
            "locked-btreemap",
        ] {
            let map = bench::prefilled(name, key_range);
            let mut rng = StdRng::seed_from_u64(7);
            g.bench_function(name, |b| {
                b.iter(|| {
                    let start = rng.gen_range(1..=key_range);
                    map.scan(start, scan_len).len()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
