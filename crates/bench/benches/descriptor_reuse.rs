//! Single-threaded per-operation cost of the pooled (descriptor-reuse)
//! KCAS publish path vs the legacy allocate-and-epoch-retire baseline, on
//! the same 4-word-KCAS workload the `bench_descriptor_reuse` harness
//! binary sweeps multi-threaded (DESIGN.md §3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kcas::{CasWord, KcasArg};

const WORDS: usize = 1024;
const K: usize = 4;

fn bench(c: &mut Criterion) {
    let words: Vec<CasWord> = (0..WORDS).map(|_| CasWord::new(0)).collect();
    let mut g = c.benchmark_group("descriptor_reuse_kcas4");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));
    let mut seed = 0x5EEDu64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut one_op = move |alloc: bool| {
        let guard = crossbeam_epoch::pin();
        let mut idx = [0usize; K];
        for i in 0..K {
            loop {
                let cand = (next() % WORDS as u64) as usize;
                if !idx[..i].contains(&cand) {
                    idx[i] = cand;
                    break;
                }
            }
        }
        let mut args = [KcasArg { addr: &words[0], old: 0, new: 0 }; K];
        for (arg, &i) in args.iter_mut().zip(idx.iter()) {
            let old = kcas::read(&words[i], &guard);
            *arg = KcasArg { addr: &words[i], old, new: old + 1 };
        }
        if alloc {
            kcas::execute_alloc(&args, &[], &guard)
        } else {
            kcas::execute(&args, &[], &guard)
        }
    };
    g.bench_function("reuse", |b| b.iter(|| one_op(false)));
    g.bench_function("alloc", |b| b.iter(|| one_op(true)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
