//! # bench — Criterion benchmarks, one target per table/figure
//!
//! Each bench target in `benches/` corresponds to one figure or table of the
//! paper's evaluation (see DESIGN.md §2).  Criterion measures single-threaded
//! per-operation cost of each algorithm under that figure's workload mix;
//! the multi-threaded throughput sweeps that regenerate the actual rows and
//! series of the figures are produced by the `harness` binaries
//! (`cargo run --release -p harness --bin fig1_avl_vs_tm`, etc.), because
//! fixed-duration multi-threaded trials do not fit Criterion's timing model.

use mapapi::ConcurrentMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Perform `ops` operations of a mixed workload (update_percent split between
/// inserts and deletes, remainder lookups) against `map`.
pub fn run_ops<M: ConcurrentMap + ?Sized>(
    map: &M,
    key_range: u64,
    update_percent: u32,
    ops: u64,
    seed: u64,
) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0u64;
    for _ in 0..ops {
        let key = rng.gen_range(1..=key_range);
        let roll = rng.gen_range(0..100u32);
        if roll < update_percent / 2 {
            if map.insert(key, key) {
                hits += 1;
            }
        } else if roll < update_percent {
            if map.remove(key) {
                hits += 1;
            }
        } else if map.contains(key) {
            hits += 1;
        }
    }
    hits
}

/// Prefill helper shared by the bench targets.
pub fn prefilled(name: &str, key_range: u64) -> Box<dyn ConcurrentMap> {
    let map = harness::make(name);
    mapapi::stress::prefill(&map, key_range, key_range / 2, 42);
    map
}
