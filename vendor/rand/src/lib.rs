//! Vendored stand-in for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! The build environment has no network access, so this shim provides the
//! subset of the rand 0.8 API the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`Rng::gen_range`] over integer `Range` /
//! `RangeInclusive` bounds. The generator is xoshiro256++ seeded through
//! SplitMix64 (the same seeding rand itself documents for `seed_from_u64`),
//! which is more than adequate for workload generation; it is **not** a
//! cryptographic generator, and streams differ from the real `StdRng`
//! (which is ChaCha-based), so seeds are reproducible only within this
//! workspace.

/// A source of random 64-bit words. (Stands in for `rand::RngCore`.)
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministically seedable generators. (Subset of `rand::SeedableRng`.)
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods. (Subset of `rand::Rng`.)
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled from. (Stands in for `rand::distributions::uniform::SampleRange`.)
pub trait SampleRange<T> {
    /// Draw one uniform sample using `rng`.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Reduce a random word onto `0..span` (`span > 0`). Plain modulo: the bias
/// is ~span/2^64, irrelevant for workload generation.
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    word % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    // Full-width inclusive range: every word is a sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64. Not the ChaCha generator of the real crate —
    /// see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(1..=48u64);
            assert!((1..=48).contains(&x));
            let y = rng.gen_range(0..100u32);
            assert!(y < 100);
            let z: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&z));
        }
        // All values of a small range are hit.
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
