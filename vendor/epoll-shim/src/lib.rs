//! Vendored epoll bindings (Linux only), in the spirit of the other
//! `vendor/` shims: the build environment is offline, so instead of the
//! `libc`/`mio` crates this crate declares the four syscalls a readiness
//! reactor needs — `epoll_create1` / `epoll_ctl` / `epoll_wait`, `eventfd`
//! for cross-thread wakeups, and `getrlimit`/`setrlimit` so connection-soak
//! tests can raise the open-file ceiling — and wraps them in a minimal safe
//! API.
//!
//! The surface is deliberately tiny and level-triggered:
//!
//! * [`Epoll`] — one epoll instance: [`Epoll::add`] / [`Epoll::modify`] /
//!   [`Epoll::delete`] registrations keyed by a caller-chosen `u64` token,
//!   and [`Epoll::wait`] filling a reusable [`Events`] buffer (no
//!   allocation per wait, which the wire-path zero-allocation audit
//!   relies on);
//! * [`Interest`] — the readable/writable interest set (peer-hangup
//!   `EPOLLRDHUP` is always registered: a reactor must see half-closes);
//! * [`WakeFd`] — an `eventfd` the reactor blocks on so another thread can
//!   interrupt an indefinite `wait` (shutdown, new work);
//! * [`raise_nofile_limit`] — lift `RLIMIT_NOFILE`'s soft limit toward its
//!   hard limit, for tests that open thousands of sockets.
//!
//! Everything returns `io::Result` with the raw OS error attached; nothing
//! here panics on syscall failure.

#![warn(missing_docs)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

// The syscall ABI, straight from the Linux uapi headers.  `epoll_event` is
// `__attribute__((packed))` on x86-64, which `repr(C, packed)` reproduces
// exactly (and is harmless on architectures where the natural layout
// already has no padding).
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// The readable/writable interest set for a registration.  Peer hangup
/// (`EPOLLRDHUP`) and error conditions are always reported by the kernel
/// regardless of the set, so they are not part of it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer half-closes).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Readable and writable — a connection with queued output.
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Ready {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes a half-closed peer: there may still be buffered
    /// bytes to drain before EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the connection is (or is about to be) dead.  The
    /// kernel sets these regardless of the registered interest.
    pub hangup: bool,
}

/// A reusable buffer of kernel-reported events.  Allocated once and handed
/// to every [`Epoll::wait`] call — waiting never allocates.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        assert!(capacity > 0, "an Events buffer must hold at least one event");
        Events { buf: vec![EpollEvent { events: 0, data: 0 }; capacity], len: 0 }
    }

    /// The notifications delivered by the most recent wait.
    pub fn iter(&self) -> impl Iterator<Item = Ready> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the packed struct before touching the fields.
            let (events, data) = (e.events, e.data);
            Ready {
                token: data,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            }
        })
    }
}

/// One epoll instance (level-triggered).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with the given token and interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events: interest.bits(), data: token }))
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(EpollEvent { events: interest.bits(), data: token }))
    }

    /// Remove a registration.  Harmless to call on an fd the kernel already
    /// dropped (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Block until at least one registered fd is ready, `timeout_ms`
    /// elapses (`None` = wait indefinitely), or a signal interrupts the
    /// wait (reported as zero events, like a timeout — callers loop).
    /// Returns the number of notifications now in `events`.
    pub fn wait(&self, events: &mut Events, timeout_ms: Option<i32>) -> io::Result<usize> {
        let timeout = timeout_ms.unwrap_or(-1);
        // SAFETY: the buffer is valid for `capacity` events for the whole
        // call; the kernel writes at most that many.
        let n = unsafe {
            epoll_wait(self.fd, events.buf.as_mut_ptr(), events.buf.len() as c_int, timeout)
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

/// An `eventfd`-backed wakeup channel: any thread calls [`WakeFd::wake`],
/// the epoll blocked on the fd sees it readable, and [`WakeFd::drain`]
/// resets it.  Nonblocking, so a drain after a spurious wake is a no-op.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Create the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    /// The fd to register with an [`Epoll`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Make the fd readable, waking any epoll waiting on it.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a valid stack slot.  An EAGAIN (the
        // counter is already saturated) still leaves the fd readable, which
        // is all a wakeup needs.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the fd to unreadable.  Returns whether it was readable.
    pub fn drain(&self) -> bool {
        let mut count: u64 = 0;
        // SAFETY: reads 8 bytes into a valid stack slot.
        let n = unsafe { read(self.fd, (&mut count as *mut u64).cast(), 8) };
        n == 8
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

/// Raise `RLIMIT_NOFILE`'s soft limit to `min(want, hard limit)` and return
/// the soft limit now in effect.  Never lowers it.  For tests that open
/// thousands of loopback sockets (default soft limits are often 1024).
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = RLimit { rlim_cur: 0, rlim_max: 0 };
    // SAFETY: the struct outlives both calls; the kernel fills/reads it.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = want.min(lim.rlim_max);
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wakefd_rouses_an_indefinite_wait() {
        let ep = Epoll::new().unwrap();
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        ep.add(wake.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);
        // Nothing pending: a bounded wait times out empty.
        assert_eq!(ep.wait(&mut events, Some(10)).unwrap(), 0);
        let waker = {
            let wake = std::sync::Arc::clone(&wake);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                wake.wake();
            })
        };
        assert_eq!(ep.wait(&mut events, None).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable && !ev.writable && !ev.hangup);
        assert!(wake.drain());
        assert!(!wake.drain(), "a second drain finds the counter reset");
        waker.join().unwrap();
    }

    #[test]
    fn sockets_report_read_write_and_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(served.as_raw_fd(), 1, Interest::READ_WRITE).unwrap();
        let mut events = Events::with_capacity(4);

        // An idle established socket is writable but not readable.
        assert!(ep.wait(&mut events, Some(100)).unwrap() >= 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.writable && !ev.readable);

        // Level-triggered: bytes keep it readable until drained.
        client.write_all(b"ping").unwrap();
        ep.modify(served.as_raw_fd(), 1, Interest::READ).unwrap();
        assert!(ep.wait(&mut events, Some(1000)).unwrap() >= 1);
        assert!(events.iter().next().unwrap().readable);

        // Peer close surfaces as readable (EOF must be observable).
        drop(client);
        assert!(ep.wait(&mut events, Some(1000)).unwrap() >= 1);
        assert!(events.iter().next().unwrap().readable);

        ep.delete(served.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, Some(10)).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_is_monotone() {
        let now = raise_nofile_limit(0).unwrap();
        assert!(now > 0);
        // Asking again for the current value (or less) changes nothing.
        assert_eq!(raise_nofile_limit(now).unwrap(), now);
    }
}
