/root/repo/vendor/epoll-shim/target/debug/deps/epoll_shim-15b3f5c171df19c0.d: src/lib.rs

/root/repo/vendor/epoll-shim/target/debug/deps/epoll_shim-15b3f5c171df19c0: src/lib.rs

src/lib.rs:
