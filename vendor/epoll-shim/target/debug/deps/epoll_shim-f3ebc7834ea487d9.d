/root/repo/vendor/epoll-shim/target/debug/deps/epoll_shim-f3ebc7834ea487d9.d: src/lib.rs

/root/repo/vendor/epoll-shim/target/debug/deps/libepoll_shim-f3ebc7834ea487d9.rlib: src/lib.rs

/root/repo/vendor/epoll-shim/target/debug/deps/libepoll_shim-f3ebc7834ea487d9.rmeta: src/lib.rs

src/lib.rs:
