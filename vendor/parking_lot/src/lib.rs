//! Vendored stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no network access, so this shim maps the
//! `parking_lot` API surface used by the workspace onto `std::sync`
//! primitives. The visible differences from the real crate that matter here:
//!
//! * `lock()` returns the guard directly (no `Result`) — poisoning is
//!   swallowed by taking the inner value, matching parking_lot's
//!   poison-free semantics;
//! * `Mutex::new` / `RwLock::new` are `const`, so statics work.

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}
